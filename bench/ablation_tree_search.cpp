// Ablations for the design choices DESIGN.md calls out (Sec. VII-A
// countermeasures + Alg. 3 reward assignment):
//   1. backward reward averaging vs leaf-only rewards,
//   2. fair-chance exploration vs vanilla sampling,
//   3. optimal-branch boosting vs cold start.
// Each ablation reruns the tree search on two representative contexts with
// one switch flipped and reports the final tree reward.
#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {
double run_variant(const ContextArtifacts& art, bool backward_avg,
                   bool fair_chance, bool boosting, std::uint64_t seed) {
  tree::TreeSearchConfig config;
  config.episodes = 120;
  config.seed = seed;
  config.backward_averaging = backward_avg;
  config.fair_chance = fair_chance;
  config.boost_with_branches = boosting;
  config.branch_config.episodes = 150;
  tree::TreeSearch search(*art.evaluator, art.boundaries, art.fork_bandwidths,
                          config);
  return search.run().tree_reward;
}
}  // namespace

int main() {
  std::printf("=== Ablations: tree-search design choices ===\n\n");
  BenchConfig config;
  const net::EvalContext picks[] = {
      {"VGG11", "phone", net::scene_by_name("4G outdoor quick")},
      {"AlexNet", "phone", net::scene_by_name("WiFi (weak) indoor")},
  };

  util::AsciiTable table({"Context", "Full", "No backward avg",
                          "No fair-chance", "No boosting"});
  for (const auto& pick : picks) {
    const ContextArtifacts art = train_context(pick, config);
    // Average over 2 seeds to damp search variance.
    double full = 0, no_avg = 0, no_fair = 0, no_boost = 0;
    for (std::uint64_t seed : {11u, 22u}) {
      full += run_variant(art, true, true, true, seed);
      no_avg += run_variant(art, false, true, true, seed);
      no_fair += run_variant(art, true, false, true, seed);
      no_boost += run_variant(art, true, true, false, seed);
    }
    table.add_row({pick.model + "/" + pick.scene.name, fmt(full / 2),
                   fmt(no_avg / 2), fmt(no_fair / 2), fmt(no_boost / 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: removing backward averaging collapses the reward\n"
      "signal for internal nodes (largest drop); removing boosting loses the\n"
      "Alg. 1 incumbent guarantee. Fair-chance exploration exists to prevent\n"
      "first-block local optima (Sec. VII-A); on scenes without that\n"
      "pathology its effect is within search variance.\n");
  return 0;
}
