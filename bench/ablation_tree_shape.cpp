// Design-space ablation: the paper fixes N = 3 blocks and K = 2 bandwidth
// types (Sec. VII). This bench sweeps both — more blocks give the tree
// finer-grained adaptation points (at exponential tree size K^N), more forks
// give finer bandwidth discrimination — and reports the offline tree reward
// and the tree's node count for each shape.
#include <cstdio>

#include "bench/common.h"
#include "latency/device_profile.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {
struct ShapeResult {
  double reward = 0.0;
  int nodes = 0;
};

ShapeResult run_shape(const nn::Model& base,
                      const engine::StrategyEvaluator& evaluator,
                      const net::BandwidthTrace& trace, std::size_t blocks,
                      int forks) {
  const auto boundaries = nn::block_boundaries(base, blocks);
  std::vector<double> fork_bw;
  for (int k = 0; k < forks; ++k)
    fork_bw.push_back(trace.quantile((k + 0.5) / forks));
  for (std::size_t i = 1; i < fork_bw.size(); ++i)
    if (fork_bw[i] <= fork_bw[i - 1]) fork_bw[i] = fork_bw[i - 1] * 1.01;

  tree::TreeSearchConfig config;
  config.episodes = 120;
  config.seed = 0xA5 + blocks * 16 + static_cast<std::uint64_t>(forks);
  config.branch_config.episodes = 120;
  tree::TreeSearch search(evaluator, boundaries, fork_bw, config);
  const auto result = search.run();

  ShapeResult out;
  out.reward = result.tree_reward;
  const std::function<int(const tree::TreeNode&)> count =
      [&](const tree::TreeNode& node) {
        int n = 0;
        for (const tree::TreeNode& c : node.children) n += 1 + count(c);
        return n;
      };
  out.nodes = count(result.tree.root());
  return out;
}
}  // namespace

int main() {
  std::printf("=== Ablation: model-tree shape (N blocks x K bandwidth types) ===\n");
  std::printf("Context: VGG11, phone, '4G outdoor quick'\n\n");

  const auto base = std::make_shared<nn::Model>(nn::make_vgg11());
  const net::Scene scene = net::scene_by_name("4G outdoor quick");
  const net::BandwidthTrace trace =
      net::generate_trace(scene.trace, 60'000.0, 0xA51);
  latency::TransferModel transfer;
  transfer.rtt_ms = scene.rtt_ms;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  engine::StrategyEvaluator evaluator(
      *base, std::move(pe), engine::AccuracyModel(0.9201, base->size(), 0xA52),
      engine::RewardConfig{});

  util::AsciiTable table({"N blocks", "K forks", "Tree nodes", "Tree reward"});
  for (std::size_t blocks : {2u, 3u, 4u}) {
    for (int forks : {2, 3}) {
      const ShapeResult r = run_shape(*base, evaluator, trace, blocks, forks);
      table.add_row({std::to_string(blocks), std::to_string(forks),
                     std::to_string(r.nodes), fmt(r.reward)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Rewards vary within a few points across shapes while the node count\n"
      "(and hence offline search and on-device storage cost) grows as K^N —\n"
      "the paper's small N=3, K=2 tree already captures most of the\n"
      "adaptation value, which is why larger trees don't pay for themselves.\n");
  return 0;
}
