#include "bench/common.h"

#include <cstdio>

#include "latency/device_profile.h"
#include "obs/export.h"
#include "util/string_util.h"

namespace cadmc::bench {

using engine::Strategy;

engine::Strategy ContextArtifacts::surgery_strategy() const {
  Strategy s;
  s.cut = surgery_cut;
  s.plan.assign(base->size(), compress::TechniqueId::kNone);
  return s;
}

double paper_base_accuracy(const std::string& model_name) {
  return model_name == "VGG11" ? 0.9201 : 0.8404;
}

std::string fmt(double v, int decimals) {
  return util::format_double(v, decimals);
}

void emit_metrics_sidecar(const std::string& csv_path) {
  if (!obs::init_from_env()) return;
  const std::string path = csv_path + ".metrics.jsonl";
  if (obs::export_jsonl(obs::MetricsRegistry::global(), path))
    std::printf("metrics sidecar saved to %s\n", path.c_str());
  else
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
}

ContextArtifacts train_context(const net::EvalContext& context,
                               const BenchConfig& config) {
  obs::init_from_env();
  ContextArtifacts art;
  art.model_name = context.model;
  art.device_name = context.device == "phone" ? "Phone" : "TX2";
  art.scene_name = context.scene.name;
  art.base = std::make_shared<nn::Model>(
      context.model == "VGG11" ? nn::make_vgg11() : nn::make_alexnet());
  art.boundaries = nn::block_boundaries(*art.base, 3);  // N = 3 (Sec. VII)

  const std::uint64_t scene_seed =
      config.seed ^ util::fnv1a(context.model + context.device + context.scene.name);
  art.trace = net::generate_trace(context.scene.trace, config.trace_duration_ms,
                                  scene_seed);
  // K = 2 bandwidth types: lower/upper quartiles (Sec. VII setup).
  art.fork_bandwidths = {art.trace.quantile(0.25), art.trace.quantile(0.75)};

  latency::TransferModel transfer;
  transfer.rtt_ms = context.scene.rtt_ms;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::profile_by_name(context.device)),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  art.evaluator = std::make_unique<engine::StrategyEvaluator>(
      *art.base, std::move(pe),
      engine::AccuracyModel(paper_base_accuracy(context.model),
                            art.base->size(), scene_seed ^ 0xACC),
      engine::RewardConfig{});

  const auto fork_average = [&](const engine::Strategy& s) {
    double total = 0.0;
    for (double bw : art.fork_bandwidths)
      total += art.evaluator->evaluate(s, bw).reward;
    return total / static_cast<double>(art.fork_bandwidths.size());
  };

  // --- Dynamic DNN Surgery baseline: min-cut at the median bandwidth.
  const double median_bw = art.trace.quantile(0.5);
  art.surgery_cut = partition::surgery_cut_for_chain(
      *art.base, art.evaluator->partition_eval(), median_bw);
  art.surgery_offline_reward = fork_average(art.surgery_strategy());

  // --- Optimal branch (Alg. 1) at the median bandwidth.
  engine::BranchSearchConfig branch_config;
  branch_config.episodes = config.branch_episodes;
  branch_config.seed = scene_seed ^ 0xB1;
  branch_config.seed_strategies.push_back(art.surgery_strategy());
  engine::BranchSearch branch_search(*art.evaluator, branch_config);
  art.branch = branch_search.run(median_bw);
  art.branch_offline_reward = fork_average(art.branch.best);

  // --- Context-aware model tree (Alg. 3), boosted with both the per-fork
  // branches and the median branch.
  tree::TreeSearchConfig tree_config;
  tree_config.episodes = config.tree_episodes;
  tree_config.seed = scene_seed ^ 0x77;
  tree_config.branch_config.episodes = config.branch_episodes;
  tree_config.branch_config.seed_strategies.push_back(art.surgery_strategy());
  tree_config.extra_boost_strategies.push_back(art.branch.best);
  tree_config.extra_boost_strategies.push_back(art.surgery_strategy());
  tree::TreeSearch tree_search(*art.evaluator, art.boundaries,
                               art.fork_bandwidths, tree_config);
  art.tree = tree_search.run();
  return art;
}

std::vector<ContextArtifacts> train_all_contexts(const BenchConfig& config) {
  std::vector<ContextArtifacts> out;
  for (const net::EvalContext& context : net::paper_contexts())
    out.push_back(train_context(context, config));
  return out;
}

PolicyStats run_policies(const ContextArtifacts& art, runtime::TimingMode mode,
                         int inferences, std::uint64_t seed) {
  runtime::RunnerConfig rc;
  rc.mode = mode;
  rc.inferences = inferences;
  rc.seed = seed;
  runtime::InferenceRunner runner(*art.evaluator, art.trace, art.boundaries, rc);
  PolicyStats stats;
  stats.surgery = runner.run_surgery();
  stats.branch = runner.run_branch(art.branch.best);
  stats.tree = runner.run_tree(art.tree.tree);
  return stats;
}

}  // namespace cadmc::bench
