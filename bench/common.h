// Shared harness for the paper-reproduction benches: builds the
// (model, device, scene) contexts of Tables III-V, trains the three
// policies — Dynamic DNN Surgery, Optimal Branch (Alg. 1) and the
// Context-Aware Model Tree (Alg. 3) — and exposes the offline/emulation/
// field measurements each bench formats.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/branch_search.h"
#include "nn/factory.h"
#include "partition/surgery.h"
#include "runtime/emulator.h"
#include "tree/tree_search.h"

namespace cadmc::bench {

struct ContextArtifacts {
  std::string model_name;   // "VGG11" / "AlexNet"
  std::string device_name;  // "Phone" / "TX2"
  std::string scene_name;

  // Heap-held so its address is stable across moves of this struct (the
  // evaluator and the model tree keep pointers to it).
  std::shared_ptr<nn::Model> base;
  std::vector<std::size_t> boundaries;
  net::BandwidthTrace trace;
  std::vector<double> fork_bandwidths;  // K = 2 quartile representatives
  std::unique_ptr<engine::StrategyEvaluator> evaluator;

  // Offline artifacts. Offline rewards are all reported on the same
  // metric: the average reward across the K fork bandwidths (the tree
  // adapts per fork; surgery/branch execute their fixed plan).
  std::size_t surgery_cut = 0;          // min-cut at the median bandwidth
  double surgery_offline_reward = 0.0;  // fork-averaged
  double branch_offline_reward = 0.0;   // fork-averaged
  engine::BranchSearchResult branch;    // Alg. 1 at the median bandwidth
  tree::TreeSearchResult tree;          // Alg. 3 (tree_reward is fork-avg)

  engine::Strategy surgery_strategy() const;
};

struct BenchConfig {
  int branch_episodes = 150;
  int tree_episodes = 150;
  double trace_duration_ms = 60'000.0;
  std::uint64_t seed = 0xBE7C;
};

/// Builds and trains one (model, device, scene) context.
ContextArtifacts train_context(const net::EvalContext& context,
                               const BenchConfig& config);

/// All 14 paper contexts (Tables III-V rows), trained.
std::vector<ContextArtifacts> train_all_contexts(const BenchConfig& config);

/// Emulation / field sweeps over one trained context.
struct PolicyStats {
  runtime::RunStats surgery;
  runtime::RunStats branch;
  runtime::RunStats tree;
};
PolicyStats run_policies(const ContextArtifacts& art, runtime::TimingMode mode,
                         int inferences, std::uint64_t seed);

/// Base accuracy the paper reports for each model.
double paper_base_accuracy(const std::string& model_name);

std::string fmt(double v, int decimals = 2);

/// Writes the global registry's metric/span stream to
/// "<csv_path>.metrics.jsonl" when collection is enabled (CADMC_METRICS=1 in
/// the environment, or obs::set_enabled), so every bench CSV gets a sidecar
/// describing the run that produced it. No-op while disabled.
void emit_metrics_sidecar(const std::string& csv_path);

}  // namespace cadmc::bench
