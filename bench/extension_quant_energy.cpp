// Extension bench (beyond the paper; see DESIGN.md): (1) lets the RL search
// use Q1 8-bit quantization on top of the Table II catalog and measures the
// extra reward it buys, and (2) prices every policy's ENERGY per inference
// with the first-order mobile energy model — the battery angle the paper's
// introduction motivates but never measures.
#include <cstdio>

#include "bench/common.h"
#include "latency/energy_model.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {
double strategy_energy_mj(const ContextArtifacts& art,
                          const engine::Strategy& s, double bandwidth) {
  const auto eval = art.evaluator->evaluate(s, bandwidth);
  latency::EnergyModel em(latency::phone_energy_profile());
  // Realize the compressed edge structurally to count its actual MACCs.
  compress::TechniqueRegistry structural(/*faithful_weights=*/false, true);
  util::Rng rng(0xE6E);
  const engine::RealizedStrategy realized =
      engine::realize_strategy(*art.base, s, structural, rng);
  const std::int64_t edge_macc =
      realized.model.slice(0, realized.cut).total_macc();
  return em.inference_mj(edge_macc, eval.breakdown.transfer_ms,
                         eval.breakdown.transfer_ms + eval.breakdown.cloud_ms);
}
}  // namespace

int main() {
  std::printf("=== Extensions: Q1 quantization in the search + energy accounting ===\n");
  std::printf("Context: VGG11, phone, '4G (weak) indoor'\n\n");
  BenchConfig config;
  net::EvalContext context{"VGG11", "phone",
                           net::scene_by_name("4G (weak) indoor")};
  const ContextArtifacts art = train_context(context, config);

  // Re-run the branch search with the extended catalog on the same budget.
  engine::StrategyEvaluator extended(
      *art.base, art.evaluator->partition_eval(),
      engine::AccuracyModel(0.9201, art.base->size(), 0xE17),
      engine::RewardConfig{}, 0xE18, /*include_extensions=*/true);
  engine::BranchSearchConfig bc;
  bc.episodes = config.branch_episodes;
  bc.seed = 0xE19;
  engine::BranchSearch search(extended, bc);
  const double median_bw = art.trace.quantile(0.5);
  const auto extended_branch = search.run(median_bw);

  int q1_sites = 0;
  for (auto id : extended_branch.best.plan)
    q1_sites += id == compress::TechniqueId::kQ1Quantize;

  util::AsciiTable table({"Catalog", "Branch reward", "Latency (ms)",
                          "Accuracy (%)", "Q1 sites"});
  const auto paper_eval = art.evaluator->evaluate(art.branch.best, median_bw);
  table.add_row({"Table II (paper)", fmt(paper_eval.reward),
                 fmt(paper_eval.latency_ms), fmt(paper_eval.accuracy * 100),
                 "0"});
  table.add_row({"Table II + Q1", fmt(extended_branch.best_eval.reward),
                 fmt(extended_branch.best_eval.latency_ms),
                 fmt(extended_branch.best_eval.accuracy * 100),
                 std::to_string(q1_sites)});
  std::printf("%s\n", table.to_string().c_str());

  // Energy per inference of the three paper policies at the median state.
  util::AsciiTable energy({"Policy", "Latency (ms)", "Energy (mJ)"});
  const auto add_energy = [&](const char* name, const engine::Strategy& s) {
    const auto eval = art.evaluator->evaluate(s, median_bw);
    energy.add_row({name, fmt(eval.latency_ms),
                    fmt(strategy_energy_mj(art, s, median_bw))});
  };
  add_energy("Surgery", art.surgery_strategy());
  add_energy("Branch", art.branch.best);
  const auto tree_path = art.tree.tree.strategy_for_path(
      std::vector<int>(art.tree.tree.num_blocks(), 0));
  add_energy("Tree (poor fork)", tree_path.strategy);
  std::printf("%s\n", energy.to_string().c_str());
  std::printf(
      "Quantization adds a near-free latency lever (CPU int8 kernels),\n"
      "so the extended catalog should match or beat the Table II branch.\n"
      "Energy tracks latency closely on the phone because compute dominates;\n"
      "offloading trades compute nJ/MACC for radio transmit power.\n");
  return 0;
}
