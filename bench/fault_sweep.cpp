// Fault sweep — availability, effective accuracy and tail latency under
// increasing link-outage rates, for the surgery baseline and the model tree,
// with the edge-only fallback on and off.
//
// For each outage rate the scene trace gets random blackouts spliced in
// (FaultInjector::degrade_trace) and every cloud leg runs under a deadline.
// With the fallback on, a miss reroutes the uncompressed suffix to the edge
// device: availability stays at 100% and the cost shows up as tail latency.
// With it off, every miss is an unserved inference and availability — and
// with it the effective accuracy (mean accuracy x availability) — collapses
// as the outage rate grows. That asymmetry is the whole argument for keeping
// the all-edge fork around (Sec. VII-B3).
#include <cstdio>

#include "bench/common.h"
#include "runtime/fault.h"
#include "util/csv.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {

struct Cell {
  const char* policy;
  bool fallback;
  double outage_rate;
  runtime::RunStats stats;
};

runtime::RunStats run_policy(const ContextArtifacts& art,
                             const net::BandwidthTrace& trace,
                             const char* policy, bool fallback) {
  runtime::RunnerConfig rc;
  rc.mode = runtime::TimingMode::kField;
  rc.inferences = 40;
  rc.seed = 0xFA57;
  rc.cloud_deadline_ms = 300.0;
  rc.edge_fallback = fallback;
  runtime::InferenceRunner runner(*art.evaluator, trace, art.boundaries, rc);
  return policy[0] == 's' ? runner.run_surgery() : runner.run_tree(art.tree.tree);
}

}  // namespace

int main() {
  std::printf(
      "=== Fault sweep: availability / effective accuracy / tail latency "
      "under link outages ===\n\n");
  BenchConfig config;
  config.branch_episodes = 60;
  config.tree_episodes = 60;
  // A fat WiFi link (above the AlexNet offload crossover) so the trained
  // policies genuinely lean on the cloud — that is where outages hurt.
  net::Scene scene = net::scene_by_name("WiFi outdoor slow");
  scene.trace.mean_mbps = 20.0;
  scene.rtt_ms = 8.0;
  const net::EvalContext context{"AlexNet", "phone", scene};
  const ContextArtifacts art = train_context(context, config);
  std::printf("context: %s on %s under '%s', deadline 300 ms, 40 inferences\n\n",
              art.model_name.c_str(), art.device_name.c_str(),
              art.scene_name.c_str());

  const double rates[] = {0.0, 0.05, 0.10, 0.20};
  const char* policies[] = {"surgery", "tree"};
  std::vector<Cell> cells;
  for (double rate : rates) {
    runtime::FaultPlan plan;
    plan.outage_rate_per_s = rate;
    plan.outage_mean_ms = 1'000.0;
    plan.seed = 0xFA017;
    runtime::FaultInjector injector(plan);
    const net::BandwidthTrace trace =
        rate > 0.0 ? injector.degrade_trace(art.trace) : art.trace;
    for (const char* policy : policies)
      for (bool fallback : {true, false})
        cells.push_back(
            {policy, fallback, rate, run_policy(art, trace, policy, fallback)});
  }

  util::AsciiTable table({"Outage/s", "Policy", "Fallback", "Avail %",
                          "Eff.Acc %", "Mean ms", "p99 ms", "Miss", "Edge",
                          "Fail"});
  util::CsvWriter csv({"outage_rate", "policy", "fallback", "availability",
                       "effective_accuracy", "mean_latency_ms",
                       "p99_latency_ms", "deadline_misses", "edge_fallbacks",
                       "failures"});
  for (const Cell& c : cells) {
    const double eff_acc = c.stats.mean_accuracy * c.stats.availability;
    table.add_row({fmt(c.outage_rate, 2), c.policy, c.fallback ? "on" : "off",
                   fmt(c.stats.availability * 100, 1), fmt(eff_acc * 100, 2),
                   fmt(c.stats.mean_latency_ms), fmt(c.stats.p99_latency_ms),
                   std::to_string(c.stats.deadline_misses),
                   std::to_string(c.stats.edge_fallbacks),
                   std::to_string(c.stats.failures)});
    csv.add_row({fmt(c.outage_rate, 3), c.policy,
                 c.fallback ? "on" : "off", fmt(c.stats.availability, 4),
                 fmt(eff_acc, 4), fmt(c.stats.mean_latency_ms, 3),
                 fmt(c.stats.p99_latency_ms, 3),
                 std::to_string(c.stats.deadline_misses),
                 std::to_string(c.stats.edge_fallbacks),
                 std::to_string(c.stats.failures)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: with the fallback on availability pins at 100%% and\n"
      "outages surface as p99 latency; with it off availability and the\n"
      "effective accuracy fall with the outage rate.\n");
  const std::string csv_path = "fault_sweep.csv";
  if (csv.save(csv_path)) std::printf("series saved to %s\n", csv_path.c_str());
  emit_metrics_sidecar(csv_path);
  return 0;
}
