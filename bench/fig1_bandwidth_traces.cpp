// Fig. 1 — "Real-world network context": bandwidth over time for the two
// sample scenes (4G while moving quickly outdoor; weak WiFi indoor), showing
// drastic variation within a 1-second window, against Table I-scale
// inference times. Also dumps the traces as CSV next to the binary.
#include <cstdio>

#include "bench/common.h"
#include "latency/transfer_model.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cadmc;

namespace {
void show_trace(const net::Scene& scene, std::uint64_t seed) {
  const net::BandwidthTrace trace =
      net::generate_trace(scene.trace, 60'000.0, seed);
  std::vector<double> mbps;
  for (double s : trace.samples())
    mbps.push_back(latency::bytes_per_ms_to_mbps(s));

  std::printf("\n%s (60 s, %.0f ms sampling)\n", scene.name.c_str(),
              trace.dt_ms());
  std::printf("%s\n", util::ascii_chart(mbps, 10, 100).c_str());
  std::printf("  mean %.2f Mbps  p25 %.2f  p50 %.2f  p75 %.2f  min %.2f  max %.2f\n",
              util::mean(mbps), util::quantile(mbps, 0.25),
              util::quantile(mbps, 0.5), util::quantile(mbps, 0.75),
              util::min_of(mbps), util::max_of(mbps));

  // The paper's observation: the bandwidth changes drastically within a
  // window like 1 s — smaller than one model inference.
  double worst_1s_swing = 0.0;
  const int per_second = static_cast<int>(1000.0 / trace.dt_ms());
  for (std::size_t i = 0; i + per_second < mbps.size(); ++i) {
    double lo = mbps[i], hi = mbps[i];
    for (int j = 0; j <= per_second; ++j) {
      lo = std::min(lo, mbps[i + j]);
      hi = std::max(hi, mbps[i + j]);
    }
    worst_1s_swing = std::max(worst_1s_swing, hi - lo);
  }
  std::printf("  worst bandwidth swing within any 1 s window: %.2f Mbps (%.0f%% of mean)\n",
              worst_1s_swing, 100.0 * worst_1s_swing / util::mean(mbps));

  std::string path = "fig1_";
  for (char c : scene.name)
    path += (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  path += ".csv";
  if (trace.save_csv(path)) std::printf("  trace saved to %s\n", path.c_str());
  bench::emit_metrics_sidecar(path);
}
}  // namespace

int main() {
  std::printf("=== Fig. 1: real-world network context (synthetic traces; see DESIGN.md) ===\n");
  show_trace(net::scene_by_name("4G outdoor quick"), 0xF161);
  show_trace(net::scene_by_name("WiFi (weak) indoor"), 0xF162);
  std::printf(
      "\nBoth traces vary drastically inside a 1 s window, while Table I puts\n"
      "full on-device inference of classical models at 1.1-5.7 s — the\n"
      "constant-network assumption cannot hold across one inference.\n");
  return 0;
}
