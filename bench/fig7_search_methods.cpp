// Fig. 7 — comparison of search methods on the model-tree objective:
// RL-based tree search vs random search vs epsilon-greedy search, VGG11 on
// the phone under "4G indoor static". The paper reports maxima of 367.70
// (RL) > 358.90 (eps-greedy) > 358.77 (random); we reproduce the ordering
// on our calibrated substrate and print the best-so-far curves.
#include <cstdio>

#include "bench/common.h"
#include "util/csv.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {
/// Random/eps-greedy explore the same joint space as the RL engine: a
/// genome = (cut, technique per layer) evaluated as a tree-less strategy at
/// the median bandwidth plus fork-averaged trajectory (to keep all methods
/// on the model-tree objective we score the expected reward across forks of
/// the strategy grafted on every fork).
double tree_objective(const ContextArtifacts& art,
                      const engine::Strategy& strategy) {
  double total = 0.0;
  for (double bw : art.fork_bandwidths)
    total += art.evaluator->evaluate(strategy, bw).reward;
  return total / static_cast<double>(art.fork_bandwidths.size());
}

void print_curve(const char* name, const std::vector<double>& best_curve) {
  std::printf("%-12s", name);
  for (std::size_t i = 0; i < best_curve.size(); i += best_curve.size() / 10)
    std::printf(" %7.2f", best_curve[i]);
  std::printf(" | final %.2f\n", best_curve.back());
}
}  // namespace

int main() {
  std::printf("=== Fig. 7: RL vs random vs epsilon-greedy search ===\n");
  std::printf("Context: VGG11, phone, '4G indoor static'\n\n");

  BenchConfig config;
  config.branch_episodes = 200;
  config.tree_episodes = 300;
  net::EvalContext context{"VGG11", "phone",
                           net::scene_by_name("4G indoor static")};
  const ContextArtifacts art = train_context(context, config);

  // Baselines on the same episode budget as the tree search.
  const int episodes = config.tree_episodes;
  const auto space = engine::make_strategy_space(*art.evaluator);
  const auto objective = [&](const std::vector<int>& genome) {
    return tree_objective(art,
                          engine::genome_to_strategy(*art.evaluator, genome));
  };
  const auto random = rl::random_search(space, objective, episodes, 0x71);
  const auto greedy =
      rl::epsilon_greedy_search(space, objective, episodes, 0.8, 0.05, 0x72);

  std::printf("Best-so-far reward every %d episodes:\n", episodes / 10);
  print_curve("RL (tree)", art.tree.log.best_so_far());
  print_curve("eps-greedy", greedy.log.best_so_far());
  print_curve("random", random.log.best_so_far());

  // Smoothed end-of-training levels (mean over the last 50 episodes) — the
  // shape Fig. 7 plots, less sensitive to a single lucky rollout.
  const std::size_t window = 50;
  util::AsciiTable table({"Method", "Max reward", "Mean (last 50)", "Paper max"});
  table.add_row({"RL-based tree search", fmt(art.tree.tree_reward),
                 fmt(art.tree.log.mean_last(window)), "367.70"});
  table.add_row({"Epsilon-greedy search", fmt(greedy.best_reward),
                 fmt(greedy.log.mean_last(window)), "358.90"});
  table.add_row({"Random search", fmt(random.best_reward),
                 fmt(random.log.mean_last(window)), "358.77"});
  std::printf("\n%s\n", table.to_string().c_str());

  util::CsvWriter csv({"episode", "rl_best", "greedy_best", "random_best"});
  const auto rl_curve = art.tree.log.best_so_far();
  const auto greedy_curve = greedy.log.best_so_far();
  const auto random_curve = random.log.best_so_far();
  for (std::size_t e = 0; e < rl_curve.size(); ++e)
    csv.add_row(std::vector<double>{
        static_cast<double>(e), rl_curve[e],
        e < greedy_curve.size() ? greedy_curve[e] : greedy_curve.back(),
        e < random_curve.size() ? random_curve[e] : random_curve.back()});
  if (csv.save("fig7_search_curves.csv"))
    std::printf("curves saved to fig7_search_curves.csv\n");
  emit_metrics_sidecar("fig7_search_curves.csv");

  const bool ordering = art.tree.tree_reward >= greedy.best_reward - 1.0 &&
                        art.tree.tree_reward >= random.best_reward - 1.0;
  std::printf("\nShape check (RL >= eps-greedy, random): %s\n",
              ordering ? "HOLDS" : "VIOLATED");
  return 0;
}
