// Fig. 8 — an illustration of the searching processes of the different
// strategies under "4G indoor static" (VGG11, phone): Dynamic DNN Surgery's
// single cut, the optimal branch's cut+compression, and the model tree's
// per-fork branches, each annotated with its reward (the paper's example:
// surgery 348.06 < branch 349.51..351.95 < tree 354.81).
#include <cstdio>

#include "bench/common.h"
#include "compress/transform.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {
std::string describe_strategy(const ContextArtifacts& art,
                              const engine::Strategy& s) {
  if (s.cut == 0) {
    (void)art;
    return "[input -> cloud: everything]";
  }
  std::string out = "[";
  for (std::size_t i = 0; i < s.plan.size(); ++i) {
    if (i == s.cut) out += " || cloud: ";
    if (i < s.cut) {
      out += compress::technique_short_name(s.plan[i]);
      out += i + 1 < s.cut ? "," : "";
    }
  }
  if (s.cut >= s.plan.size()) out += " (all on edge)";
  else if (s.cut == 0) out.insert(1, "|| cloud: everything");
  out += "]";
  (void)art;
  return out;
}
}  // namespace

int main() {
  std::printf("=== Fig. 8: strategies searched under '4G indoor static' (VGG11/phone) ===\n\n");
  BenchConfig config;
  config.branch_episodes = 250;
  config.tree_episodes = 250;
  net::EvalContext context{"VGG11", "phone",
                           net::scene_by_name("4G indoor static")};
  const ContextArtifacts art = train_context(context, config);
  const double median_bw = art.trace.quantile(0.5);

  std::printf("Base DNN:        %zu layers, blocks A|B|C at boundaries %zu, %zu\n",
              art.base->size(), art.boundaries[0], art.boundaries[1]);
  std::printf("Bandwidth types: poor %.2f Mbps / good %.2f Mbps (quartiles)\n\n",
              latency::bytes_per_ms_to_mbps(art.fork_bandwidths[0]),
              latency::bytes_per_ms_to_mbps(art.fork_bandwidths[1]));

  std::printf("Dynamic DNN Surgery: cut@%zu/%zu (no compression)\n",
              art.surgery_cut, art.base->size());
  std::printf("  reward %.2f   (paper example: 348.06)\n\n",
              art.surgery_offline_reward);

  std::printf("Optimal Branch (Alg. 1): cut@%zu, edge plan %s\n",
              art.branch.best.cut,
              describe_strategy(art, art.branch.best).c_str());
  std::printf("  reward %.2f   (paper example: 349.51)\n\n",
              art.branch.best_eval.reward);

  std::printf("Model Tree (Alg. 3), per-node decisions and rewards:\n%s\n",
              art.tree.tree.to_string().c_str());
  std::printf("  tree reward (root average) %.2f   (paper example: 354.81)\n\n",
              art.tree.tree_reward);

  // The paper's narrative: the boosted branch guarantees the tree performs
  // at least as well as the optimal branch; other branches exploit the
  // network's resurgence for better rewards.
  const double branch_at_median =
      art.evaluator->evaluate(art.branch.best, median_bw).reward;
  std::printf("Ordering check: surgery %.2f <= branch %.2f; tree exploits\n"
              "per-fork adaptation on top of the grafted branches.\n",
              art.surgery_offline_reward, branch_at_median);
  return 0;
}
