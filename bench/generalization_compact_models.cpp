// Generalization bench (beyond the paper's VGG11/AlexNet): the decision
// engine applied to base models that are ALREADY mobile-optimized
// (MobileNet, SqueezeNet). Expected shape: the compression lever shrinks —
// Table II transforms have little to offer a depthwise/Fire network — so
// the tree's advantage over Dynamic DNN Surgery narrows to what partition
// adaptivity alone provides.
#include <cstdio>

#include "bench/common.h"
#include "latency/device_profile.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

namespace {
void run_base(const char* name, nn::Model base_model, util::AsciiTable& table) {
  const auto base = std::make_shared<nn::Model>(std::move(base_model));
  const net::Scene scene = net::scene_by_name("4G (weak) indoor");
  const net::BandwidthTrace trace =
      net::generate_trace(scene.trace, 60'000.0, 0x6E4);
  latency::TransferModel transfer;
  transfer.rtt_ms = scene.rtt_ms;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  engine::StrategyEvaluator evaluator(
      *base, std::move(pe), engine::AccuracyModel(0.90, base->size(), 0x6E5),
      engine::RewardConfig{});

  const double median = trace.quantile(0.5);
  engine::Strategy surgery;
  surgery.cut =
      partition::surgery_cut_for_chain(*base, evaluator.partition_eval(), median);
  surgery.plan.assign(base->size(), compress::TechniqueId::kNone);
  const auto surgery_eval = evaluator.evaluate(surgery, median);

  tree::TreeSearchConfig config;
  config.episodes = 120;
  config.seed = 0x6E6;
  config.branch_config.episodes = 120;
  config.extra_boost_strategies.push_back(surgery);
  tree::TreeSearch search(evaluator, nn::block_boundaries(*base, 3),
                          {trace.quantile(0.25), trace.quantile(0.75)}, config);
  const auto result = search.run();

  // Count compression decisions in the final tree.
  int compressed_sites = 0;
  const std::function<void(const tree::TreeNode&)> walk =
      [&](const tree::TreeNode& node) {
        for (const tree::TreeNode& c : node.children) {
          for (auto id : c.block_plan)
            compressed_sites += id != compress::TechniqueId::kNone;
          walk(c);
        }
      };
  walk(result.tree.root());

  table.add_row({name, std::to_string(base->size()),
                 fmt(base->total_macc() / 1e6, 1),
                 fmt(evaluator.edge_slice_latency_ms(surgery, 0, base->size())),
                 fmt(surgery_eval.reward), fmt(result.tree_reward),
                 std::to_string(compressed_sites)});
}
}  // namespace

int main() {
  std::printf("=== Generalization: compact base models (4G weak indoor, phone) ===\n\n");
  util::AsciiTable table({"Base model", "Layers", "MMACCs", "Edge full (ms)",
                          "Surgery R", "Tree R", "Compressed sites"});
  run_base("VGG11", nn::make_vgg11(), table);
  run_base("AlexNet", nn::make_alexnet(), table);
  run_base("MobileNet", nn::make_mobilenet(), table);
  run_base("SqueezeNet", nn::make_squeezenet(), table);
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Compact bases (MobileNet/SqueezeNet) are already fast on the edge, so\n"
      "the tree finds few compression sites and its margin over surgery comes\n"
      "from partition adaptivity alone — the engine degrades gracefully when\n"
      "the structural-flexibility lever is spent.\n");
  return 0;
}
