// Google-benchmark micro benchmarks of the computational substrate: conv2d,
// matmul, LSTM step, SVD, trace generation and strategy evaluation — the
// hot paths behind the offline search (0.5-2 h on one GPU in the paper;
// seconds per context on this substrate).
#include <benchmark/benchmark.h>

#include "controller/lstm.h"
#include "engine/strategy.h"
#include "latency/device_profile.h"
#include "net/generator.h"
#include "nn/conv.h"
#include "nn/factory.h"
#include "tensor/ops.h"
#include "tensor/svd.h"

using namespace cadmc;

namespace {

void BM_Conv2dForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(1);
  nn::Conv2d conv(c, c, 3, 1, 1, rng);
  const tensor::Tensor x = tensor::Tensor::randn({1, c, 16, 16}, rng, 0.3f);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
  state.SetItemsProcessed(state.iterations() * conv.macc({c, 16, 16}));
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(64);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

void BM_BiLstmEpisode(benchmark::State& state) {
  util::Rng rng(3);
  controller::BiLstm lstm(17, 24, rng);
  const tensor::Tensor xs = tensor::Tensor::randn({29, 17}, rng);
  for (auto _ : state) {
    const tensor::Tensor hs = lstm.forward(xs);
    tensor::Tensor grad = hs;
    benchmark::DoNotOptimize(lstm.backward(grad));
  }
}
BENCHMARK(BM_BiLstmEpisode);

void BM_RandomizedSvd(benchmark::State& state) {
  util::Rng rng(4);
  const tensor::Tensor a = tensor::Tensor::randn({512, 512}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(tensor::randomized_low_rank(a, 64));
}
BENCHMARK(BM_RandomizedSvd);

void BM_TraceGeneration(benchmark::State& state) {
  net::TraceGeneratorParams params;
  std::uint64_t seed = 5;
  for (auto _ : state)
    benchmark::DoNotOptimize(net::generate_trace(params, 60'000.0, seed++));
}
BENCHMARK(BM_TraceGeneration);

void BM_StrategyEvaluation(benchmark::State& state) {
  static const nn::Model base = nn::make_vgg11();
  latency::TransferModel transfer;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  engine::StrategyEvaluator evaluator(
      base, std::move(pe), engine::AccuracyModel(0.92, base.size(), 6),
      engine::RewardConfig{});
  engine::Strategy s;
  s.cut = base.size();
  s.plan.assign(base.size(), compress::TechniqueId::kNone);
  s.plan[4] = compress::TechniqueId::kC1MobileNet;
  double bw = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(s, bw));
    bw += 1.0;  // defeat the memo so the full path is measured
  }
}
BENCHMARK(BM_StrategyEvaluation);

}  // namespace

BENCHMARK_MAIN();
