// Google-benchmark micro benchmarks of the computational substrate: conv2d,
// matmul, LSTM step, SVD, trace generation and strategy evaluation — the
// hot paths behind the offline search (0.5-2 h on one GPU in the paper;
// seconds per context on this substrate).
#include <benchmark/benchmark.h>

#include "controller/lstm.h"
#include "engine/strategy.h"
#include "latency/device_profile.h"
#include "net/generator.h"
#include "nn/conv.h"
#include "nn/factory.h"
#include "tensor/ops.h"
#include "tensor/svd.h"

using namespace cadmc;

namespace {

void BM_Conv2dForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(1);
  nn::Conv2d conv(c, c, 3, 1, 1, rng);
  const tensor::Tensor x = tensor::Tensor::randn({1, c, 16, 16}, rng, 0.3f);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
  state.SetItemsProcessed(state.iterations() * conv.macc({c, 16, 16}));
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(11);
  nn::Conv2d conv(c, c, 3, 1, 1, rng);
  const tensor::Tensor x = tensor::Tensor::randn({1, c, 16, 16}, rng, 0.3f);
  const tensor::Tensor grad =
      tensor::Tensor::randn({1, c, 16, 16}, rng, 0.1f);
  for (auto _ : state) {
    conv.forward(x, true);
    benchmark::DoNotOptimize(conv.backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * 3 * conv.macc({c, 16, 16}));
}
BENCHMARK(BM_Conv2dBackward)->Arg(16)->Arg(64);

// The two conv fast paths: 1x1 pointwise (pure GEMM, no im2col copy) and
// depthwise (direct per-channel loop).
void BM_Conv2dPointwise(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(12);
  nn::Conv2d conv(c, c, 1, 1, 0, rng);
  const tensor::Tensor x = tensor::Tensor::randn({1, c, 16, 16}, rng, 0.3f);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
  state.SetItemsProcessed(state.iterations() * conv.macc({c, 16, 16}));
}
BENCHMARK(BM_Conv2dPointwise)->Arg(64)->Arg(128);

void BM_Conv2dDepthwise(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(13);
  nn::Conv2d conv(c, c, 3, 1, 1, rng, /*groups=*/c);
  const tensor::Tensor x = tensor::Tensor::randn({1, c, 16, 16}, rng, 0.3f);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
  state.SetItemsProcessed(state.iterations() * conv.macc({c, 16, 16}));
}
BENCHMARK(BM_Conv2dDepthwise)->Arg(64)->Arg(128);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

void BM_MatmulTn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(14);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul_tn(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(15);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(256);

// Naive reference kernels, for speedup-vs-blocked comparisons in one run.
void BM_ReferenceConv2dForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  util::Rng rng(16);
  const tensor::Tensor x = tensor::Tensor::randn({1, c, 16, 16}, rng, 0.3f);
  const tensor::Tensor w = tensor::Tensor::randn({c, c, 3, 3}, rng, 0.1f);
  const tensor::Tensor b = tensor::Tensor::randn({c}, rng, 0.1f);
  const tensor::Conv2dSpec spec{1, 1, 1};
  for (auto _ : state)
    benchmark::DoNotOptimize(tensor::reference::conv2d(x, w, b, spec));
  state.SetItemsProcessed(state.iterations() * 9LL * c * c * 16 * 16);
}
BENCHMARK(BM_ReferenceConv2dForward)->Arg(16)->Arg(64);

void BM_ReferenceMatmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(17);
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(tensor::reference::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_ReferenceMatmul)->Arg(64)->Arg(256);

void BM_BiLstmEpisode(benchmark::State& state) {
  util::Rng rng(3);
  controller::BiLstm lstm(17, 24, rng);
  const tensor::Tensor xs = tensor::Tensor::randn({29, 17}, rng);
  for (auto _ : state) {
    const tensor::Tensor hs = lstm.forward(xs);
    tensor::Tensor grad = hs;
    benchmark::DoNotOptimize(lstm.backward(grad));
  }
}
BENCHMARK(BM_BiLstmEpisode);

void BM_RandomizedSvd(benchmark::State& state) {
  util::Rng rng(4);
  const tensor::Tensor a = tensor::Tensor::randn({512, 512}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(tensor::randomized_low_rank(a, 64));
}
BENCHMARK(BM_RandomizedSvd);

void BM_TraceGeneration(benchmark::State& state) {
  net::TraceGeneratorParams params;
  std::uint64_t seed = 5;
  for (auto _ : state)
    benchmark::DoNotOptimize(net::generate_trace(params, 60'000.0, seed++));
}
BENCHMARK(BM_TraceGeneration);

void BM_StrategyEvaluation(benchmark::State& state) {
  static const nn::Model base = nn::make_vgg11();
  latency::TransferModel transfer;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  engine::StrategyEvaluator evaluator(
      base, std::move(pe), engine::AccuracyModel(0.92, base.size(), 6),
      engine::RewardConfig{});
  engine::Strategy s;
  s.cut = base.size();
  s.plan.assign(base.size(), compress::TechniqueId::kNone);
  s.plan[4] = compress::TechniqueId::kC1MobileNet;
  double bw = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(s, bw));
    bw += 1.0;  // defeat the memo so the full path is measured
  }
}
BENCHMARK(BM_StrategyEvaluation);

}  // namespace

BENCHMARK_MAIN();
