#include "bench/perf_core.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include "bench/common.h"
#include "data/synth_cifar.h"
#include "engine/accuracy_model.h"
#include "latency/device_profile.h"
#include "nn/conv.h"
#include "nn/factory.h"
#include "nn/optimizer.h"
#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "runtime/decision_engine.h"
#include "runtime/gateway.h"
#include "runtime/transport.h"
#include "tensor/kernel_mode.h"
#include "tensor/ops.h"
#include "tree/tree_search.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cadmc::bench {

PerfStats measure(const std::string& name, int warmup, int repetitions,
                  const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples_us;
  samples_us.reserve(static_cast<std::size_t>(std::max(repetitions, 0)));
  double total_us = 0.0;
  for (int i = 0; i < repetitions; ++i) {
    const auto t0 = clock::now();
    fn();
    const double us =
        std::chrono::duration<double, std::micro>(clock::now() - t0).count();
    samples_us.push_back(us);
    total_us += us;
  }
  PerfStats stats;
  stats.name = name;
  stats.repetitions = repetitions;
  stats.warmup = warmup;
  if (!samples_us.empty()) {
    stats.p50 = util::quantile(samples_us, 0.5);
    stats.p90 = util::quantile(samples_us, 0.9);
    stats.p99 = util::quantile(samples_us, 0.99);
    stats.mean = total_us / static_cast<double>(samples_us.size());
    stats.min = *std::min_element(samples_us.begin(), samples_us.end());
    stats.max = *std::max_element(samples_us.begin(), samples_us.end());
    if (total_us > 0.0)
      stats.throughput_per_s = 1e6 * static_cast<double>(repetitions) / total_us;
  }
  return stats;
}

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

double field_or(const std::map<std::string, std::string>& event,
                const std::string& key, double fallback) {
  const auto it = event.find(key);
  if (it == event.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

std::string perf_json(const PerfStats& stats) {
  std::string line = "{\"type\":\"bench\",\"name\":\"" +
                     obs::json_escape(stats.name) + "\",\"unit\":\"" +
                     obs::json_escape(stats.unit) + "\"";
  line += ",\"repetitions\":" + std::to_string(stats.repetitions);
  line += ",\"warmup\":" + std::to_string(stats.warmup);
  line += ",\"p50\":" + num(stats.p50);
  line += ",\"p90\":" + num(stats.p90);
  line += ",\"p99\":" + num(stats.p99);
  line += ",\"mean\":" + num(stats.mean);
  line += ",\"min\":" + num(stats.min);
  line += ",\"max\":" + num(stats.max);
  line += ",\"throughput_per_s\":" + num(stats.throughput_per_s);
  if (stats.speedup_vs_deterministic > 0.0)
    line += ",\"speedup_vs_deterministic\":" +
            num(stats.speedup_vs_deterministic);
  line += "}";
  return line;
}

bool write_perf_json(const std::string& dir, const PerfStats& stats) {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/BENCH_" + stats.name + ".json";
  std::ofstream out(path);
  if (!out) return false;
  out << perf_json(stats) << "\n";
  return static_cast<bool>(out);
}

bool load_perf_json(const std::string& path, PerfStats& stats) {
  std::string text;
  if (!util::read_file(path, text)) return false;
  const auto events = obs::parse_jsonl(text);
  for (const auto& event : events) {
    const auto type = event.find("type");
    if (type == event.end() || type->second != "bench") continue;
    const auto name = event.find("name");
    if (name == event.end()) continue;
    stats.name = name->second;
    const auto unit = event.find("unit");
    stats.unit = unit != event.end() ? unit->second : "us";
    stats.repetitions = static_cast<int>(field_or(event, "repetitions", 0));
    stats.warmup = static_cast<int>(field_or(event, "warmup", 0));
    stats.p50 = field_or(event, "p50", 0.0);
    stats.p90 = field_or(event, "p90", 0.0);
    stats.p99 = field_or(event, "p99", 0.0);
    stats.mean = field_or(event, "mean", 0.0);
    stats.min = field_or(event, "min", 0.0);
    stats.max = field_or(event, "max", 0.0);
    stats.throughput_per_s = field_or(event, "throughput_per_s", 0.0);
    stats.speedup_vs_deterministic =
        field_or(event, "speedup_vs_deterministic", 0.0);
    return true;
  }
  return false;
}

std::vector<PerfComparison> compare_perf(const std::vector<PerfStats>& current,
                                         const std::string& baseline_dir,
                                         double threshold) {
  std::vector<PerfComparison> results;
  for (const PerfStats& stats : current) {
    PerfComparison cmp;
    cmp.name = stats.name;
    cmp.current_p50 = stats.p50;
    PerfStats baseline;
    if (!load_perf_json(baseline_dir + "/BENCH_" + stats.name + ".json",
                        baseline)) {
      cmp.missing_baseline = true;
      results.push_back(cmp);
      continue;
    }
    cmp.baseline_p50 = baseline.p50;
    cmp.ratio = baseline.p50 > 0.0 ? stats.p50 / baseline.p50 : 0.0;
    cmp.regressed = cmp.ratio > 1.0 + threshold;
    results.push_back(cmp);
  }
  return results;
}

// ---------------------------------------------------------------------------
// The benchmark suite.

namespace {

using engine::Strategy;

/// Expensive shared fixtures, built once and only when a benchmark that
/// needs them actually runs (so `--filter transport` stays fast).
struct SuiteContext {
  std::unique_ptr<nn::Model> base;
  std::vector<std::size_t> boundaries;
  std::unique_ptr<engine::StrategyEvaluator> evaluator;
  std::optional<net::BandwidthTrace> trace;

  void ensure_evaluator() {
    if (evaluator) return;
    base = std::make_unique<nn::Model>(nn::make_alexnet());
    boundaries = nn::block_boundaries(*base, 3);
    latency::TransferModel transfer;
    transfer.rtt_ms = 15.0;
    partition::PartitionEvaluator pe(
        latency::ComputeLatencyModel(latency::phone_profile()),
        latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
    evaluator = std::make_unique<engine::StrategyEvaluator>(
        *base, pe, engine::AccuracyModel(0.8404, base->size(), 41),
        engine::RewardConfig{});
    net::TraceGeneratorParams params;
    params.mean_mbps = 8.0;
    params.volatility = 0.3;
    trace = net::generate_trace(params, 20'000.0, 42);
  }
};

/// Rescales a per-batch measurement to per-item (batching keeps clock noise
/// out of nanosecond costs and smooths per-call variance). `unit_factor`
/// converts the us samples to the target unit (1000 for ns, 1 to stay in us).
PerfStats per_item(PerfStats stats, int batch, const std::string& unit,
                   double unit_factor = 1000.0) {
  const double scale = unit_factor / batch;
  stats.p50 *= scale;
  stats.p90 *= scale;
  stats.p99 *= scale;
  stats.mean *= scale;
  stats.min *= scale;
  stats.max *= scale;
  stats.throughput_per_s *= batch;
  stats.unit = unit;
  return stats;
}

PerfStats bench_decision_infer(const PerfSuiteConfig& config) {
  runtime::EngineConfig ec;
  ec.scene = net::scene_by_name("4G indoor static");
  ec.num_blocks = 2;
  ec.trace_duration_ms = 20'000.0;
  ec.tree_config.episodes = std::max(2, config.episodes / 2);
  ec.tree_config.branch_config.episodes = std::max(4, config.episodes);
  runtime::DecisionEngine engine(nn::make_tiny_cnn(4, 8, 50), std::move(ec));
  engine.train_offline();
  util::Rng rng(0xD3C);
  const auto input = tensor::Tensor::randn({1, 3, 8, 8}, rng, 0.3f);
  double t_ms = 1'000.0;
  return measure("decision_infer", config.warmup, config.repetitions, [&] {
    engine.infer(input, t_ms);
    t_ms += 100.0;
    if (t_ms > 15'000.0) t_ms = 1'000.0;
  });
}

PerfStats bench_branch_search_step(const PerfSuiteConfig& config,
                                   SuiteContext& ctx) {
  ctx.ensure_evaluator();
  engine::BranchSearchConfig bc;
  bc.episodes = config.episodes;
  engine::BranchSearch search(*ctx.evaluator, bc);
  const double bw = latency::mbps_to_bytes_per_ms(8.0);
  util::Rng rng(0xB5);
  // A single rollout's cost swings with the sampled cut (the compression
  // controller only walks the edge half), so time batches and report the
  // per-rollout average — a regression guard needs a stable p50.
  constexpr int kBatch = 16;
  PerfStats stats = measure("branch_search_step", config.warmup,
                            config.repetitions, [&] {
                              for (int i = 0; i < kBatch; ++i)
                                search.sample_strategy(bw, rng);
                            });
  return per_item(stats, kBatch, "us", 1.0);
}

PerfStats bench_serve_throughput(const PerfSuiteConfig& config) {
  // Concurrent serving: one repetition = 8 sessions each pushing one call
  // through a shared 4-worker gateway. The p50 tracks the multiplexed
  // round-trip under contention — reactor, admission queue and worker
  // handoff included — which is the path the serve suite guards.
  constexpr int kSessions = 8;
  runtime::GatewayConfig gc;
  gc.worker_threads = 4;
  runtime::Gateway gateway(
      [](const runtime::GatewayRequest& request) { return request.payload; },
      gc);
  const std::uint16_t port = gateway.start();
  std::vector<std::unique_ptr<runtime::TcpClient>> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.push_back(std::make_unique<runtime::TcpClient>());
    runtime::TcpClientConfig cc;
    cc.timeout_ms = 5000.0;
    cc.session_id = static_cast<std::uint64_t>(s) + 1;
    clients.back()->connect(port, cc);
  }
  runtime::Blob request(1024);
  for (std::size_t i = 0; i < request.size(); ++i)
    request[i] = static_cast<std::uint8_t>(i * 31);
  PerfStats stats =
      measure("serve_throughput", config.warmup, config.repetitions, [&] {
        std::vector<std::thread> threads;
        for (int s = 0; s < kSessions; ++s)
          threads.emplace_back([&, s] { clients[static_cast<std::size_t>(s)]->call(request); });
        for (auto& t : threads) t.join();
      });
  for (auto& client : clients) client->close();
  gateway.stop();
  return stats;
}

PerfStats bench_transport_roundtrip(const PerfSuiteConfig& config) {
  runtime::TcpServer server(
      [](const runtime::Blob& request) { return request; });
  const std::uint16_t port = server.start();
  runtime::TcpClient client;
  client.connect(port);
  runtime::Blob request(1024);
  for (std::size_t i = 0; i < request.size(); ++i)
    request[i] = static_cast<std::uint8_t>(i * 31);
  PerfStats stats =
      measure("transport_roundtrip", config.warmup, config.repetitions,
              [&] { client.call(request); });
  client.close();
  server.stop();
  return stats;
}

PerfStats bench_emulated_frame(const PerfSuiteConfig& config,
                               SuiteContext& ctx) {
  ctx.ensure_evaluator();
  runtime::RunnerConfig rc;
  rc.inferences = 1;
  runtime::InferenceRunner runner(*ctx.evaluator, *ctx.trace, ctx.boundaries,
                                  rc);
  return measure("emulated_frame", config.warmup, config.repetitions,
                 [&] { runner.run_surgery(); });
}

PerfStats bench_parallel_search(const PerfSuiteConfig& config) {
  // A full-depth K=4 tree with a distinct random compression plan in every
  // node: 4^3 = 64 leaf trajectories to price, each with its own cache keys.
  // This is the estimate_backward fan-out that util::parallel_for spreads
  // across the pool — run with CADMC_THREADS=1 (or --threads 1) to reproduce
  // the committed single-thread baseline. MobileNet rather than the suite's
  // AlexNet: its many small layers keep one leaf realization cheap, so a
  // repetition is dominated by the fan-out, not by one giant FC allocation.
  const nn::Model base = nn::make_mobilenet();
  const std::vector<std::size_t> boundaries = nn::block_boundaries(base, 3);
  latency::TransferModel transfer;
  transfer.rtt_ms = 15.0;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  const engine::StrategyEvaluator seed_evaluator(
      base, pe, engine::AccuracyModel(0.8404, base.size(), 41),
      engine::RewardConfig{});
  const std::vector<double> forks = {
      latency::mbps_to_bytes_per_ms(1.0), latency::mbps_to_bytes_per_ms(4.0),
      latency::mbps_to_bytes_per_ms(10.0), latency::mbps_to_bytes_per_ms(25.0)};
  tree::ModelTree tree(base, boundaries, forks);
  util::Rng rng(0x9A12);
  const std::function<void(tree::TreeNode&)> scramble =
      [&](tree::TreeNode& node) {
        const std::size_t begin = tree.block_begin(node.depth);
        const std::size_t len = tree.block_len(node.depth);
        node.cut_local = len;  // no partition: keep every path full depth
        const auto masks = seed_evaluator.technique_masks(begin, begin + len);
        node.block_plan.resize(len);
        for (std::size_t i = 0; i < len; ++i)
          node.block_plan[i] = static_cast<compress::TechniqueId>(
              masks[i][rng.uniform_index(masks[i].size())]);
        for (tree::TreeNode& child : node.children) scramble(child);
      };
  for (tree::TreeNode& child : tree.root().children) scramble(child);

  tree::TreeSearchConfig tc;
  tc.hidden_dim = 4;  // controllers are not exercised by estimate_backward
  return measure("parallel_search", config.warmup, config.repetitions, [&] {
    // A fresh evaluator every repetition: the benchmark must time cold-cache
    // pricing of all 64 leaf trajectories, not sharded-cache hits.
    engine::StrategyEvaluator evaluator(
        base, pe, engine::AccuracyModel(0.8404, base.size(), 41),
        engine::RewardConfig{});
    tree::TreeSearch search(evaluator, boundaries, forks, tc);
    search.estimate_backward(tree);
  });
}

// --- Compute-kernel benches (the math engine under search and serving). ---
// Shapes are CIFAR-scale on purpose: they match what the distillation loop
// and the edge-slice executors actually run. Committed baselines under
// bench/baselines/ were captured with CADMC_THREADS=1 on the naive loop-nest
// kernels, so --compare against them shows the blocked-kernel speedup (and
// guards it: ratios drifting back toward 1.0 mean the kernels regressed).
//
// Each kernel bench runs twice: once as `<name>` pinned to the deterministic
// scalar kernels and once as `<name>_fast` pinned to the AVX2/FMA vector
// kernels (skipped when the hardware can't run them). The post-pass in
// run_perf_suite stamps the fast record with its measured
// speedup_vs_deterministic ratio.

/// Pins the kernel mode for one benchmark body, restoring the previously
/// requested mode (CLI/env selection) on exit.
struct KernelModeScope {
  explicit KernelModeScope(tensor::KernelMode mode)
      : saved_(tensor::requested_kernel_mode()) {
    tensor::set_kernel_mode(mode);
  }
  ~KernelModeScope() { tensor::set_kernel_mode(saved_); }
  tensor::KernelMode saved_;
};

PerfStats bench_gemm_nn(const PerfSuiteConfig& config, const char* name,
                        tensor::KernelMode mode) {
  const KernelModeScope scope(mode);
  util::Rng rng(0x6E44);
  const auto a = tensor::Tensor::randn({160, 160}, rng);
  const auto b = tensor::Tensor::randn({160, 160}, rng);
  return measure(name, config.warmup, config.repetitions,
                 [&] { tensor::matmul(a, b); });
}

PerfStats bench_conv_forward(const PerfSuiteConfig& config, const char* name,
                             tensor::KernelMode mode) {
  const KernelModeScope scope(mode);
  util::Rng rng(0xC0F4);
  nn::Conv2d conv(32, 64, 3, 1, 1, rng);
  const auto x = tensor::Tensor::randn({4, 32, 16, 16}, rng, 0.3f);
  return measure(name, config.warmup, config.repetitions,
                 [&] { conv.forward(x, false); });
}

PerfStats bench_conv_backward(const PerfSuiteConfig& config, const char* name,
                              tensor::KernelMode mode) {
  const KernelModeScope scope(mode);
  util::Rng rng(0xC0B4);
  nn::Conv2d conv(32, 64, 3, 1, 1, rng);
  const auto x = tensor::Tensor::randn({4, 32, 16, 16}, rng, 0.3f);
  const auto grad = tensor::Tensor::randn({4, 64, 16, 16}, rng, 0.1f);
  conv.forward(x, true);  // cache the input once; backward re-reads it
  return measure(name, config.warmup, config.repetitions,
                 [&] { conv.backward(grad); });
}

PerfStats bench_pool_forward(const PerfSuiteConfig& config, const char* name,
                             tensor::KernelMode mode) {
  // Inference-shaped pooling (no argmax side-output), the variant the edge
  // executors run per frame; fast mode routes it to the vector row kernels.
  const KernelModeScope scope(mode);
  util::Rng rng(0x9001);
  const auto x = tensor::Tensor::randn({4, 32, 16, 16}, rng, 0.3f);
  return measure(name, config.warmup, config.repetitions, [&] {
    tensor::maxpool2d(x, 2, 2, /*with_argmax=*/false);
    tensor::avgpool2d(x, 2, 2);
  });
}

PerfStats bench_sgd_step(const PerfSuiteConfig& config, const char* name,
                         tensor::KernelMode mode) {
  // The fused momentum+weight-decay parameter sweep, sized like the tiny-CNN
  // parameter set the distillation loop updates every step.
  const KernelModeScope scope(mode);
  util::Rng rng(0x56D5);
  std::vector<tensor::Tensor> params, grads;
  for (const auto& shape :
       {tensor::Shape{64, 32, 3, 3}, tensor::Shape{32, 16, 3, 3},
        tensor::Shape{128, 256}, tensor::Shape{128}}) {
    params.push_back(tensor::Tensor::randn(shape, rng, 0.1f));
    grads.push_back(tensor::Tensor::randn(shape, rng, 0.01f));
  }
  std::vector<tensor::Tensor*> param_ptrs, grad_ptrs;
  for (auto& p : params) param_ptrs.push_back(&p);
  for (auto& g : grads) grad_ptrs.push_back(&g);
  nn::Sgd sgd(0.05, /*momentum=*/0.9, /*weight_decay=*/1e-4);
  return measure(name, config.warmup, config.repetitions,
                 [&] { sgd.step(param_ptrs, grad_ptrs); });
}

PerfStats bench_distill_train(const PerfSuiteConfig& config, const char* name,
                              tensor::KernelMode mode) {
  // The RealAccuracyEvaluator::train_and_evaluate hot loop (Alg. 3 /
  // Sec. VII): every parallel-search candidate pays this path, so its p50 is
  // the wall-clock floor of performance-driven search.
  const KernelModeScope scope(mode);
  const data::SynthCifar dataset(12, 4, 0xD157, /*noise=*/0.15);
  const nn::Model base = nn::make_tiny_cnn(4, 12, 8);
  const engine::RealAccuracyEvaluator evaluator(base, dataset, 128, 64, 16,
                                                /*train_steps=*/8, /*lr=*/0.05);
  std::uint64_t seed = 100;
  return measure(name, config.warmup, config.repetitions, [&] {
    nn::Model student = nn::make_tiny_cnn(4, 12, seed++);
    evaluator.train_and_evaluate(student);
  });
}

constexpr int kSpanBatch = 512;

PerfStats bench_span_overhead_disabled(const PerfSuiteConfig& config) {
  const bool was_enabled = obs::enabled();
  const bool was_flight = obs::flight_recording();
  obs::set_enabled(false);
  obs::set_flight_recording(false);
  PerfStats stats = measure(
      "span_overhead_disabled", config.warmup, config.repetitions, [] {
        for (int i = 0; i < kSpanBatch; ++i) CADMC_SPAN("bench_span");
      });
  obs::set_enabled(was_enabled);
  obs::set_flight_recording(was_flight);
  return per_item(stats, kSpanBatch, "ns");
}

PerfStats bench_span_overhead_enabled(const PerfSuiteConfig& config) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::MetricsRegistry registry;
  PerfStats stats = measure(
      "span_overhead_enabled", config.warmup, config.repetitions, [&] {
        for (int i = 0; i < kSpanBatch; ++i)
          obs::ScopedSpan span("bench_span", &registry);
        registry.reset();  // keep the span log bounded per repetition
      });
  obs::set_enabled(was_enabled);
  return per_item(stats, kSpanBatch, "ns");
}

PerfStats bench_critpath_profile(const PerfSuiteConfig& config) {
  // The profiler runs after every emulator/field run (`cadmc profile`), so
  // its own cost has to stay trivial next to the workload it measures. The
  // synthetic input mirrors a run_tree trace: 64 frames, each a serial chain
  // of 16 stages with one overlapping (parallel) sibling per stage.
  std::vector<obs::SpanRecord> spans;
  std::uint64_t next_id = 1;
  for (int t = 0; t < 64; ++t) {
    const std::uint64_t trace = static_cast<std::uint64_t>(t) + 1;
    obs::SpanRecord frame;
    frame.id = next_id++;
    frame.trace_id = trace;
    frame.name = "frame";
    frame.wall_ms = 64.0;
    const std::uint64_t frame_id = frame.id;
    spans.push_back(std::move(frame));
    double cursor = 0.0;
    for (int s = 0; s < 16; ++s) {
      obs::SpanRecord stage;
      stage.id = next_id++;
      stage.parent_id = frame_id;
      stage.trace_id = trace;
      stage.name = s % 2 == 0 ? "edge_compute" : "transfer";
      stage.start_ms = cursor;
      stage.wall_ms = 2.0;
      obs::SpanRecord overlap = stage;  // concurrent sibling: never chains
      overlap.id = next_id++;
      overlap.name = "measure_bandwidth";
      spans.push_back(std::move(stage));
      spans.push_back(std::move(overlap));
      cursor += 4.0;
    }
  }
  return measure("critpath_profile", config.warmup, config.repetitions,
                 [&] { obs::profile_spans(spans); });
}

}  // namespace

int run_perf_suite(const PerfSuiteConfig& config) {
  // Substring match, or exact match with a trailing '$' — needed to run
  // `distill_train` without also selecting `distill_train_fast` (profiling
  // one kernel mode in isolation).
  const auto selected = [&](const char* name) {
    if (config.filter.empty()) return true;
    if (config.filter.back() == '$')
      return config.filter.compare(0, config.filter.size() - 1, name) == 0 &&
             config.filter.size() == std::string(name).size() + 1;
    return std::string(name).find(config.filter) != std::string::npos;
  };

  SuiteContext ctx;
  std::vector<PerfStats> results;
  if (selected("decision_infer")) results.push_back(bench_decision_infer(config));
  if (selected("branch_search_step"))
    results.push_back(bench_branch_search_step(config, ctx));
  if (selected("transport_roundtrip"))
    results.push_back(bench_transport_roundtrip(config));
  if (selected("serve_throughput"))
    results.push_back(bench_serve_throughput(config));
  if (selected("emulated_frame"))
    results.push_back(bench_emulated_frame(config, ctx));
  if (selected("parallel_search"))
    results.push_back(bench_parallel_search(config));
  using tensor::KernelMode;
  const bool fast_ok = tensor::vector_kernels_available();
  if (selected("gemm_nn"))
    results.push_back(bench_gemm_nn(config, "gemm_nn",
                                    KernelMode::kDeterministic));
  if (selected("gemm_nn_fast") && fast_ok)
    results.push_back(bench_gemm_nn(config, "gemm_nn_fast", KernelMode::kFast));
  if (selected("conv_forward"))
    results.push_back(bench_conv_forward(config, "conv_forward",
                                         KernelMode::kDeterministic));
  if (selected("conv_forward_fast") && fast_ok)
    results.push_back(bench_conv_forward(config, "conv_forward_fast",
                                         KernelMode::kFast));
  if (selected("conv_backward"))
    results.push_back(bench_conv_backward(config, "conv_backward",
                                          KernelMode::kDeterministic));
  if (selected("conv_backward_fast") && fast_ok)
    results.push_back(bench_conv_backward(config, "conv_backward_fast",
                                          KernelMode::kFast));
  if (selected("pool_forward"))
    results.push_back(bench_pool_forward(config, "pool_forward",
                                         KernelMode::kDeterministic));
  if (selected("pool_forward_fast") && fast_ok)
    results.push_back(bench_pool_forward(config, "pool_forward_fast",
                                         KernelMode::kFast));
  if (selected("sgd_step"))
    results.push_back(bench_sgd_step(config, "sgd_step",
                                     KernelMode::kDeterministic));
  if (selected("sgd_step_fast") && fast_ok)
    results.push_back(bench_sgd_step(config, "sgd_step_fast",
                                     KernelMode::kFast));
  if (selected("distill_train"))
    results.push_back(bench_distill_train(config, "distill_train",
                                          KernelMode::kDeterministic));
  if (selected("distill_train_fast") && fast_ok)
    results.push_back(bench_distill_train(config, "distill_train_fast",
                                          KernelMode::kFast));
  if (!fast_ok && !config.quiet &&
      (selected("gemm_nn_fast") || selected("conv_forward_fast") ||
       selected("conv_backward_fast") || selected("pool_forward_fast") ||
       selected("sgd_step_fast") || selected("distill_train_fast")))
    std::fprintf(stderr,
                 "skipping *_fast kernel benches: AVX2/FMA unavailable (%s)\n",
                 tensor::vector_kernels_compiled() ? "cpu" : "build");
  if (selected("span_overhead_disabled"))
    results.push_back(bench_span_overhead_disabled(config));
  if (selected("span_overhead_enabled"))
    results.push_back(bench_span_overhead_enabled(config));
  if (selected("critpath_profile"))
    results.push_back(bench_critpath_profile(config));

  if (results.empty()) {
    std::fprintf(stderr, "no benchmark matches filter '%s'\n",
                 config.filter.c_str());
    return 2;
  }

  // Stamp every `<name>_fast` record with its same-run advantage over the
  // deterministic `<name>` bench, so the committed fast baselines carry the
  // measured ratio, not just absolute times.
  for (PerfStats& fast : results) {
    const std::string suffix = "_fast";
    if (fast.name.size() <= suffix.size() ||
        fast.name.compare(fast.name.size() - suffix.size(), suffix.size(),
                          suffix) != 0)
      continue;
    const std::string base = fast.name.substr(0, fast.name.size() - suffix.size());
    for (const PerfStats& det : results)
      if (det.name == base && fast.p50 > 0.0)
        fast.speedup_vs_deterministic = det.p50 / fast.p50;
  }

  for (const PerfStats& stats : results) {
    if (!write_perf_json(config.out_dir, stats)) {
      std::fprintf(stderr, "cannot write %s/BENCH_%s.json\n",
                   config.out_dir.c_str(), stats.name.c_str());
      return 2;
    }
  }

  if (!config.quiet) {
    util::AsciiTable table(
        {"Benchmark", "Unit", "p50", "p90", "p99", "Mean", "Ops/s"});
    for (const PerfStats& s : results)
      table.add_row({s.name, s.unit, util::format_double(s.p50, 2),
                     util::format_double(s.p90, 2),
                     util::format_double(s.p99, 2),
                     util::format_double(s.mean, 2),
                     util::format_double(s.throughput_per_s, 1)});
    std::printf("%s", table.to_string().c_str());
    std::printf("results written to %s/BENCH_<name>.json\n",
                config.out_dir.c_str());
  }

  if (config.compare_dir.empty()) return 0;

  const auto comparisons =
      compare_perf(results, config.compare_dir, config.threshold);
  bool any_regressed = false;
  util::AsciiTable table({"Benchmark", "Baseline p50", "Current p50", "Ratio",
                          "Verdict"});
  for (const PerfComparison& cmp : comparisons) {
    any_regressed = any_regressed || cmp.regressed;
    table.add_row(
        {cmp.name,
         cmp.missing_baseline ? "-" : util::format_double(cmp.baseline_p50, 2),
         util::format_double(cmp.current_p50, 2),
         cmp.missing_baseline ? "-" : util::format_double(cmp.ratio, 3),
         cmp.missing_baseline ? "no baseline"
                              : (cmp.regressed ? "REGRESSED" : "ok")});
  }
  if (!config.quiet) {
    std::printf("\nbaseline: %s (threshold +%.0f%% on p50)\n%s",
                config.compare_dir.c_str(), config.threshold * 100.0,
                table.to_string().c_str());
  }
  return any_regressed ? 1 : 0;
}

}  // namespace cadmc::bench
