// Perf-regression harness core (shared by bench/perf_regress and the
// `cadmc bench` subcommand). Each benchmark times one hot path — decision
// engine inference, a branch-search rollout, a transport round-trip, an
// emulated frame, the parallel estimate_backward fan-out, span bookkeeping —
// over warmup + measured repetitions and
// reduces the samples to canonical PerfStats (p50/p90/p99, throughput).
//
// Stats round-trip through one-line JSON files named BENCH_<name>.json (the
// obs::parse_jsonl flat-object shape), so a committed baseline directory can
// be compared against a fresh run: a benchmark regresses when its p50 slows
// down by more than `threshold` relative to its baseline.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace cadmc::bench {

struct PerfStats {
  std::string name;
  std::string unit = "us";  // per-repetition sample unit
  int repetitions = 0;
  int warmup = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double throughput_per_s = 0.0;  // repetitions / total measured time
  // For `<name>_fast` kernel benches only: deterministic p50 / fast p50 of
  // the same run (>1 means the vector kernels won). 0 = not applicable;
  // serialized into the baseline JSON so the committed record shows the
  // measured advantage next to the absolute numbers.
  double speedup_vs_deterministic = 0.0;
};

/// Runs `fn` warmup times untimed, then `repetitions` times timed, and
/// reduces the per-repetition wall times (microseconds) to PerfStats.
PerfStats measure(const std::string& name, int warmup, int repetitions,
                  const std::function<void()>& fn);

/// One-line JSON for a stats record:
///   {"type":"bench","name":"transport_roundtrip","unit":"us",...}
std::string perf_json(const PerfStats& stats);

/// Writes perf_json() to `<dir>/BENCH_<name>.json`. Returns false on I/O
/// failure.
bool write_perf_json(const std::string& dir, const PerfStats& stats);

/// Reads a BENCH_*.json file back. Returns false when the file is missing
/// or not a bench record.
bool load_perf_json(const std::string& path, PerfStats& stats);

struct PerfComparison {
  std::string name;
  double current_p50 = 0.0;
  double baseline_p50 = 0.0;
  double ratio = 0.0;  // current / baseline
  bool missing_baseline = false;
  bool regressed = false;  // ratio > 1 + threshold
};

/// Compares each current stat against `<baseline_dir>/BENCH_<name>.json`.
/// A benchmark with no baseline is reported (missing_baseline) but never
/// counts as a regression, so new benchmarks can land before their baseline.
std::vector<PerfComparison> compare_perf(const std::vector<PerfStats>& current,
                                         const std::string& baseline_dir,
                                         double threshold);

struct PerfSuiteConfig {
  int repetitions = 30;
  int warmup = 5;
  int episodes = 12;        // RL episodes for the trained-context benches
  std::string filter;       // substring; empty = run everything
  std::string out_dir = ".";
  std::string compare_dir;  // empty = no comparison
  double threshold = 0.15;  // p50 regression tolerance for --compare
  bool quiet = false;
};

/// Runs every benchmark whose name contains config.filter, writes
/// BENCH_<name>.json files to config.out_dir, prints a summary table and —
/// when config.compare_dir is set — the comparison. Returns the process exit
/// code: 0 clean, 1 when any benchmark regressed, 2 on I/O failure.
int run_perf_suite(const PerfSuiteConfig& config);

}  // namespace cadmc::bench
