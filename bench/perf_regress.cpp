// perf_regress — the perf-regression guard.
//
//   perf_regress [--out-dir DIR] [--compare BASELINE_DIR] [--filter SUBSTR]
//                [--repetitions N] [--warmup N] [--episodes N]
//                [--threshold FRAC]
//
// --filter matches by substring; end it with '$' for an exact name match
// (e.g. --filter 'distill_train$' runs the deterministic bench without its
// `distill_train_fast` sibling).
//
// Times the hot paths (decision-engine inference, branch-search rollout,
// transport round-trip, emulated frame, span bookkeeping) and writes one
// canonical BENCH_<name>.json per benchmark. With --compare it exits 1 when
// any benchmark's p50 slowed down by more than --threshold (default 15%)
// relative to the baseline directory — CI runs it against the committed
// baselines in bench/baselines/.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/perf_core.h"

int main(int argc, char** argv) {
  cadmc::bench::PerfSuiteConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out-dir") {
      config.out_dir = value();
    } else if (arg == "--compare") {
      config.compare_dir = value();
    } else if (arg == "--filter") {
      config.filter = value();
    } else if (arg == "--repetitions") {
      config.repetitions = std::stoi(value());
    } else if (arg == "--warmup") {
      config.warmup = std::stoi(value());
    } else if (arg == "--episodes") {
      config.episodes = std::stoi(value());
    } else if (arg == "--threshold") {
      config.threshold = std::stod(value());
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else {
      std::fprintf(
          stderr,
          "usage: perf_regress [--out-dir DIR] [--compare BASELINE_DIR]\n"
          "                    [--filter SUBSTR] [--repetitions N]\n"
          "                    [--warmup N] [--episodes N] [--threshold FRAC]\n"
          "                    [--quiet]\n");
      return 2;
    }
  }
  return cadmc::bench::run_perf_suite(config);
}
