// Serve throughput sweep — how the concurrent gateway scales and sheds.
//
// For each (sessions x worker_threads) cell, N session threads hammer one
// gateway with synchronous calls for a fixed wall budget. The handler costs
// a fixed ~200us spin (a stand-in for cloud-half compute), so adding workers
// buys real parallelism and adding sessions past the worker count buys
// queueing — exactly the regime where the admission queue and BUSY shedding
// must keep the tail bounded instead of letting latency run away.
//
// Reported per cell: served frames/s, p50/p99 call latency, and the shed
// rate (BUSY answers / calls). The invariant worth watching: as offered
// load exceeds capacity, the shed rate climbs while the p99 of *served*
// calls stays flat — overload degrades throughput, never latency honesty.
//
// Output: ascii table + results/serve_throughput.csv.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "runtime/gateway.h"
#include "runtime/transport.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cadmc;

namespace {

struct Cell {
  int sessions = 0;
  int workers = 0;
  double frames_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double shed_rate = 0.0;
};

Cell run_cell(int sessions, int workers, double wall_ms) {
  runtime::GatewayConfig config;
  config.worker_threads = workers;
  config.max_queue = 64;
  runtime::Gateway gateway(
      [](const runtime::GatewayRequest& r) {
        // Fixed compute cost so the sweep measures serving, not the host.
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(200);
        while (std::chrono::steady_clock::now() < until) {
        }
        return r.payload;
      },
      config);
  const std::uint16_t port = gateway.start();

  std::atomic<long> served{0}, shed{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(sessions));
  std::vector<std::thread> threads;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double, std::milli>(wall_ms);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      runtime::TcpClient client;
      runtime::TcpClientConfig cc;
      cc.timeout_ms = 2000.0;
      cc.session_id = static_cast<std::uint64_t>(s) + 1;
      client.connect(port, cc);
      runtime::Blob request(512);
      for (std::size_t i = 0; i < request.size(); ++i)
        request[i] = static_cast<std::uint8_t>(i * 17);
      auto& samples = latencies[static_cast<std::size_t>(s)];
      while (std::chrono::steady_clock::now() < deadline) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
          client.call(request);
          const auto t1 = std::chrono::steady_clock::now();
          samples.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          ++served;
        } catch (const runtime::GatewayBusyError&) {
          ++shed;  // back off the way an edge session would: fall back
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        } catch (const runtime::TransportError&) {
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  gateway.stop();

  std::vector<double> all;
  for (const auto& s : latencies) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  Cell cell;
  cell.sessions = sessions;
  cell.workers = workers;
  cell.frames_per_s = static_cast<double>(served.load()) / (wall_ms / 1000.0);
  if (!all.empty()) {
    cell.p50_us = util::quantile(all, 0.5);
    cell.p99_us = util::quantile(all, 0.99);
  }
  const long total = served.load() + shed.load();
  cell.shed_rate =
      total > 0 ? static_cast<double>(shed.load()) / total : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  double wall_ms = 400.0;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--wall-ms" && i + 1 < argc)
      wall_ms = std::atof(argv[++i]);

  const int session_axis[] = {1, 4, 16, 32};
  const int worker_axis[] = {1, 2, 4};
  util::AsciiTable table(
      {"Sessions", "Workers", "Frames/s", "p50 us", "p99 us", "Shed"});
  util::CsvWriter csv(
      {"sessions", "workers", "frames_per_s", "p50_us", "p99_us",
       "shed_rate"});
  for (const int sessions : session_axis) {
    for (const int workers : worker_axis) {
      const Cell cell = run_cell(sessions, workers, wall_ms);
      table.add_row({std::to_string(cell.sessions),
                     std::to_string(cell.workers),
                     util::format_double(cell.frames_per_s, 1),
                     util::format_double(cell.p50_us, 1),
                     util::format_double(cell.p99_us, 1),
                     util::format_double(cell.shed_rate, 3)});
      csv.add_row({static_cast<double>(cell.sessions),
                   static_cast<double>(cell.workers), cell.frames_per_s,
                   cell.p50_us, cell.p99_us, cell.shed_rate});
    }
  }
  std::printf("%s", table.to_string().c_str());
  csv.save("results/serve_throughput.csv");
  std::printf("written results/serve_throughput.csv\n");
  return 0;
}
