// Table I — inference latencies on Xiaomi MI 6X, input 1x224x224x3.
// Reproduced with the MACC-based device latency model (phone profile) and
// compared against the paper's measured values.
#include <cstdio>

#include "latency/compute_model.h"
#include "latency/device_profile.h"
#include "nn/factory.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cadmc;

int main() {
  std::printf("=== Table I: inference latencies on the phone (input 1x224x224x3) ===\n\n");
  latency::ComputeLatencyModel phone(latency::phone_profile());

  struct Row {
    const char* name;
    nn::Model model;
    double paper_ms;
  };
  Row rows[] = {
      {"VGG19", nn::make_vgg19_imagenet(), 5734.89},
      {"ResNet50", nn::make_resnet_imagenet(50), 1103.20},
      {"ResNet101", nn::make_resnet_imagenet(101), 2238.79},
      {"ResNet152", nn::make_resnet_imagenet(152), 3729.10},
  };

  util::AsciiTable table(
      {"Model", "GMACCs", "Params (M)", "Ours (ms)", "Paper (ms)", "Ratio"});
  for (Row& row : rows) {
    const double ours = phone.model_latency_ms(row.model);
    table.add_row({row.name,
                   util::format_double(row.model.total_macc() / 1e9, 2),
                   util::format_double(row.model.param_count() / 1e6, 1),
                   util::format_double(ours, 2),
                   util::format_double(row.paper_ms, 2),
                   util::format_double(ours / row.paper_ms, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check: ordering ResNet50 < ResNet101 < ResNet152 < VGG19 holds,\n"
      "and every latency vastly exceeds the 1 s-scale bandwidth fluctuations\n"
      "of Fig. 1 — the motivation for context-aware deployment.\n");
  return 0;
}
