// Table II — the compression-technique catalog. For each technique we apply
// it to a representative VGG11 layer and report the structural replacement
// plus the measured parameter/MACC reduction at that site.
#include <cstdio>

#include "compress/registry.h"
#include "nn/factory.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace cadmc;
using compress::TechniqueId;

int main() {
  std::printf("=== Table II: compression techniques (applied to VGG11 layers) ===\n\n");
  compress::TechniqueRegistry registry;
  const nn::Model base = nn::make_vgg11();

  struct Row {
    TechniqueId id;
    const char* replaced;
    const char* replacement;
    const char* applies_to;
  };
  const Row rows[] = {
      {TechniqueId::kF1Svd, "m x n weight matrix",
       "m x k and k x n factors (k << m)", "FC layer"},
      {TechniqueId::kF2Ksvd, "m x n weight matrix",
       "same, with sparse factor matrices", "FC layer"},
      {TechniqueId::kF3Gap, "FC classifier head",
       "1x1 conv + global average pooling", "FC layer"},
      {TechniqueId::kC1MobileNet, "3x3 conv layer",
       "3x3 depthwise + 1x1 pointwise conv", "some Conv layers"},
      {TechniqueId::kC2MobileNetV2, "3x3 conv layer",
       "inverted residual w/ linear bottleneck", "some Conv layers"},
      {TechniqueId::kC3SqueezeNet, "3x3 conv layer", "Fire module",
       "some Conv layers"},
      {TechniqueId::kW1FilterPrune, "conv layer",
       "insignificant filters pruned", "Conv layer"},
  };

  util::AsciiTable table({"Name", "Replaced structure", "New structure",
                          "Applied layers", "Site", "Param x", "MACC x"});
  for (const Row& row : rows) {
    // First applicable site in VGG11.
    std::size_t site = base.size();
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (registry.technique(row.id).applicable(base, i)) {
        site = i;
        break;
      }
    }
    std::string site_str = "n/a", param_str = "-", macc_str = "-";
    if (site < base.size()) {
      nn::Model m = base;
      util::Rng rng(0x7AB2 + static_cast<std::uint64_t>(row.id));
      registry.apply(row.id, m, site, rng);
      site_str = base.layer(site).name() + "@" + std::to_string(site);
      param_str = util::format_double(
          static_cast<double>(m.param_count()) / base.param_count(), 3);
      macc_str = util::format_double(
          static_cast<double>(m.total_macc()) / base.total_macc(), 3);
    }
    table.add_row({compress::technique_name(row.id), row.replaced,
                   row.replacement, row.applies_to, site_str, param_str,
                   macc_str});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Param x / MACC x: whole-model multipliers after applying the\n"
              "technique at the listed site (1.000 = unchanged).\n");
  return 0;
}
