// Table III — offline training reward across every paper context:
// Dynamic DNN Surgery vs Optimal Branch (Alg. 1) vs Model Tree (Alg. 3).
// The metric is each method's own offline objective (see EXPERIMENTS.md):
// surgery/branch at the context's median bandwidth, the tree's
// fork-averaged root reward. Expected shape: Surgery <= Branch <= Tree.
#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

int main() {
  std::printf("=== Table III: offline training reward (Surgery / Branch / Tree) ===\n\n");
  BenchConfig config;
  const auto contexts = train_all_contexts(config);

  util::AsciiTable table(
      {"Model", "Device", "Environment", "Surgery", "Branch", "Tree"});
  double sums[2][3] = {};  // [vgg/alex][method]
  int counts[2] = {};
  int ordering_ok = 0, rows = 0;
  for (const auto& art : contexts) {
    const double surgery = art.surgery_offline_reward;
    const double branch = art.branch_offline_reward;
    const double tree = art.tree.tree_reward;
    table.add_row({art.model_name, art.device_name, art.scene_name,
                   fmt(surgery), fmt(branch), fmt(tree)});
    const int m = art.model_name == "VGG11" ? 0 : 1;
    sums[m][0] += surgery;
    sums[m][1] += branch;
    sums[m][2] += tree;
    ++counts[m];
    ++rows;
    ordering_ok += (branch >= surgery - 0.5) && (tree >= branch - 2.0);
  }
  for (int m = 0; m < 2; ++m) {
    table.add_row({m == 0 ? "VGG11" : "AlexNet", "-", "Average",
                   fmt(sums[m][0] / counts[m]), fmt(sums[m][1] / counts[m]),
                   fmt(sums[m][2] / counts[m])});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper averages: VGG11 352.14 / 355.92 / 359.57, "
              "AlexNet 347.05 / 357.64 / 359.56\n");
  std::printf("Ordering Surgery <= Branch <= Tree holds on %d/%d contexts.\n",
              ordering_ok, rows);
  return 0;
}
