// Table IV — emulation results: reward / latency / accuracy of the three
// policies replayed against real (synthetic) bandwidth traces with
// estimated latencies. Headline shape: the tree trades ~1% accuracy for a
// 28-35% latency reduction vs Dynamic DNN Surgery and also beats the
// optimal branch.
#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

using namespace cadmc;
using namespace cadmc::bench;

int main() {
  std::printf("=== Table IV: emulation results (trace replay, estimated latencies) ===\n\n");
  BenchConfig config;
  const auto contexts = train_all_contexts(config);

  util::AsciiTable table({"Model", "Device", "Environment",
                          "R:Surg", "R:Brch", "R:Tree",
                          "L:Surg", "L:Brch", "L:Tree",
                          "A:Surg", "A:Brch", "A:Tree"});
  double lat_sum[2][3] = {}, acc_sum[2][3] = {}, reward_sum[2][3] = {};
  int counts[2] = {};
  for (const auto& art : contexts) {
    const PolicyStats stats =
        run_policies(art, runtime::TimingMode::kEstimated, 40, 0x4E);
    const runtime::RunStats* all[3] = {&stats.surgery, &stats.branch,
                                       &stats.tree};
    table.add_row(
        {art.model_name, art.device_name, art.scene_name,
         fmt(stats.surgery.mean_reward), fmt(stats.branch.mean_reward),
         fmt(stats.tree.mean_reward), fmt(stats.surgery.mean_latency_ms),
         fmt(stats.branch.mean_latency_ms), fmt(stats.tree.mean_latency_ms),
         fmt(stats.surgery.mean_accuracy * 100),
         fmt(stats.branch.mean_accuracy * 100),
         fmt(stats.tree.mean_accuracy * 100)});
    const int m = art.model_name == "VGG11" ? 0 : 1;
    for (int p = 0; p < 3; ++p) {
      reward_sum[m][p] += all[p]->mean_reward;
      lat_sum[m][p] += all[p]->mean_latency_ms;
      acc_sum[m][p] += all[p]->mean_accuracy;
    }
    ++counts[m];
  }
  for (int m = 0; m < 2; ++m) {
    const double n = counts[m];
    table.add_row({m == 0 ? "VGG11" : "AlexNet", "-", "Average",
                   fmt(reward_sum[m][0] / n), fmt(reward_sum[m][1] / n),
                   fmt(reward_sum[m][2] / n), fmt(lat_sum[m][0] / n),
                   fmt(lat_sum[m][1] / n), fmt(lat_sum[m][2] / n),
                   fmt(acc_sum[m][0] / n * 100), fmt(acc_sum[m][1] / n * 100),
                   fmt(acc_sum[m][2] / n * 100)});
  }
  std::printf("%s\n", table.to_string().c_str());

  for (int m = 0; m < 2; ++m) {
    const double n = counts[m];
    const double latency_cut =
        100.0 * (1.0 - (lat_sum[m][2] / n) / (lat_sum[m][0] / n));
    const double acc_loss =
        100.0 * (acc_sum[m][0] / n - acc_sum[m][2] / n);
    std::printf(
        "%s: tree vs surgery: %.1f%% latency reduction at %.2f%% accuracy loss"
        "  (paper: %s)\n",
        m == 0 ? "VGG11" : "AlexNet", latency_cut, acc_loss,
        m == 0 ? "28.3% at 1.24%" : "34.3% at ~0.24%");
  }
  std::printf("\nPaper averages (VGG11): reward 337.05/345.81/347.87, "
              "latency 78.28/60.91/56.11 ms, accuracy 92.01/90.65/90.77%%\n");
  return 0;
}
