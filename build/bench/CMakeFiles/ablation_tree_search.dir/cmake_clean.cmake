file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_search.dir/ablation_tree_search.cpp.o"
  "CMakeFiles/ablation_tree_search.dir/ablation_tree_search.cpp.o.d"
  "ablation_tree_search"
  "ablation_tree_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
