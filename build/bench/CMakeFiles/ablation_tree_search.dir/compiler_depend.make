# Empty compiler generated dependencies file for ablation_tree_search.
# This may be replaced when dependencies are built.
