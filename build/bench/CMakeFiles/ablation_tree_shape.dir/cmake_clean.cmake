file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_shape.dir/ablation_tree_shape.cpp.o"
  "CMakeFiles/ablation_tree_shape.dir/ablation_tree_shape.cpp.o.d"
  "ablation_tree_shape"
  "ablation_tree_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
