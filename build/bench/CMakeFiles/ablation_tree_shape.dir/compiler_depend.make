# Empty compiler generated dependencies file for ablation_tree_shape.
# This may be replaced when dependencies are built.
