file(REMOVE_RECURSE
  "CMakeFiles/extension_quant_energy.dir/extension_quant_energy.cpp.o"
  "CMakeFiles/extension_quant_energy.dir/extension_quant_energy.cpp.o.d"
  "extension_quant_energy"
  "extension_quant_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_quant_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
