# Empty compiler generated dependencies file for extension_quant_energy.
# This may be replaced when dependencies are built.
