file(REMOVE_RECURSE
  "CMakeFiles/fig7_search_methods.dir/fig7_search_methods.cpp.o"
  "CMakeFiles/fig7_search_methods.dir/fig7_search_methods.cpp.o.d"
  "fig7_search_methods"
  "fig7_search_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_search_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
