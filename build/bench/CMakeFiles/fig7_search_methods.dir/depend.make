# Empty dependencies file for fig7_search_methods.
# This may be replaced when dependencies are built.
