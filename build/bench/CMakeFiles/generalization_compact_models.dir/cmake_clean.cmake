file(REMOVE_RECURSE
  "CMakeFiles/generalization_compact_models.dir/generalization_compact_models.cpp.o"
  "CMakeFiles/generalization_compact_models.dir/generalization_compact_models.cpp.o.d"
  "generalization_compact_models"
  "generalization_compact_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalization_compact_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
