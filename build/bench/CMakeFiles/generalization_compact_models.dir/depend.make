# Empty dependencies file for generalization_compact_models.
# This may be replaced when dependencies are built.
