file(REMOVE_RECURSE
  "CMakeFiles/table1_inference_latency.dir/table1_inference_latency.cpp.o"
  "CMakeFiles/table1_inference_latency.dir/table1_inference_latency.cpp.o.d"
  "table1_inference_latency"
  "table1_inference_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_inference_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
