# Empty dependencies file for table1_inference_latency.
# This may be replaced when dependencies are built.
