
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_compression_catalog.cpp" "bench/CMakeFiles/table2_compression_catalog.dir/table2_compression_catalog.cpp.o" "gcc" "bench/CMakeFiles/table2_compression_catalog.dir/table2_compression_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
