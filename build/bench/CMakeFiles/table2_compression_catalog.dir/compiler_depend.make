# Empty compiler generated dependencies file for table2_compression_catalog.
# This may be replaced when dependencies are built.
