file(REMOVE_RECURSE
  "CMakeFiles/table3_offline_training.dir/table3_offline_training.cpp.o"
  "CMakeFiles/table3_offline_training.dir/table3_offline_training.cpp.o.d"
  "table3_offline_training"
  "table3_offline_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_offline_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
