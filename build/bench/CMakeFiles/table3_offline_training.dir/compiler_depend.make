# Empty compiler generated dependencies file for table3_offline_training.
# This may be replaced when dependencies are built.
