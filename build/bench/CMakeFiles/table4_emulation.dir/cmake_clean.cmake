file(REMOVE_RECURSE
  "CMakeFiles/table4_emulation.dir/table4_emulation.cpp.o"
  "CMakeFiles/table4_emulation.dir/table4_emulation.cpp.o.d"
  "table4_emulation"
  "table4_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
