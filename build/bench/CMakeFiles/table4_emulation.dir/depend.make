# Empty dependencies file for table4_emulation.
# This may be replaced when dependencies are built.
