file(REMOVE_RECURSE
  "CMakeFiles/table5_field_test.dir/table5_field_test.cpp.o"
  "CMakeFiles/table5_field_test.dir/table5_field_test.cpp.o.d"
  "table5_field_test"
  "table5_field_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
