# Empty compiler generated dependencies file for table5_field_test.
# This may be replaced when dependencies are built.
