file(REMOVE_RECURSE
  "CMakeFiles/adaptive_video_stream.dir/adaptive_video_stream.cpp.o"
  "CMakeFiles/adaptive_video_stream.dir/adaptive_video_stream.cpp.o.d"
  "adaptive_video_stream"
  "adaptive_video_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_video_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
