# Empty compiler generated dependencies file for adaptive_video_stream.
# This may be replaced when dependencies are built.
