file(REMOVE_RECURSE
  "CMakeFiles/deploy_tree.dir/deploy_tree.cpp.o"
  "CMakeFiles/deploy_tree.dir/deploy_tree.cpp.o.d"
  "deploy_tree"
  "deploy_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
