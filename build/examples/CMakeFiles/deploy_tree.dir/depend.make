# Empty dependencies file for deploy_tree.
# This may be replaced when dependencies are built.
