file(REMOVE_RECURSE
  "CMakeFiles/field_offload_demo.dir/field_offload_demo.cpp.o"
  "CMakeFiles/field_offload_demo.dir/field_offload_demo.cpp.o.d"
  "field_offload_demo"
  "field_offload_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_offload_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
