# Empty compiler generated dependencies file for field_offload_demo.
# This may be replaced when dependencies are built.
