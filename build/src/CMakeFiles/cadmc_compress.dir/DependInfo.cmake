
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/conv_transforms.cpp" "src/CMakeFiles/cadmc_compress.dir/compress/conv_transforms.cpp.o" "gcc" "src/CMakeFiles/cadmc_compress.dir/compress/conv_transforms.cpp.o.d"
  "/root/repo/src/compress/fc_transforms.cpp" "src/CMakeFiles/cadmc_compress.dir/compress/fc_transforms.cpp.o" "gcc" "src/CMakeFiles/cadmc_compress.dir/compress/fc_transforms.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/CMakeFiles/cadmc_compress.dir/compress/registry.cpp.o" "gcc" "src/CMakeFiles/cadmc_compress.dir/compress/registry.cpp.o.d"
  "/root/repo/src/compress/transform.cpp" "src/CMakeFiles/cadmc_compress.dir/compress/transform.cpp.o" "gcc" "src/CMakeFiles/cadmc_compress.dir/compress/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
