file(REMOVE_RECURSE
  "CMakeFiles/cadmc_compress.dir/compress/conv_transforms.cpp.o"
  "CMakeFiles/cadmc_compress.dir/compress/conv_transforms.cpp.o.d"
  "CMakeFiles/cadmc_compress.dir/compress/fc_transforms.cpp.o"
  "CMakeFiles/cadmc_compress.dir/compress/fc_transforms.cpp.o.d"
  "CMakeFiles/cadmc_compress.dir/compress/registry.cpp.o"
  "CMakeFiles/cadmc_compress.dir/compress/registry.cpp.o.d"
  "CMakeFiles/cadmc_compress.dir/compress/transform.cpp.o"
  "CMakeFiles/cadmc_compress.dir/compress/transform.cpp.o.d"
  "libcadmc_compress.a"
  "libcadmc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
