file(REMOVE_RECURSE
  "libcadmc_compress.a"
)
