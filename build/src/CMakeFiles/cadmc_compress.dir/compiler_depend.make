# Empty compiler generated dependencies file for cadmc_compress.
# This may be replaced when dependencies are built.
