file(REMOVE_RECURSE
  "CMakeFiles/cadmc_controller.dir/controller/controllers.cpp.o"
  "CMakeFiles/cadmc_controller.dir/controller/controllers.cpp.o.d"
  "CMakeFiles/cadmc_controller.dir/controller/lstm.cpp.o"
  "CMakeFiles/cadmc_controller.dir/controller/lstm.cpp.o.d"
  "libcadmc_controller.a"
  "libcadmc_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
