file(REMOVE_RECURSE
  "libcadmc_controller.a"
)
