# Empty dependencies file for cadmc_controller.
# This may be replaced when dependencies are built.
