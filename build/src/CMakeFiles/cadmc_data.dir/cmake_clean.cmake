file(REMOVE_RECURSE
  "CMakeFiles/cadmc_data.dir/data/dataloader.cpp.o"
  "CMakeFiles/cadmc_data.dir/data/dataloader.cpp.o.d"
  "CMakeFiles/cadmc_data.dir/data/synth_cifar.cpp.o"
  "CMakeFiles/cadmc_data.dir/data/synth_cifar.cpp.o.d"
  "libcadmc_data.a"
  "libcadmc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
