file(REMOVE_RECURSE
  "libcadmc_data.a"
)
