# Empty dependencies file for cadmc_data.
# This may be replaced when dependencies are built.
