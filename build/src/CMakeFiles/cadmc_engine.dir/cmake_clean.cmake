file(REMOVE_RECURSE
  "CMakeFiles/cadmc_engine.dir/engine/accuracy_model.cpp.o"
  "CMakeFiles/cadmc_engine.dir/engine/accuracy_model.cpp.o.d"
  "CMakeFiles/cadmc_engine.dir/engine/branch_search.cpp.o"
  "CMakeFiles/cadmc_engine.dir/engine/branch_search.cpp.o.d"
  "CMakeFiles/cadmc_engine.dir/engine/reward.cpp.o"
  "CMakeFiles/cadmc_engine.dir/engine/reward.cpp.o.d"
  "CMakeFiles/cadmc_engine.dir/engine/strategy.cpp.o"
  "CMakeFiles/cadmc_engine.dir/engine/strategy.cpp.o.d"
  "libcadmc_engine.a"
  "libcadmc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
