file(REMOVE_RECURSE
  "libcadmc_engine.a"
)
