# Empty dependencies file for cadmc_engine.
# This may be replaced when dependencies are built.
