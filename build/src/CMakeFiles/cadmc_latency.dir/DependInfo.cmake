
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/latency/compute_model.cpp" "src/CMakeFiles/cadmc_latency.dir/latency/compute_model.cpp.o" "gcc" "src/CMakeFiles/cadmc_latency.dir/latency/compute_model.cpp.o.d"
  "/root/repo/src/latency/device_profile.cpp" "src/CMakeFiles/cadmc_latency.dir/latency/device_profile.cpp.o" "gcc" "src/CMakeFiles/cadmc_latency.dir/latency/device_profile.cpp.o.d"
  "/root/repo/src/latency/energy_model.cpp" "src/CMakeFiles/cadmc_latency.dir/latency/energy_model.cpp.o" "gcc" "src/CMakeFiles/cadmc_latency.dir/latency/energy_model.cpp.o.d"
  "/root/repo/src/latency/macc.cpp" "src/CMakeFiles/cadmc_latency.dir/latency/macc.cpp.o" "gcc" "src/CMakeFiles/cadmc_latency.dir/latency/macc.cpp.o.d"
  "/root/repo/src/latency/transfer_model.cpp" "src/CMakeFiles/cadmc_latency.dir/latency/transfer_model.cpp.o" "gcc" "src/CMakeFiles/cadmc_latency.dir/latency/transfer_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
