file(REMOVE_RECURSE
  "CMakeFiles/cadmc_latency.dir/latency/compute_model.cpp.o"
  "CMakeFiles/cadmc_latency.dir/latency/compute_model.cpp.o.d"
  "CMakeFiles/cadmc_latency.dir/latency/device_profile.cpp.o"
  "CMakeFiles/cadmc_latency.dir/latency/device_profile.cpp.o.d"
  "CMakeFiles/cadmc_latency.dir/latency/energy_model.cpp.o"
  "CMakeFiles/cadmc_latency.dir/latency/energy_model.cpp.o.d"
  "CMakeFiles/cadmc_latency.dir/latency/macc.cpp.o"
  "CMakeFiles/cadmc_latency.dir/latency/macc.cpp.o.d"
  "CMakeFiles/cadmc_latency.dir/latency/transfer_model.cpp.o"
  "CMakeFiles/cadmc_latency.dir/latency/transfer_model.cpp.o.d"
  "libcadmc_latency.a"
  "libcadmc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
