file(REMOVE_RECURSE
  "libcadmc_latency.a"
)
