# Empty dependencies file for cadmc_latency.
# This may be replaced when dependencies are built.
