
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/estimator.cpp" "src/CMakeFiles/cadmc_net.dir/net/estimator.cpp.o" "gcc" "src/CMakeFiles/cadmc_net.dir/net/estimator.cpp.o.d"
  "/root/repo/src/net/generator.cpp" "src/CMakeFiles/cadmc_net.dir/net/generator.cpp.o" "gcc" "src/CMakeFiles/cadmc_net.dir/net/generator.cpp.o.d"
  "/root/repo/src/net/scenes.cpp" "src/CMakeFiles/cadmc_net.dir/net/scenes.cpp.o" "gcc" "src/CMakeFiles/cadmc_net.dir/net/scenes.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/cadmc_net.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/cadmc_net.dir/net/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
