file(REMOVE_RECURSE
  "CMakeFiles/cadmc_net.dir/net/estimator.cpp.o"
  "CMakeFiles/cadmc_net.dir/net/estimator.cpp.o.d"
  "CMakeFiles/cadmc_net.dir/net/generator.cpp.o"
  "CMakeFiles/cadmc_net.dir/net/generator.cpp.o.d"
  "CMakeFiles/cadmc_net.dir/net/scenes.cpp.o"
  "CMakeFiles/cadmc_net.dir/net/scenes.cpp.o.d"
  "CMakeFiles/cadmc_net.dir/net/trace.cpp.o"
  "CMakeFiles/cadmc_net.dir/net/trace.cpp.o.d"
  "libcadmc_net.a"
  "libcadmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
