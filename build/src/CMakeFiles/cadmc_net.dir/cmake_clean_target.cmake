file(REMOVE_RECURSE
  "libcadmc_net.a"
)
