# Empty dependencies file for cadmc_net.
# This may be replaced when dependencies are built.
