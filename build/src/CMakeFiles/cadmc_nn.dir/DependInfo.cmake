
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/checkpoint.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/composite.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/composite.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/composite.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/factory.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/factory.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/factory.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/pool.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/pool.cpp.o.d"
  "/root/repo/src/nn/quant.cpp" "src/CMakeFiles/cadmc_nn.dir/nn/quant.cpp.o" "gcc" "src/CMakeFiles/cadmc_nn.dir/nn/quant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
