file(REMOVE_RECURSE
  "CMakeFiles/cadmc_nn.dir/nn/activation.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/activation.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/batchnorm.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/batchnorm.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/checkpoint.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/checkpoint.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/composite.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/composite.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/conv.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/conv.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/factory.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/factory.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/model.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/model.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/pool.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/pool.cpp.o.d"
  "CMakeFiles/cadmc_nn.dir/nn/quant.cpp.o"
  "CMakeFiles/cadmc_nn.dir/nn/quant.cpp.o.d"
  "libcadmc_nn.a"
  "libcadmc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
