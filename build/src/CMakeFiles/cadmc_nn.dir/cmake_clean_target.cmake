file(REMOVE_RECURSE
  "libcadmc_nn.a"
)
