# Empty dependencies file for cadmc_nn.
# This may be replaced when dependencies are built.
