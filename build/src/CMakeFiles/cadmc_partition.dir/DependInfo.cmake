
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/dag_expand.cpp" "src/CMakeFiles/cadmc_partition.dir/partition/dag_expand.cpp.o" "gcc" "src/CMakeFiles/cadmc_partition.dir/partition/dag_expand.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/CMakeFiles/cadmc_partition.dir/partition/partition.cpp.o" "gcc" "src/CMakeFiles/cadmc_partition.dir/partition/partition.cpp.o.d"
  "/root/repo/src/partition/surgery.cpp" "src/CMakeFiles/cadmc_partition.dir/partition/surgery.cpp.o" "gcc" "src/CMakeFiles/cadmc_partition.dir/partition/surgery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
