file(REMOVE_RECURSE
  "CMakeFiles/cadmc_partition.dir/partition/dag_expand.cpp.o"
  "CMakeFiles/cadmc_partition.dir/partition/dag_expand.cpp.o.d"
  "CMakeFiles/cadmc_partition.dir/partition/partition.cpp.o"
  "CMakeFiles/cadmc_partition.dir/partition/partition.cpp.o.d"
  "CMakeFiles/cadmc_partition.dir/partition/surgery.cpp.o"
  "CMakeFiles/cadmc_partition.dir/partition/surgery.cpp.o.d"
  "libcadmc_partition.a"
  "libcadmc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
