file(REMOVE_RECURSE
  "libcadmc_partition.a"
)
