# Empty dependencies file for cadmc_partition.
# This may be replaced when dependencies are built.
