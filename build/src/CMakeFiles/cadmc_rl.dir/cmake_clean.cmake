file(REMOVE_RECURSE
  "CMakeFiles/cadmc_rl.dir/rl/baseline_search.cpp.o"
  "CMakeFiles/cadmc_rl.dir/rl/baseline_search.cpp.o.d"
  "CMakeFiles/cadmc_rl.dir/rl/reinforce.cpp.o"
  "CMakeFiles/cadmc_rl.dir/rl/reinforce.cpp.o.d"
  "libcadmc_rl.a"
  "libcadmc_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
