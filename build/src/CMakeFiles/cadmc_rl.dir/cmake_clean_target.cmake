file(REMOVE_RECURSE
  "libcadmc_rl.a"
)
