# Empty compiler generated dependencies file for cadmc_rl.
# This may be replaced when dependencies are built.
