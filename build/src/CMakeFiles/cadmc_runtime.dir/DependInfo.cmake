
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/decision_engine.cpp" "src/CMakeFiles/cadmc_runtime.dir/runtime/decision_engine.cpp.o" "gcc" "src/CMakeFiles/cadmc_runtime.dir/runtime/decision_engine.cpp.o.d"
  "/root/repo/src/runtime/emulator.cpp" "src/CMakeFiles/cadmc_runtime.dir/runtime/emulator.cpp.o" "gcc" "src/CMakeFiles/cadmc_runtime.dir/runtime/emulator.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/cadmc_runtime.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/cadmc_runtime.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/field.cpp" "src/CMakeFiles/cadmc_runtime.dir/runtime/field.cpp.o" "gcc" "src/CMakeFiles/cadmc_runtime.dir/runtime/field.cpp.o.d"
  "/root/repo/src/runtime/shaper.cpp" "src/CMakeFiles/cadmc_runtime.dir/runtime/shaper.cpp.o" "gcc" "src/CMakeFiles/cadmc_runtime.dir/runtime/shaper.cpp.o.d"
  "/root/repo/src/runtime/transport.cpp" "src/CMakeFiles/cadmc_runtime.dir/runtime/transport.cpp.o" "gcc" "src/CMakeFiles/cadmc_runtime.dir/runtime/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
