file(REMOVE_RECURSE
  "CMakeFiles/cadmc_runtime.dir/runtime/decision_engine.cpp.o"
  "CMakeFiles/cadmc_runtime.dir/runtime/decision_engine.cpp.o.d"
  "CMakeFiles/cadmc_runtime.dir/runtime/emulator.cpp.o"
  "CMakeFiles/cadmc_runtime.dir/runtime/emulator.cpp.o.d"
  "CMakeFiles/cadmc_runtime.dir/runtime/executor.cpp.o"
  "CMakeFiles/cadmc_runtime.dir/runtime/executor.cpp.o.d"
  "CMakeFiles/cadmc_runtime.dir/runtime/field.cpp.o"
  "CMakeFiles/cadmc_runtime.dir/runtime/field.cpp.o.d"
  "CMakeFiles/cadmc_runtime.dir/runtime/shaper.cpp.o"
  "CMakeFiles/cadmc_runtime.dir/runtime/shaper.cpp.o.d"
  "CMakeFiles/cadmc_runtime.dir/runtime/transport.cpp.o"
  "CMakeFiles/cadmc_runtime.dir/runtime/transport.cpp.o.d"
  "libcadmc_runtime.a"
  "libcadmc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
