file(REMOVE_RECURSE
  "libcadmc_runtime.a"
)
