# Empty compiler generated dependencies file for cadmc_runtime.
# This may be replaced when dependencies are built.
