
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/cadmc_tensor.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/cadmc_tensor.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/CMakeFiles/cadmc_tensor.dir/tensor/serialize.cpp.o" "gcc" "src/CMakeFiles/cadmc_tensor.dir/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/svd.cpp" "src/CMakeFiles/cadmc_tensor.dir/tensor/svd.cpp.o" "gcc" "src/CMakeFiles/cadmc_tensor.dir/tensor/svd.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/cadmc_tensor.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/cadmc_tensor.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cadmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
