file(REMOVE_RECURSE
  "CMakeFiles/cadmc_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/cadmc_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/cadmc_tensor.dir/tensor/serialize.cpp.o"
  "CMakeFiles/cadmc_tensor.dir/tensor/serialize.cpp.o.d"
  "CMakeFiles/cadmc_tensor.dir/tensor/svd.cpp.o"
  "CMakeFiles/cadmc_tensor.dir/tensor/svd.cpp.o.d"
  "CMakeFiles/cadmc_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/cadmc_tensor.dir/tensor/tensor.cpp.o.d"
  "libcadmc_tensor.a"
  "libcadmc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
