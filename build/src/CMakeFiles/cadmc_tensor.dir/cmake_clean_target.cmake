file(REMOVE_RECURSE
  "libcadmc_tensor.a"
)
