# Empty dependencies file for cadmc_tensor.
# This may be replaced when dependencies are built.
