file(REMOVE_RECURSE
  "CMakeFiles/cadmc_tree.dir/tree/model_tree.cpp.o"
  "CMakeFiles/cadmc_tree.dir/tree/model_tree.cpp.o.d"
  "CMakeFiles/cadmc_tree.dir/tree/tree_io.cpp.o"
  "CMakeFiles/cadmc_tree.dir/tree/tree_io.cpp.o.d"
  "CMakeFiles/cadmc_tree.dir/tree/tree_search.cpp.o"
  "CMakeFiles/cadmc_tree.dir/tree/tree_search.cpp.o.d"
  "libcadmc_tree.a"
  "libcadmc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
