file(REMOVE_RECURSE
  "libcadmc_tree.a"
)
