# Empty compiler generated dependencies file for cadmc_tree.
# This may be replaced when dependencies are built.
