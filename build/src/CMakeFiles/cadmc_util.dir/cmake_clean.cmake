file(REMOVE_RECURSE
  "CMakeFiles/cadmc_util.dir/util/csv.cpp.o"
  "CMakeFiles/cadmc_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/cadmc_util.dir/util/logging.cpp.o"
  "CMakeFiles/cadmc_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/cadmc_util.dir/util/stats.cpp.o"
  "CMakeFiles/cadmc_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/cadmc_util.dir/util/string_util.cpp.o"
  "CMakeFiles/cadmc_util.dir/util/string_util.cpp.o.d"
  "CMakeFiles/cadmc_util.dir/util/table.cpp.o"
  "CMakeFiles/cadmc_util.dir/util/table.cpp.o.d"
  "libcadmc_util.a"
  "libcadmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
