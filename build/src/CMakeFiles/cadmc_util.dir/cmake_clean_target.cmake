file(REMOVE_RECURSE
  "libcadmc_util.a"
)
