# Empty compiler generated dependencies file for cadmc_util.
# This may be replaced when dependencies are built.
