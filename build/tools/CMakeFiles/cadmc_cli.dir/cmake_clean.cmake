file(REMOVE_RECURSE
  "CMakeFiles/cadmc_cli.dir/cadmc_cli.cpp.o"
  "CMakeFiles/cadmc_cli.dir/cadmc_cli.cpp.o.d"
  "cadmc"
  "cadmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadmc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
