# Empty compiler generated dependencies file for cadmc_cli.
# This may be replaced when dependencies are built.
