# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_scenes "/root/repo/build/tools/cadmc" "scenes")
set_tests_properties(cli_scenes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/cadmc" "profile" "--model" "mobilenet" "--device" "phone")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace "/root/repo/build/tools/cadmc" "trace" "--scene" "4G indoor slow" "--duration-ms" "5000" "--out" "/tmp/cadmc_cli_trace.csv")
set_tests_properties(cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
