// Scenario: continuous mobile vision (the paper's motivating workload — a
// DNN that "continuously receives and processes inputs"). A phone classifies
// a stream of frames while walking outdoors on 4G: the bandwidth swings
// through fades, and the engine recomposes the DNN from the model tree
// before every block (Alg. 2), switching between compressed-edge execution
// and cloud offloading mid-stream.
//
//   ./examples/adaptive_video_stream
#include <cstdio>
#include <map>

#include "nn/factory.h"
#include "runtime/decision_engine.h"
#include "util/stats.h"
#include "util/table.h"

using namespace cadmc;

int main() {
  runtime::EngineConfig config;
  config.edge_device = "phone";
  config.scene = net::scene_by_name("WiFi outdoor slow");
  config.base_accuracy = 0.9201;
  config.trace_duration_ms = 90'000.0;
  config.tree_config.episodes = 80;
  config.tree_config.branch_config.episodes = 120;
  runtime::DecisionEngine engine(nn::make_vgg11(), std::move(config));

  std::printf("Training the decision engine offline for 'WiFi outdoor slow'...\n");
  engine.train_offline();
  std::printf("Model tree ready (reward %.2f).\n\n",
              engine.search_result().tree_reward);

  // Stream 30 frames over 75 s of walking; one frame every 2.5 s.
  data::SynthCifar camera(32, 10, 0x57E4);
  util::Accumulator latency_acc;
  std::map<std::string, int> mode_histogram;
  std::printf("%5s %9s %7s %20s %8s\n", "frame", "t (s)", "Mbps", "mode (fork path)",
              "est ms");
  for (int frame = 0; frame < 30; ++frame) {
    const double t_ms = 5'000.0 + frame * 2'500.0;
    const auto batch = camera.make_batch(frame, 1);
    const auto outcome = engine.infer(batch.images, t_ms);
    latency_acc.add(outcome.latency_ms);
    std::string mode;
    if (outcome.strategy.cut == 0) {
      mode = "offload-all";
    } else if (outcome.strategy.cut >= engine.base().size()) {
      int compressed = 0;
      for (auto id : outcome.strategy.plan)
        compressed += id != compress::TechniqueId::kNone;
      mode = compressed ? "edge-compressed" : "edge-full";
    } else {
      mode = "split@" + std::to_string(outcome.strategy.cut);
    }
    mode += "[";
    for (int f : outcome.forks) mode += std::to_string(f);
    mode += "]";
    ++mode_histogram[mode];
    if (frame % 3 == 0)
      std::printf("%5d %9.1f %7.2f %20s %8.1f\n", frame, t_ms / 1000.0,
                  latency::bytes_per_ms_to_mbps(engine.trace().at(t_ms)),
                  mode.c_str(), outcome.latency_ms);
  }

  std::printf("\nStream summary over %zu frames:\n", latency_acc.count());
  std::printf("  mean latency %.1f ms (min %.1f, max %.1f)\n",
              latency_acc.mean(), latency_acc.min(), latency_acc.max());
  std::printf("  execution modes used:\n");
  for (const auto& [mode, count] : mode_histogram)
    std::printf("    %-16s x%d\n", mode.c_str(), count);
  std::printf(
      "\nThe engine switched modes with the link state instead of committing\n"
      "to one placement for the whole stream — the paper's core claim.\n");
  return 0;
}
