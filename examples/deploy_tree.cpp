// Scenario: deployment round trip. The offline phase runs "on the server":
// train the controllers, save the model tree and the base weights to disk.
// A separate "device" section then rebuilds everything from the artifacts
// alone and serves inferences — proving the persistence formats carry all
// the state the online phase needs (Fig. 2's offline/online split).
//
//   ./examples/deploy_tree
#include <cstdio>

#include "bench/common.h"
#include "nn/checkpoint.h"
#include "tree/tree_io.h"

using namespace cadmc;

int main() {
  const char* tree_path = "/tmp/cadmc_deploy_tree.txt";
  const char* weights_path = "/tmp/cadmc_deploy_weights.bin";

  // ---------------- Server side: offline phase ----------------
  {
    bench::BenchConfig config;
    config.branch_episodes = 100;
    config.tree_episodes = 80;
    net::EvalContext context{"AlexNet", "phone",
                             net::scene_by_name("WiFi (weak) indoor")};
    std::printf("[server] training decision engine for '%s'...\n",
                context.scene.name.c_str());
    const bench::ContextArtifacts art = bench::train_context(context, config);
    std::printf("[server] tree reward %.2f; saving artifacts\n",
                art.tree.tree_reward);
    if (!tree::save_tree(art.tree.tree, tree_path) ||
        !nn::save_weights(*art.base, weights_path)) {
      std::fprintf(stderr, "[server] failed to write artifacts\n");
      return 1;
    }
    std::printf("[server] wrote %s and %s\n\n", tree_path, weights_path);
  }  // everything trained on the server is gone now

  // ---------------- Device side: online phase ----------------
  std::printf("[device] rebuilding from artifacts only\n");
  nn::Model base = nn::make_alexnet();  // same architecture, fresh weights
  nn::load_weights(base, weights_path);
  const tree::ModelTree model_tree = tree::load_tree(base, tree_path);

  compress::TechniqueRegistry registry;  // weight-faithful realization
  util::Rng rng(0xDE91);
  data::SynthCifar camera(32, 10, 0xDE92);
  for (double mbps : {0.4, 3.0}) {
    const double bw = latency::mbps_to_bytes_per_ms(mbps);
    const auto composition =
        model_tree.compose_online([&](std::size_t) { return bw; });
    engine::RealizedStrategy realized = engine::realize_strategy(
        base, composition.strategy, registry, rng);
    const auto batch = camera.make_batch(3, 1);
    const auto logits = realized.model.forward(batch.images);
    std::printf(
        "[device] %.1f Mbps -> forks [", mbps);
    for (std::size_t i = 0; i < composition.forks.size(); ++i)
      std::printf("%s%d", i ? "," : "", composition.forks[i]);
    std::printf("], cut@%zu/%zu, prediction %d\n", composition.strategy.cut,
                base.size(), logits.argmax());
  }
  std::printf("\nDeployment round trip complete: the tree and weights files\n"
              "are all the device needs to run the context-aware model.\n");
  return 0;
}
