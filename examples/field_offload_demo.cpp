// Scenario: a real edge/cloud split over a real socket. The base model is
// partitioned and compressed with faithful weights, the cloud half is served
// by a TcpServer on localhost, and each inference pushes the actual feature
// tensor through the wire while a trace-driven shaper accounts (and briefly
// sleeps) for the radio time. Verifies on the spot that the distributed
// result matches local execution.
//
//   ./examples/field_offload_demo
#include <cstdio>

#include "compress/registry.h"
#include "latency/device_profile.h"
#include "nn/factory.h"
#include "net/generator.h"
#include "partition/surgery.h"
#include "runtime/field.h"

using namespace cadmc;

int main() {
  // A small real model keeps the demo fast while every byte is genuine.
  nn::Model base = nn::make_tiny_cnn(10, 32, 0xDE40);
  std::printf("Base model: %zu layers, %lld params\n", base.size(),
              static_cast<long long>(base.param_count()));

  // Pick the latency-optimal cut for a 3 Mbps uplink via min-cut surgery.
  latency::TransferModel transfer;
  transfer.rtt_ms = 12.0;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  const double bw = latency::mbps_to_bytes_per_ms(3.0);
  engine::Strategy strategy;
  strategy.cut = partition::surgery_cut_for_chain(base, pe, bw);
  if (strategy.cut >= base.size()) {
    // The demo model is so small that staying on the edge is optimal; force
    // a mid-network split anyway so real bytes cross the socket.
    strategy.cut = base.size() / 2;
    std::printf("(surgery prefers all-edge for this tiny model; forcing a "
                "mid-network split for the demo)\n");
  }
  strategy.plan.assign(base.size(), compress::TechniqueId::kNone);
  // Compress the edge half where applicable (weight-faithful transforms).
  compress::TechniqueRegistry registry;
  for (std::size_t i = 0; i < strategy.cut; ++i) {
    const auto ids = registry.applicable(base.slice(0, strategy.cut), i);
    if (ids.size() > 1) {
      strategy.plan[i] = ids[1];
      break;  // one technique is enough for the demo
    }
  }
  util::Rng rng(0xDE41);
  engine::RealizedStrategy realized =
      engine::realize_strategy(base, strategy, registry, rng);
  std::printf("Partition: layers [0,%zu) on the edge, [%zu,%zu) behind TCP\n",
              realized.cut, realized.cut, realized.model.size());

  // Cloud executor on localhost; transfers paced at 1/50 of real time.
  net::TraceGeneratorParams params;
  params.mean_mbps = 3.0;
  params.volatility = 0.5;
  const net::BandwidthTrace trace = net::generate_trace(params, 30'000.0, 0xDE42);
  runtime::FieldSession session(
      realized, latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), trace,
      transfer.rtt_ms, /*time_scale=*/0.02);

  data::SynthCifar camera(32, 10, 0xDE43);
  int agree = 0;
  const int frames = 5;
  for (int i = 0; i < frames; ++i) {
    const auto batch = camera.make_batch(i, 1);
    const runtime::FieldOutcome outcome =
        session.infer(batch.images, 2'000.0 + i * 4'000.0);
    // Cross-check against fully local execution of the same composed model.
    const auto local = realized.model.forward(batch.images);
    const bool same =
        tensor::Tensor::max_abs_diff(outcome.logits, local) < 1e-4f;
    agree += same;
    std::printf(
        "frame %d: prediction %d | edge %.1f ms + wire %.1f ms + cloud %.1f ms"
        " = %.1f ms | match local: %s\n",
        i, outcome.logits.argmax(), outcome.edge_ms, outcome.transfer_ms,
        outcome.cloud_ms, outcome.total_ms(), same ? "yes" : "NO");
  }
  std::printf("\n%d/%d distributed inferences matched local execution.\n",
              agree, frames);
  return agree == frames ? 0 : 1;
}
