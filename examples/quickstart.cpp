// Quickstart: train a context-aware model tree for VGG11 on a phone under a
// fluctuating 4G link, then run online inferences that compose the DNN from
// the tree per the current bandwidth (Alg. 2). Metric/span collection is on:
// the run ends with an observability report and a JSONL event stream
// (quickstart_metrics.jsonl) covering the offline search and each infer().
//
//   ./examples/quickstart
#include <cstdio>

#include "nn/factory.h"
#include "obs/export.h"
#include "runtime/decision_engine.h"
#include "util/logging.h"

using namespace cadmc;

int main() {
  util::set_log_level(util::LogLevel::kInfo);
  obs::set_enabled(true);

  // 1. Base DNN + deployment context.
  runtime::EngineConfig config;
  config.edge_device = "phone";
  config.scene = net::scene_by_name("4G outdoor quick");
  config.base_accuracy = 0.9201;
  config.tree_config.episodes = 100;  // quick demo; benches use more
  config.tree_config.branch_config.episodes = 150;
  runtime::DecisionEngine engine(nn::make_vgg11(), std::move(config));

  std::printf("Base model: %zu layers, %lld MACCs, %lld params\n",
              engine.base().size(),
              static_cast<long long>(engine.base().total_macc()),
              static_cast<long long>(engine.base().param_count()));
  std::printf("Scene: %s, fork bandwidths (poor/good): %.2f / %.2f Mbps\n",
              "4G outdoor quick",
              latency::bytes_per_ms_to_mbps(engine.fork_bandwidths()[0]),
              latency::bytes_per_ms_to_mbps(engine.fork_bandwidths()[1]));

  // 2. Offline phase: RL search produces the model tree.
  engine.train_offline();
  const auto& result = engine.search_result();
  std::printf("\nOffline search done: tree reward %.2f (best branch %.2f)\n",
              result.tree_reward, result.best_branch_reward);
  std::printf("Model tree:\n%s\n", engine.tree().to_string().c_str());

  // 3. Online phase: compose + run a real forward pass at three moments of
  // the trace with different link states.
  data::SynthCifar dataset(32, 10, /*seed=*/99);
  for (double t_ms : {6'000.0, 24'000.0, 48'000.0}) {
    const auto example = dataset.make_example(7);
    const auto batch = dataset.make_batch(7, 1);
    auto outcome = engine.infer(batch.images, t_ms);
    std::printf(
        "t=%5.0fms bandwidth %.2f Mbps -> forks [",
        t_ms, latency::bytes_per_ms_to_mbps(engine.trace().at(t_ms)));
    for (std::size_t i = 0; i < outcome.forks.size(); ++i)
      std::printf("%s%d", i ? "," : "", outcome.forks[i]);
    std::printf("], cut@%zu/%zu, est. latency %.1f ms, prediction=%d (label=%d)\n",
                outcome.strategy.cut, engine.base().size(),
                outcome.latency_ms, outcome.logits.argmax(), example.label);
  }
  // 4. Observability: aggregate run report + raw JSONL event stream. The
  // spans map onto the Fig. 2 pipeline: compose (Alg. 2 walk) -> edge_exec
  // -> transfer -> cloud_exec, under one "infer" parent per call.
  const auto& registry = engine.metrics();
  std::printf("\nRun report:\n%s",
              obs::render_report(obs::make_report(registry)).c_str());
  const char* metrics_path = "quickstart_metrics.jsonl";
  if (obs::export_jsonl(registry, metrics_path))
    std::printf("metrics stream saved to %s\n", metrics_path);

  std::printf("\nQuickstart finished.\n");
  return 0;
}
