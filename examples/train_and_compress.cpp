// Scenario: the RealEval path end to end — no analytic accuracy model
// anywhere. A small CNN is trained on SynthCIFAR, each applicable Table II
// technique is applied with faithful weights, the compressed model is
// retrained with knowledge distillation against the base (Sec. VI-D), and
// the REAL measured accuracies before/after recovery are reported alongside
// the MACC savings.
//
//   ./examples/train_and_compress
#include <cstdio>

#include "compress/registry.h"
#include "data/dataloader.h"
#include "engine/accuracy_model.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/factory.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/table.h"
#include "util/string_util.h"

using namespace cadmc;

namespace {
double eval_accuracy(nn::Model& model, const data::SynthCifar& dataset,
                     int begin, int end) {
  data::DataLoader loader(dataset, begin, end, 32);
  double acc = 0.0;
  for (int b = 0; b < loader.batches_per_epoch(); ++b) {
    const auto batch = loader.batch(b);
    acc += nn::accuracy(model.forward(batch.images, false), batch.labels);
  }
  return acc / loader.batches_per_epoch();
}
}  // namespace

nn::Model make_wide_cnn(std::uint64_t seed) {
  // Wide enough (>= 16 channels) that every Table II conv technique applies.
  util::Rng rng(seed);
  nn::Model m({3, 16, 16});
  m.add(std::make_unique<nn::Conv2d>(3, 16, 3, 1, 1, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::MaxPool2d>(2, 2));
  m.add(std::make_unique<nn::Conv2d>(16, 32, 3, 1, 1, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::MaxPool2d>(2, 2));
  m.add(std::make_unique<nn::Flatten>());
  m.add(std::make_unique<nn::Linear>(32 * 4 * 4, 32, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Linear>(32, 6, rng));
  return m;
}

int main() {
  data::SynthCifar dataset(16, 6, 0x7C41, /*noise=*/0.18);
  nn::Model base = make_wide_cnn(0x7C42);

  std::printf("Training the base CNN on SynthCIFAR (6 classes, 16x16)...\n");
  {
    data::DataLoader loader(dataset, 0, 512, 32);
    nn::Sgd sgd(0.02, 0.9);
    for (int step = 0; step < 250; ++step) {
      const auto batch = loader.batch(step);
      const auto loss =
          nn::cross_entropy(base.forward(batch.images, true), batch.labels);
      base.zero_grad();
      base.backward(loss.grad);
      sgd.step(base.params(), base.grads());
    }
  }
  const double base_acc = eval_accuracy(base, dataset, 512, 640);
  std::printf("Base accuracy: %.1f%% (chance %.1f%%), MACCs %lld\n\n",
              base_acc * 100, 100.0 / 6, static_cast<long long>(base.total_macc()));

  engine::RealAccuracyEvaluator evaluator(base, dataset, 512, 128, 32,
                                          /*train_steps=*/120, /*lr=*/0.02);
  compress::TechniqueRegistry registry;  // weight-faithful

  util::AsciiTable table({"Technique", "Site", "MACC x", "Acc before (%)",
                          "Acc after distill (%)"});
  for (const auto& technique : registry.all()) {
    // First applicable site.
    std::size_t site = base.size();
    for (std::size_t i = 0; i < base.size(); ++i)
      if (technique->applicable(base, i)) {
        site = i;
        break;
      }
    if (site == base.size()) {
      table.add_row({technique->name(), "n/a", "-", "-", "-"});
      continue;
    }
    nn::Model compressed = base;
    util::Rng rng(0x7C43 + static_cast<std::uint64_t>(technique->id()));
    technique->apply(compressed, site, rng);
    const double macc_ratio =
        static_cast<double>(compressed.total_macc()) / base.total_macc();
    const double acc_before = eval_accuracy(compressed, dataset, 512, 640);
    const double acc_after = evaluator.train_and_evaluate(compressed);
    table.add_row({technique->name(), std::to_string(site),
                   util::format_double(macc_ratio, 3),
                   util::format_double(acc_before * 100, 1),
                   util::format_double(acc_after * 100, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Weight-faithful transforms (F1/F2, W1) keep most accuracy even before\n"
      "retraining; re-initialized factorizations (C1-C3) rely on distillation\n"
      "to recover — the same recovery the paper's offline phase performs.\n");
  return 0;
}
