// C1 (MobileNet), C2 (MobileNetV2), C3 (SqueezeNet) and W1 (Filter Pruning)
// — the Conv-layer compressions of Table II.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/transform.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/quant.h"

namespace cadmc::compress {

namespace {
const nn::Conv2d* as_plain_conv(const nn::Model& model, std::size_t idx) {
  if (idx >= model.size()) return nullptr;
  const auto* conv = dynamic_cast<const nn::Conv2d*>(&model.layer(idx));
  if (conv == nullptr || conv->groups() != 1) return nullptr;
  return conv;
}

/// 3x3 convs with enough channels to be worth factorizing. The 'some Conv
/// layer' qualifier of Table II: 1x1 convs and tiny stem convs are excluded.
bool factorizable_conv(const nn::Conv2d* conv) {
  return conv != nullptr && conv->kernel() == 3 && conv->in_channels() >= 16 &&
         conv->out_channels() >= 16;
}
}  // namespace

bool MobileNetTransform::applicable(const nn::Model& model,
                                    std::size_t layer_idx) const {
  return factorizable_conv(as_plain_conv(model, layer_idx));
}

bool MobileNetTransform::apply(nn::Model& model, std::size_t layer_idx,
                               util::Rng& rng) const {
  if (!applicable(model, layer_idx)) return false;
  const nn::Conv2d* conv = as_plain_conv(model, layer_idx);
  const int in_c = conv->in_channels(), out_c = conv->out_channels();
  // Depthwise 3x3 (keeps stride/padding) followed by pointwise 1x1. Weights
  // are re-initialized — the composed model is retrained with distillation.
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::make_unique<nn::Conv2d>(
      in_c, in_c, conv->kernel(), conv->stride(), conv->padding(), rng, in_c));
  layers.push_back(std::make_unique<nn::ReLU>());
  layers.push_back(std::make_unique<nn::Conv2d>(in_c, out_c, 1, 1, 0, rng));
  nn::LayerSpec spec{"conv_dws", conv->kernel(), conv->stride(),
                     conv->padding(), out_c};
  std::vector<std::unique_ptr<nn::Layer>> repl;
  repl.push_back(std::make_unique<nn::SequentialBlock>("conv_dws",
                                                       std::move(layers), spec));
  model.replace_layer(layer_idx, std::move(repl));
  return true;
}

bool MobileNetV2Transform::applicable(const nn::Model& model,
                                      std::size_t layer_idx) const {
  return factorizable_conv(as_plain_conv(model, layer_idx));
}

bool MobileNetV2Transform::apply(nn::Model& model, std::size_t layer_idx,
                                 util::Rng& rng) const {
  if (!applicable(model, layer_idx)) return false;
  const nn::Conv2d* conv = as_plain_conv(model, layer_idx);
  std::vector<std::unique_ptr<nn::Layer>> repl;
  repl.push_back(std::make_unique<nn::InvertedResidual>(
      conv->in_channels(), conv->out_channels(), expansion_, conv->stride(),
      rng));
  model.replace_layer(layer_idx, std::move(repl));
  return true;
}

bool SqueezeNetTransform::applicable(const nn::Model& model,
                                     std::size_t layer_idx) const {
  const nn::Conv2d* conv = as_plain_conv(model, layer_idx);
  // Fire preserves spatial size, so only stride-1 padded convs qualify, and
  // the output channel count must be even (two expand branches).
  return factorizable_conv(conv) && conv->stride() == 1 &&
         conv->padding() == 1 && conv->out_channels() % 2 == 0;
}

bool SqueezeNetTransform::apply(nn::Model& model, std::size_t layer_idx,
                                util::Rng& rng) const {
  if (!applicable(model, layer_idx)) return false;
  const nn::Conv2d* conv = as_plain_conv(model, layer_idx);
  const int out_c = conv->out_channels();
  const int squeeze = std::max(4, out_c / 8);
  std::vector<std::unique_ptr<nn::Layer>> repl;
  repl.push_back(std::make_unique<nn::Fire>(conv->in_channels(), squeeze,
                                            out_c / 2, rng));
  model.replace_layer(layer_idx, std::move(repl));
  return true;
}

bool FilterPruneTransform::applicable(const nn::Model& model,
                                      std::size_t layer_idx) const {
  const nn::Conv2d* conv = as_plain_conv(model, layer_idx);
  if (conv == nullptr || conv->out_channels() < 8) return false;
  // The pruned output channels must be consumed by a later plain conv
  // (whose input channels we can shrink). Channel-agnostic layers in
  // between are fine; anything else blocks the rewiring.
  for (std::size_t i = layer_idx + 1; i < model.size(); ++i) {
    const nn::Layer& l = model.layer(i);
    if (as_plain_conv(model, i) != nullptr) return true;
    const std::string type = l.spec().type;
    if (type == "relu" || type == "relu6" || type == "dropout" ||
        type == "maxpool" || type == "avgpool")
      continue;
    return false;
  }
  return false;
}

bool FilterPruneTransform::apply(nn::Model& model, std::size_t layer_idx,
                                 util::Rng& rng) const {
  (void)rng;  // pruning is deterministic given the weights
  if (!applicable(model, layer_idx)) return false;
  auto* conv = dynamic_cast<nn::Conv2d*>(&model.layer(layer_idx));
  const std::vector<double> saliency = conv->filter_saliency();
  const int out_c = conv->out_channels();
  const int keep_count = std::max(
      1, out_c - static_cast<int>(std::floor(out_c * prune_fraction_)));
  std::vector<int> order(static_cast<std::size_t>(out_c));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return saliency[static_cast<std::size_t>(a)] >
           saliency[static_cast<std::size_t>(b)];
  });
  std::vector<int> keep(order.begin(), order.begin() + keep_count);
  std::sort(keep.begin(), keep.end());  // preserve channel order
  conv->keep_filters(keep);
  for (std::size_t i = layer_idx + 1; i < model.size(); ++i) {
    if (auto* next = dynamic_cast<nn::Conv2d*>(&model.layer(i));
        next != nullptr && next->groups() == 1) {
      next->keep_input_channels(keep);
      break;
    }
  }
  return true;
}

bool QuantizeTransform::applicable(const nn::Model& model,
                                   std::size_t layer_idx) const {
  if (layer_idx >= model.size()) return false;
  const nn::Layer& layer = model.layer(layer_idx);
  // Already-quantized layers are excluded; plain convs and FCs qualify.
  const std::string type = layer.spec().type;
  if (type == "conv_q8" || type == "fc_q8") return false;
  if (dynamic_cast<const nn::Conv2d*>(&layer) != nullptr) return true;
  return dynamic_cast<const nn::Linear*>(&layer) != nullptr;
}

bool QuantizeTransform::apply(nn::Model& model, std::size_t layer_idx,
                              util::Rng& rng) const {
  (void)rng;  // quantization is deterministic
  if (!applicable(model, layer_idx)) return false;
  std::vector<std::unique_ptr<nn::Layer>> repl;
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&model.layer(layer_idx))) {
    repl.push_back(std::make_unique<nn::QuantizedConv2d>(*conv, bits_));
  } else {
    const auto* fc = dynamic_cast<const nn::Linear*>(&model.layer(layer_idx));
    repl.push_back(std::make_unique<nn::QuantizedLinear>(*fc, bits_));
  }
  model.replace_layer(layer_idx, std::move(repl));
  return true;
}

}  // namespace cadmc::compress
