// F1 (SVD), F2 (KSVD) and F3 (Global Average Pooling) — the FC-layer
// compressions of Table II.
#include <algorithm>
#include <cmath>

#include "compress/transform.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "tensor/svd.h"

namespace cadmc::compress {

namespace {
const nn::Linear* as_linear(const nn::Model& model, std::size_t idx) {
  if (idx >= model.size()) return nullptr;
  return dynamic_cast<const nn::Linear*>(&model.layer(idx));
}

/// Builds the two-factor replacement block for a low-rank FC factorization.
/// y = W x with W [out,in] becomes y = L (R x): first Linear holds R [k,in]
/// (no bias), second holds L [out,k] plus the original bias. When
/// `faithful` is false the factors keep their random initialization
/// (structure-only realization for the search engine).
std::unique_ptr<nn::Layer> make_low_rank_block(const nn::Linear& fc, int rank,
                                               double keep_fraction,
                                               const char* block_name,
                                               util::Rng& rng, bool faithful) {
  auto first = std::make_unique<nn::Linear>(fc.in_features(), rank, rng,
                                            /*bias=*/false);
  auto second = std::make_unique<nn::Linear>(rank, fc.out_features(), rng);
  if (faithful) {
    const tensor::LowRankFactors factors =
        tensor::low_rank_factors(fc.weight(), rank);
    first->weight() = factors.right;  // [k, in]
    second->weight() = factors.left;  // [out, k]
  }
  if (!fc.bias().empty()) second->bias() = fc.bias();
  if (keep_fraction < 1.0) {
    tensor::sparsify_in_place(first->weight(), keep_fraction);
    tensor::sparsify_in_place(second->weight(), keep_fraction);
  }
  std::vector<std::unique_ptr<nn::Layer>> layers;
  layers.push_back(std::move(first));
  layers.push_back(std::move(second));
  nn::LayerSpec spec{block_name, 0, 0, 0, fc.out_features()};
  return std::make_unique<nn::SequentialBlock>(block_name, std::move(layers),
                                               spec);
}

int rank_for(const nn::Linear& fc, double fraction) {
  const int full = std::min(fc.in_features(), fc.out_features());
  return std::max(1, static_cast<int>(std::floor(full * fraction)));
}
}  // namespace

bool SvdTransform::applicable(const nn::Model& model,
                              std::size_t layer_idx) const {
  const nn::Linear* fc = as_linear(model, layer_idx);
  // Rank-1 factorization of a tiny layer saves nothing.
  return fc != nullptr && std::min(fc->in_features(), fc->out_features()) >= 8;
}

bool SvdTransform::apply(nn::Model& model, std::size_t layer_idx,
                         util::Rng& rng) const {
  if (!applicable(model, layer_idx)) return false;
  const nn::Linear* fc = as_linear(model, layer_idx);
  std::vector<std::unique_ptr<nn::Layer>> repl;
  repl.push_back(make_low_rank_block(*fc, rank_for(*fc, rank_fraction_), 1.0,
                                     "fc_svd", rng, faithful_));
  model.replace_layer(layer_idx, std::move(repl));
  return true;
}

bool KsvdTransform::applicable(const nn::Model& model,
                               std::size_t layer_idx) const {
  const nn::Linear* fc = as_linear(model, layer_idx);
  return fc != nullptr && std::min(fc->in_features(), fc->out_features()) >= 8;
}

bool KsvdTransform::apply(nn::Model& model, std::size_t layer_idx,
                          util::Rng& rng) const {
  if (!applicable(model, layer_idx)) return false;
  const nn::Linear* fc = as_linear(model, layer_idx);
  std::vector<std::unique_ptr<nn::Layer>> repl;
  repl.push_back(make_low_rank_block(*fc, rank_for(*fc, rank_fraction_),
                                     keep_fraction_, "fc_ksvd", rng, faithful_));
  model.replace_layer(layer_idx, std::move(repl));
  return true;
}

bool GapTransform::applicable(const nn::Model& model,
                              std::size_t layer_idx) const {
  // Applies at the first FC layer: the entire classifier tail (from the
  // preceding Flatten onward) is replaced, so that layer must be preceded by
  // a Flatten over a spatial feature map, and every later parametric layer
  // must be an FC layer.
  const nn::Linear* fc = as_linear(model, layer_idx);
  if (fc == nullptr || layer_idx == 0) return false;
  if (dynamic_cast<const nn::Flatten*>(&model.layer(layer_idx - 1)) == nullptr)
    return false;
  const nn::Shape pre = layer_idx >= 2 ? model.shape_after(layer_idx - 2)
                                       : model.input_shape();
  if (pre.size() != 3) return false;
  for (std::size_t i = layer_idx + 1; i < model.size(); ++i) {
    const nn::Layer& l = model.layer(i);
    if (const_cast<nn::Layer&>(l).param_count() > 0 &&
        dynamic_cast<const nn::Linear*>(&l) == nullptr)
      return false;
  }
  return true;
}

bool GapTransform::apply(nn::Model& model, std::size_t layer_idx,
                         util::Rng& rng) const {
  if (!applicable(model, layer_idx)) return false;
  const nn::Shape pre = layer_idx >= 2 ? model.shape_after(layer_idx - 2)
                                       : model.input_shape();
  // The head must still produce the original class count.
  int num_classes = 0;
  for (std::size_t i = model.size(); i-- > 0;) {
    if (const nn::Linear* fc = as_linear(model, i)) {
      num_classes = fc->out_features();
      break;
    }
  }
  const std::size_t tail_begin = layer_idx - 1;  // the Flatten
  while (model.size() > tail_begin) model.remove_layer(model.size() - 1);
  model.add(std::make_unique<nn::Conv2d>(pre[0], num_classes, 1, 1, 0, rng));
  model.add(std::make_unique<nn::GlobalAvgPool>());
  return true;
}

}  // namespace cadmc::compress
