#include "compress/registry.h"

#include <stdexcept>

namespace cadmc::compress {

TechniqueRegistry::TechniqueRegistry(bool faithful_weights,
                                     bool include_extensions) {
  techniques_.push_back(std::make_unique<SvdTransform>(0.25, faithful_weights));
  techniques_.push_back(std::make_unique<KsvdTransform>(0.25, 0.4, faithful_weights));
  techniques_.push_back(std::make_unique<GapTransform>());
  techniques_.push_back(std::make_unique<MobileNetTransform>());
  techniques_.push_back(std::make_unique<MobileNetV2Transform>());
  techniques_.push_back(std::make_unique<SqueezeNetTransform>());
  techniques_.push_back(std::make_unique<FilterPruneTransform>());
  if (include_extensions)
    techniques_.push_back(std::make_unique<QuantizeTransform>());
}

const ModelTransform& TechniqueRegistry::technique(TechniqueId id) const {
  for (const auto& t : techniques_)
    if (t->id() == id) return *t;
  throw std::invalid_argument("TechniqueRegistry: no such technique");
}

std::vector<TechniqueId> TechniqueRegistry::applicable(
    const nn::Model& model, std::size_t layer_idx) const {
  std::vector<TechniqueId> out{TechniqueId::kNone};
  for (const auto& t : techniques_)
    if (t->applicable(model, layer_idx)) out.push_back(t->id());
  return out;
}

bool TechniqueRegistry::apply(TechniqueId id, nn::Model& model,
                              std::size_t layer_idx, util::Rng& rng) const {
  if (id == TechniqueId::kNone) return true;
  return technique(id).apply(model, layer_idx, rng);
}

int TechniqueRegistry::apply_plan(const std::vector<TechniqueId>& actions,
                                  nn::Model& model, util::Rng& rng) const {
  if (actions.size() != model.size())
    throw std::invalid_argument("apply_plan: one action per layer required");
  int applied = 0;
  for (std::size_t i = actions.size(); i-- > 0;) {
    if (actions[i] == TechniqueId::kNone) continue;
    if (apply(actions[i], model, i, rng)) ++applied;
  }
  return applied;
}

}  // namespace cadmc::compress
