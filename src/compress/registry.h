// Technique registry: owns one instance of every Table II transform and
// answers per-layer applicability queries — the masked action space of the
// compression controller.
#pragma once

#include <memory>
#include <vector>

#include "compress/transform.h"

namespace cadmc::compress {

class TechniqueRegistry {
 public:
  /// Constructs the full Table II catalog with default hyper-parameters.
  /// `faithful_weights = false` builds structure-exact but weight-random
  /// replacements (no SVD cost) — what the search engine uses; runtime
  /// realization uses the default faithful catalog.
  /// `include_extensions = true` adds the non-Table-II techniques
  /// (Q1 quantization); the default catalog reproduces the paper exactly.
  explicit TechniqueRegistry(bool faithful_weights = true,
                             bool include_extensions = false);

  const ModelTransform& technique(TechniqueId id) const;
  const std::vector<std::unique_ptr<ModelTransform>>& all() const {
    return techniques_;
  }

  /// Technique ids applicable to layer `layer_idx` of `model`; always
  /// includes kNone as the first entry.
  std::vector<TechniqueId> applicable(const nn::Model& model,
                                      std::size_t layer_idx) const;

  /// Applies `id` to the layer; kNone is a successful no-op.
  bool apply(TechniqueId id, nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const;

  /// Applies one action per layer of `model` (actions.size() == model.size(),
  /// entries may be kNone). Applications run back-to-front so indices stay
  /// valid as layers get replaced. Returns the number applied.
  int apply_plan(const std::vector<TechniqueId>& actions, nn::Model& model,
                 util::Rng& rng) const;

 private:
  std::vector<std::unique_ptr<ModelTransform>> techniques_;
};

}  // namespace cadmc::compress
