#include "compress/transform.h"

#include <stdexcept>

namespace cadmc::compress {

std::string technique_name(TechniqueId id) {
  switch (id) {
    case TechniqueId::kNone: return "None";
    case TechniqueId::kF1Svd: return "F1 (SVD)";
    case TechniqueId::kF2Ksvd: return "F2 (KSVD)";
    case TechniqueId::kF3Gap: return "F3 (Global Average Pooling)";
    case TechniqueId::kC1MobileNet: return "C1 (MobileNet)";
    case TechniqueId::kC2MobileNetV2: return "C2 (MobileNetV2)";
    case TechniqueId::kC3SqueezeNet: return "C3 (SqueezeNet)";
    case TechniqueId::kW1FilterPrune: return "W1 (Filter Pruning)";
    case TechniqueId::kQ1Quantize: return "Q1 (8-bit Quantization)";
  }
  throw std::invalid_argument("technique_name: bad id");
}

std::string technique_short_name(TechniqueId id) {
  switch (id) {
    case TechniqueId::kNone: return "-";
    case TechniqueId::kF1Svd: return "F1";
    case TechniqueId::kF2Ksvd: return "F2";
    case TechniqueId::kF3Gap: return "F3";
    case TechniqueId::kC1MobileNet: return "C1";
    case TechniqueId::kC2MobileNetV2: return "C2";
    case TechniqueId::kC3SqueezeNet: return "C3";
    case TechniqueId::kW1FilterPrune: return "W1";
    case TechniqueId::kQ1Quantize: return "Q1";
  }
  throw std::invalid_argument("technique_short_name: bad id");
}

}  // namespace cadmc::compress
