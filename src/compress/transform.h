// Compression techniques of Table II as structural model transforms. Each
// transform rewrites real layers with real weights in place:
//
//   F1 (SVD)         m x n FC weight -> rank-k factors (k << min(m,n))
//   F2 (KSVD)        same, with sparsified factor matrices
//   F3 (GAP)         the FC classifier head -> 1x1 conv + global avg pool
//   C1 (MobileNet)   3x3 conv -> depthwise 3x3 + pointwise 1x1
//   C2 (MobileNetV2) 3x3 conv -> inverted residual with linear bottleneck
//   C3 (SqueezeNet)  3x3 conv -> Fire module
//   W1 (FilterPrune) remove the least-salient output filters of a conv
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace cadmc::compress {

enum class TechniqueId : int {
  kNone = 0,
  kF1Svd = 1,
  kF2Ksvd = 2,
  kF3Gap = 3,
  kC1MobileNet = 4,
  kC2MobileNetV2 = 5,
  kC3SqueezeNet = 6,
  kW1FilterPrune = 7,
  // Extension beyond Table II (gated behind TechniqueRegistry's
  // include_extensions flag): 8-bit post-training weight quantization, per
  // the Deep Compression work the paper cites as [16].
  kQ1Quantize = 8,
};

/// Number of distinct action ids (including kNone) — the size of the
/// compression controller's per-layer softmax.
constexpr int kTechniqueCount = 9;

std::string technique_name(TechniqueId id);        // "F1 (SVD)" etc.
std::string technique_short_name(TechniqueId id);  // "F1" etc.

class ModelTransform {
 public:
  virtual ~ModelTransform() = default;

  virtual TechniqueId id() const = 0;
  std::string name() const { return technique_name(id()); }

  /// True if the transform can rewrite layer `layer_idx` of `model`.
  virtual bool applicable(const nn::Model& model, std::size_t layer_idx) const = 0;

  /// Rewrites the model in place. Returns false (leaving the model
  /// unchanged) when not applicable. May replace the target layer with
  /// several layers or rewrite the model tail (F3).
  virtual bool apply(nn::Model& model, std::size_t layer_idx,
                     util::Rng& rng) const = 0;
};

// --- FC-layer transforms (fc_transforms.cpp) ---

class SvdTransform : public ModelTransform {
 public:
  /// rank = max(1, min(in,out) * rank_fraction). When `faithful` is false the
  /// factor weights are randomly initialized instead of computed by SVD —
  /// structure (shapes, MACCs) is exact but weights are placeholders; used by
  /// the search engine, which only prices structure and retrains weights.
  explicit SvdTransform(double rank_fraction = 0.25, bool faithful = true)
      : rank_fraction_(rank_fraction), faithful_(faithful) {}
  TechniqueId id() const override { return TechniqueId::kF1Svd; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;

 private:
  double rank_fraction_;
  bool faithful_;
};

class KsvdTransform : public ModelTransform {
 public:
  KsvdTransform(double rank_fraction = 0.25, double keep_fraction = 0.4,
                bool faithful = true)
      : rank_fraction_(rank_fraction),
        keep_fraction_(keep_fraction),
        faithful_(faithful) {}
  TechniqueId id() const override { return TechniqueId::kF2Ksvd; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;

 private:
  double rank_fraction_, keep_fraction_;
  bool faithful_;
};

class GapTransform : public ModelTransform {
 public:
  TechniqueId id() const override { return TechniqueId::kF3Gap; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;
};

// --- Conv-layer transforms (conv_transforms.cpp) ---

class MobileNetTransform : public ModelTransform {
 public:
  TechniqueId id() const override { return TechniqueId::kC1MobileNet; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;
};

class MobileNetV2Transform : public ModelTransform {
 public:
  explicit MobileNetV2Transform(int expansion = 2) : expansion_(expansion) {}
  TechniqueId id() const override { return TechniqueId::kC2MobileNetV2; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;

 private:
  int expansion_;
};

class SqueezeNetTransform : public ModelTransform {
 public:
  TechniqueId id() const override { return TechniqueId::kC3SqueezeNet; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;
};

/// Extension: 8-bit weight quantization of a conv or FC layer. The layer's
/// structure is unchanged; the spec type gains a _q8 suffix so the latency
/// model can price integer kernels.
class QuantizeTransform : public ModelTransform {
 public:
  explicit QuantizeTransform(int bits = 8) : bits_(bits) {}
  TechniqueId id() const override { return TechniqueId::kQ1Quantize; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;

 private:
  int bits_;
};

class FilterPruneTransform : public ModelTransform {
 public:
  /// Removes `prune_fraction` of the output filters (least mean-|w| first).
  explicit FilterPruneTransform(double prune_fraction = 0.3)
      : prune_fraction_(prune_fraction) {}
  TechniqueId id() const override { return TechniqueId::kW1FilterPrune; }
  bool applicable(const nn::Model& model, std::size_t layer_idx) const override;
  bool apply(nn::Model& model, std::size_t layer_idx,
             util::Rng& rng) const override;

 private:
  double prune_fraction_;
};

}  // namespace cadmc::compress
