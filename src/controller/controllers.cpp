#include "controller/controllers.h"

#include <cmath>
#include <stdexcept>

namespace cadmc::controller {

int LayerEmbedder::type_bucket(const std::string& type) {
  if (type == "conv" || type == "conv_q8") return 0;
  if (type == "conv_dws") return 1;
  if (type == "fire") return 2;
  if (type == "inv_res") return 3;
  if (type == "res_bneck" || type == "res_basic") return 4;
  if (type == "fc" || type == "fc_q8") return 5;
  if (type == "fc_svd" || type == "fc_ksvd") return 6;
  if (type == "maxpool" || type == "avgpool") return 7;
  if (type == "gap") return 8;
  if (type == "relu" || type == "relu6") return 9;
  if (type == "flatten") return 10;
  return 11;  // dropout, bn, anything else
}

Tensor LayerEmbedder::embed(const nn::Model& model, double bandwidth_mbps) {
  return embed_range(model, 0, model.size(), bandwidth_mbps);
}

Tensor LayerEmbedder::embed_range(const nn::Model& model, std::size_t begin,
                                  std::size_t end, double bandwidth_mbps) {
  if (begin >= end || end > model.size())
    throw std::invalid_argument("LayerEmbedder: empty or invalid range");
  const int t_len = static_cast<int>(end - begin);
  Tensor features({t_len, kDim});
  const float bw_feature = static_cast<float>(
      std::log1p(std::max(0.0, bandwidth_mbps)) / std::log1p(100.0));
  for (int t = 0; t < t_len; ++t) {
    const nn::LayerSpec spec =
        model.layer(begin + static_cast<std::size_t>(t)).spec();
    features(t, type_bucket(spec.type)) = 1.0f;
    features(t, kTypeBuckets + 0) = static_cast<float>(spec.kernel) / 11.0f;
    features(t, kTypeBuckets + 1) = static_cast<float>(spec.stride) / 4.0f;
    features(t, kTypeBuckets + 2) = static_cast<float>(spec.padding) / 3.0f;
    features(t, kTypeBuckets + 3) = static_cast<float>(
        std::log1p(static_cast<double>(spec.out_channels)) / std::log1p(4096.0));
    features(t, kTypeBuckets + 4) = bw_feature;
  }
  return features;
}

int sample_index(const std::vector<double>& probs, util::Rng& rng) {
  const double u = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    cumulative += probs[i];
    if (u < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

namespace {
std::vector<double> softmax(const std::vector<double>& logits) {
  double mx = logits.front();
  for (double v : logits) mx = std::max(mx, v);
  std::vector<double> probs(logits.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - mx);
    denom += probs[i];
  }
  for (double& p : probs) p /= denom;
  return probs;
}
constexpr double kMaskedLogit = -1e30;
}  // namespace

// -------------------------------------------------------------- Partition

PartitionController::PartitionController(int hidden_dim, std::uint64_t seed)
    : PartitionController(hidden_dim, util::Rng(seed)) {}

PartitionController::PartitionController(int hidden_dim, util::Rng rng)
    : lstm_(LayerEmbedder::kDim, hidden_dim, rng),
      optimizer_(3e-3) {
  const int d = 2 * hidden_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  v_pos_ = Tensor::rand_uniform({d}, rng, -scale, scale);
  v_nop_ = Tensor::rand_uniform({d}, rng, -scale, scale);
  b_pos_ = Tensor({1});
  b_nop_ = Tensor({1});
  gv_pos_ = Tensor({d});
  gv_nop_ = Tensor({d});
  gb_pos_ = Tensor({1});
  gb_nop_ = Tensor({1});
}

std::vector<double> PartitionController::logits(const Tensor& hs) const {
  const int t_len = hs.dim(0), d = hs.dim(1);
  std::vector<double> out(static_cast<std::size_t>(t_len) + 1, 0.0);
  for (int t = 0; t < t_len; ++t) {
    double acc = b_pos_(0);
    for (int k = 0; k < d; ++k) acc += v_pos_(k) * hs(t, k);
    out[static_cast<std::size_t>(t)] = acc;
  }
  double acc = b_nop_(0);
  for (int k = 0; k < d; ++k) acc += v_nop_(k) * hs(t_len - 1, k);
  out.back() = acc;
  return out;
}

std::vector<double> PartitionController::policy(const Tensor& features) {
  return softmax(logits(lstm_.forward(features)));
}

PolicySample PartitionController::sample(const Tensor& features,
                                         util::Rng& rng) {
  PolicySample s;
  s.probs = policy(features);
  s.action = sample_index(s.probs, rng);
  return s;
}

void PartitionController::accumulate_grad(const Tensor& features, int action,
                                          double advantage) {
  const Tensor hs = lstm_.forward(features);
  const std::vector<double> probs = softmax(logits(hs));
  const int t_len = hs.dim(0), d = hs.dim(1);
  if (action < 0 || action > t_len)
    throw std::out_of_range("PartitionController::accumulate_grad: action");
  // d(-log pi(a)) / d logit_i = p_i - [i == a]; scaled by the advantage.
  Tensor grad_hs({t_len, d});
  for (int i = 0; i <= t_len; ++i) {
    const double g =
        advantage * (probs[static_cast<std::size_t>(i)] - (i == action ? 1.0 : 0.0));
    if (i < t_len) {
      gb_pos_(0) += static_cast<float>(g);
      for (int k = 0; k < d; ++k) {
        gv_pos_(k) += static_cast<float>(g * hs(i, k));
        grad_hs(i, k) += static_cast<float>(g * v_pos_(k));
      }
    } else {
      gb_nop_(0) += static_cast<float>(g);
      for (int k = 0; k < d; ++k) {
        gv_nop_(k) += static_cast<float>(g * hs(t_len - 1, k));
        grad_hs(t_len - 1, k) += static_cast<float>(g * v_nop_(k));
      }
    }
  }
  lstm_.backward(grad_hs);
}

std::vector<Tensor*> PartitionController::params() {
  auto p = lstm_.params();
  for (Tensor* t : {&v_pos_, &v_nop_, &b_pos_, &b_nop_}) p.push_back(t);
  return p;
}

void PartitionController::step() {
  auto p = params();
  auto g = lstm_.grads();
  for (Tensor* t : {&gv_pos_, &gv_nop_, &gb_pos_, &gb_nop_}) g.push_back(t);
  nn::clip_grad_norm(g, 5.0);
  optimizer_.step(p, g);
}

void PartitionController::zero_grad() {
  lstm_.zero_grad();
  gv_pos_.fill(0.0f);
  gv_nop_.fill(0.0f);
  gb_pos_.fill(0.0f);
  gb_nop_.fill(0.0f);
}

// ------------------------------------------------------------ Compression

CompressionController::CompressionController(int hidden_dim, int action_count,
                                             std::uint64_t seed)
    : CompressionController(hidden_dim, action_count, util::Rng(seed)) {}

CompressionController::CompressionController(int hidden_dim, int action_count,
                                             util::Rng rng)
    : action_count_(action_count),
      lstm_(LayerEmbedder::kDim, hidden_dim, rng),
      optimizer_(3e-3) {
  if (action_count <= 0)
    throw std::invalid_argument("CompressionController: bad action count");
  const int d = 2 * hidden_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  w_head_ = Tensor::rand_uniform({action_count, d}, rng, -scale, scale);
  b_head_ = Tensor({action_count});
  // Do-nothing prior: start with "None" (action 0) likely, so early rollouts
  // explore light compression instead of rewriting every layer at once.
  b_head_(0) = 3.0f;
  gw_head_ = Tensor(w_head_.shape());
  gb_head_ = Tensor(b_head_.shape());
}

std::vector<std::vector<double>> CompressionController::masked_probs(
    const Tensor& hs, const std::vector<std::vector<int>>& masks) const {
  const int t_len = hs.dim(0), d = hs.dim(1);
  if (static_cast<int>(masks.size()) != t_len)
    throw std::invalid_argument("CompressionController: mask count mismatch");
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(t_len));
  for (int t = 0; t < t_len; ++t) {
    std::vector<double> logit(static_cast<std::size_t>(action_count_),
                              kMaskedLogit);
    const auto& allowed = masks[static_cast<std::size_t>(t)];
    auto is_allowed = [&](int a) {
      if (allowed.empty()) return a == 0;
      for (int m : allowed)
        if (m == a) return true;
      return false;
    };
    for (int a = 0; a < action_count_; ++a) {
      if (!is_allowed(a)) continue;
      double acc = b_head_(a);
      for (int k = 0; k < d; ++k) acc += w_head_(a, k) * hs(t, k);
      logit[static_cast<std::size_t>(a)] = acc;
    }
    out.push_back(softmax(logit));
  }
  return out;
}

std::vector<std::vector<double>> CompressionController::policies(
    const Tensor& features, const std::vector<std::vector<int>>& masks) {
  return masked_probs(lstm_.forward(features), masks);
}

std::vector<PolicySample> CompressionController::sample(
    const Tensor& features, const std::vector<std::vector<int>>& masks,
    util::Rng& rng) {
  const auto probs = policies(features, masks);
  std::vector<PolicySample> out;
  out.reserve(probs.size());
  for (const auto& p : probs) {
    PolicySample s;
    s.probs = p;
    s.action = sample_index(p, rng);
    out.push_back(std::move(s));
  }
  return out;
}

void CompressionController::accumulate_grad(
    const Tensor& features, const std::vector<std::vector<int>>& masks,
    const std::vector<int>& actions, double advantage) {
  const Tensor hs = lstm_.forward(features);
  const auto probs = masked_probs(hs, masks);
  const int t_len = hs.dim(0), d = hs.dim(1);
  if (static_cast<int>(actions.size()) != t_len)
    throw std::invalid_argument("CompressionController: action count mismatch");
  Tensor grad_hs({t_len, d});
  for (int t = 0; t < t_len; ++t) {
    const int a_taken = actions[static_cast<std::size_t>(t)];
    for (int a = 0; a < action_count_; ++a) {
      const double p = probs[static_cast<std::size_t>(t)][static_cast<std::size_t>(a)];
      if (p <= 0.0 && a != a_taken) continue;  // masked-out action
      const double g = advantage * (p - (a == a_taken ? 1.0 : 0.0));
      if (g == 0.0) continue;
      gb_head_(a) += static_cast<float>(g);
      for (int k = 0; k < d; ++k) {
        gw_head_(a, k) += static_cast<float>(g * hs(t, k));
        grad_hs(t, k) += static_cast<float>(g * w_head_(a, k));
      }
    }
  }
  lstm_.backward(grad_hs);
}

std::vector<Tensor*> CompressionController::params() {
  auto p = lstm_.params();
  p.push_back(&w_head_);
  p.push_back(&b_head_);
  return p;
}

void CompressionController::step() {
  auto p = params();
  auto g = lstm_.grads();
  g.push_back(&gw_head_);
  g.push_back(&gb_head_);
  nn::clip_grad_norm(g, 5.0);
  optimizer_.step(p, g);
}

void CompressionController::zero_grad() {
  lstm_.zero_grad();
  gw_head_.fill(0.0f);
  gb_head_.fill(0.0f);
}

}  // namespace cadmc::controller
