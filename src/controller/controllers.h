// The partition and compression search controllers of Fig. 6. Both embed the
// DNN's layer hyper-parameter strings (Eqn. 1) plus the bandwidth context,
// run a bidirectional LSTM, and emit softmax policies:
//  * the partition controller emits ONE action for the whole block: a score
//    per cut position 0..L-1 (from H_i) plus a "no partition" score (from
//    the sequence-final hidden state) — an (L+1)-way softmax,
//  * the compression controller emits one action PER LAYER: an 8-way softmax
//    over Table II techniques (incl. None), masked by per-layer
//    applicability.
// Training is Monte-Carlo policy gradient with baseline (Eqns. 8-10): call
// sample_* during rollout, then accumulate_grad with the episode advantage,
// then step().
#pragma once

#include <optional>

#include "controller/lstm.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace cadmc::controller {

/// Embeds layer specs (+ bandwidth) into the controller input features.
class LayerEmbedder {
 public:
  static constexpr int kTypeBuckets = 12;
  static constexpr int kDim = kTypeBuckets + 5;  // one-hot + k,s,p,log n,log bw

  /// features: [model.size(), kDim].
  static Tensor embed(const nn::Model& model, double bandwidth_mbps);
  /// Embeds layers [begin, end) without copying the model.
  static Tensor embed_range(const nn::Model& model, std::size_t begin,
                            std::size_t end, double bandwidth_mbps);
  static int type_bucket(const std::string& type);
};

struct PolicySample {
  int action = 0;
  std::vector<double> probs;  // full distribution the action was drawn from
};

class PartitionController {
 public:
  PartitionController(int hidden_dim, std::uint64_t seed);

  /// Returns the policy over actions 0..L where L = features.dim(0):
  /// action c < L cuts before layer c (layers [0,c) on edge); action L means
  /// no partition in this block.
  std::vector<double> policy(const Tensor& features);
  PolicySample sample(const Tensor& features, util::Rng& rng);

  /// REINFORCE gradient accumulation for one decision:
  /// grad += advantage * d(-log pi(action)) / d theta.
  void accumulate_grad(const Tensor& features, int action, double advantage);

  void step();
  void zero_grad();
  std::vector<Tensor*> params();

 private:
  PartitionController(int hidden_dim, util::Rng rng);
  std::vector<double> logits(const Tensor& hs) const;

  BiLstm lstm_;
  Tensor v_pos_, v_nop_;    // [2H] scoring vectors
  Tensor b_pos_, b_nop_;    // scalar biases (as 1-element tensors)
  Tensor gv_pos_, gv_nop_, gb_pos_, gb_nop_;
  nn::Adam optimizer_;
};

class CompressionController {
 public:
  /// `action_count` = kTechniqueCount (8).
  CompressionController(int hidden_dim, int action_count, std::uint64_t seed);

  /// Per-layer policies; `masks[t]` lists the allowed action ids for layer t
  /// (empty mask = only action 0 allowed).
  std::vector<std::vector<double>> policies(
      const Tensor& features, const std::vector<std::vector<int>>& masks);
  std::vector<PolicySample> sample(const Tensor& features,
                                   const std::vector<std::vector<int>>& masks,
                                   util::Rng& rng);

  void accumulate_grad(const Tensor& features,
                       const std::vector<std::vector<int>>& masks,
                       const std::vector<int>& actions, double advantage);

  void step();
  void zero_grad();
  std::vector<Tensor*> params();

 private:
  CompressionController(int hidden_dim, int action_count, util::Rng rng);
  std::vector<std::vector<double>> masked_probs(
      const Tensor& hs, const std::vector<std::vector<int>>& masks) const;

  int action_count_;
  BiLstm lstm_;
  Tensor w_head_;  // [action_count, 2H]
  Tensor b_head_;  // [action_count]
  Tensor gw_head_, gb_head_;
  nn::Adam optimizer_;
};

/// Samples an index from a discrete distribution.
int sample_index(const std::vector<double>& probs, util::Rng& rng);

}  // namespace cadmc::controller
