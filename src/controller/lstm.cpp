#include "controller/lstm.h"

#include <cmath>
#include <stdexcept>

namespace cadmc::controller {

namespace {
float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(int input_dim, int hidden_dim, util::Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  if (input_dim <= 0 || hidden_dim <= 0)
    throw std::invalid_argument("Lstm: invalid dimensions");
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  w_ih_ = Tensor::rand_uniform({4 * hidden_dim, input_dim}, rng, -scale, scale);
  w_hh_ = Tensor::rand_uniform({4 * hidden_dim, hidden_dim}, rng, -scale, scale);
  b_ = Tensor({4 * hidden_dim});
  // Positive forget-gate bias: standard trick to keep memory early in training.
  for (int j = 0; j < hidden_dim; ++j) b_(hidden_dim + j) = 1.0f;
  gw_ih_ = Tensor(w_ih_.shape());
  gw_hh_ = Tensor(w_hh_.shape());
  gb_ = Tensor(b_.shape());
}

Tensor Lstm::forward(const Tensor& xs) {
  if (xs.rank() != 2 || xs.dim(1) != input_dim_)
    throw std::invalid_argument("Lstm::forward: expected [T, input_dim]");
  const int t_len = xs.dim(0);
  const int h = hidden_dim_;
  cache_.clear();
  cache_.resize(static_cast<std::size_t>(t_len));
  Tensor hs({t_len, h});
  std::vector<float> h_prev(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> c_prev(static_cast<std::size_t>(h), 0.0f);
  for (int t = 0; t < t_len; ++t) {
    StepCache& sc = cache_[static_cast<std::size_t>(t)];
    sc.x.resize(static_cast<std::size_t>(input_dim_));
    for (int k = 0; k < input_dim_; ++k) sc.x[static_cast<std::size_t>(k)] = xs(t, k);
    sc.h_prev = h_prev;
    sc.c_prev = c_prev;
    sc.i.resize(static_cast<std::size_t>(h));
    sc.f.resize(static_cast<std::size_t>(h));
    sc.g.resize(static_cast<std::size_t>(h));
    sc.o.resize(static_cast<std::size_t>(h));
    sc.c.resize(static_cast<std::size_t>(h));
    sc.tanh_c.resize(static_cast<std::size_t>(h));
    for (int j = 0; j < h; ++j) {
      float z[4];
      for (int gate = 0; gate < 4; ++gate) {
        const int row = gate * h + j;
        double acc = b_(row);
        for (int k = 0; k < input_dim_; ++k)
          acc += w_ih_(row, k) * sc.x[static_cast<std::size_t>(k)];
        for (int k = 0; k < h; ++k)
          acc += w_hh_(row, k) * h_prev[static_cast<std::size_t>(k)];
        z[gate] = static_cast<float>(acc);
      }
      const float gi = sigmoid(z[0]);
      const float gf = sigmoid(z[1]);
      const float gg = std::tanh(z[2]);
      const float go = sigmoid(z[3]);
      const float c = gf * c_prev[static_cast<std::size_t>(j)] + gi * gg;
      const float tc = std::tanh(c);
      sc.i[static_cast<std::size_t>(j)] = gi;
      sc.f[static_cast<std::size_t>(j)] = gf;
      sc.g[static_cast<std::size_t>(j)] = gg;
      sc.o[static_cast<std::size_t>(j)] = go;
      sc.c[static_cast<std::size_t>(j)] = c;
      sc.tanh_c[static_cast<std::size_t>(j)] = tc;
      hs(t, j) = go * tc;
    }
    for (int j = 0; j < h; ++j) {
      h_prev[static_cast<std::size_t>(j)] = hs(t, j);
      c_prev[static_cast<std::size_t>(j)] = sc.c[static_cast<std::size_t>(j)];
    }
  }
  return hs;
}

Tensor Lstm::backward(const Tensor& grad_hs) {
  const int t_len = static_cast<int>(cache_.size());
  if (grad_hs.rank() != 2 || grad_hs.dim(0) != t_len ||
      grad_hs.dim(1) != hidden_dim_)
    throw std::invalid_argument("Lstm::backward: gradient shape mismatch");
  const int h = hidden_dim_;
  Tensor grad_xs({t_len, input_dim_});
  std::vector<float> dh_next(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> dc_next(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> dz(static_cast<std::size_t>(4 * h));
  for (int t = t_len - 1; t >= 0; --t) {
    const StepCache& sc = cache_[static_cast<std::size_t>(t)];
    for (int j = 0; j < h; ++j) {
      const float dh = grad_hs(t, j) + dh_next[static_cast<std::size_t>(j)];
      const float tc = sc.tanh_c[static_cast<std::size_t>(j)];
      const float go = sc.o[static_cast<std::size_t>(j)];
      float dc = dh * go * (1.0f - tc * tc) + dc_next[static_cast<std::size_t>(j)];
      const float d_o = dh * tc;
      const float d_i = dc * sc.g[static_cast<std::size_t>(j)];
      const float d_g = dc * sc.i[static_cast<std::size_t>(j)];
      const float d_f = dc * sc.c_prev[static_cast<std::size_t>(j)];
      dc_next[static_cast<std::size_t>(j)] = dc * sc.f[static_cast<std::size_t>(j)];
      const float gi = sc.i[static_cast<std::size_t>(j)];
      const float gf = sc.f[static_cast<std::size_t>(j)];
      const float gg = sc.g[static_cast<std::size_t>(j)];
      dz[static_cast<std::size_t>(0 * h + j)] = d_i * gi * (1.0f - gi);
      dz[static_cast<std::size_t>(1 * h + j)] = d_f * gf * (1.0f - gf);
      dz[static_cast<std::size_t>(2 * h + j)] = d_g * (1.0f - gg * gg);
      dz[static_cast<std::size_t>(3 * h + j)] = d_o * go * (1.0f - go);
    }
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    for (int row = 0; row < 4 * h; ++row) {
      const float dzr = dz[static_cast<std::size_t>(row)];
      if (dzr == 0.0f) continue;
      gb_(row) += dzr;
      for (int k = 0; k < input_dim_; ++k) {
        gw_ih_(row, k) += dzr * sc.x[static_cast<std::size_t>(k)];
        grad_xs(t, k) += dzr * w_ih_(row, k);
      }
      for (int k = 0; k < h; ++k) {
        gw_hh_(row, k) += dzr * sc.h_prev[static_cast<std::size_t>(k)];
        dh_next[static_cast<std::size_t>(k)] += dzr * w_hh_(row, k);
      }
    }
  }
  return grad_xs;
}

void Lstm::zero_grad() {
  gw_ih_.fill(0.0f);
  gw_hh_.fill(0.0f);
  gb_.fill(0.0f);
}

BiLstm::BiLstm(int input_dim, int hidden_dim, util::Rng& rng)
    : hidden_(hidden_dim),
      fwd_(input_dim, hidden_dim, rng),
      bwd_(input_dim, hidden_dim, rng) {}

namespace {
Tensor reverse_rows(const Tensor& xs) {
  const int t_len = xs.dim(0), d = xs.dim(1);
  Tensor out({t_len, d});
  for (int t = 0; t < t_len; ++t)
    for (int k = 0; k < d; ++k) out(t, k) = xs(t_len - 1 - t, k);
  return out;
}
}  // namespace

Tensor BiLstm::forward(const Tensor& xs) {
  const Tensor hf = fwd_.forward(xs);
  const Tensor hb_rev = bwd_.forward(reverse_rows(xs));
  const int t_len = xs.dim(0);
  Tensor out({t_len, 2 * hidden_});
  for (int t = 0; t < t_len; ++t) {
    for (int j = 0; j < hidden_; ++j) {
      out(t, j) = hf(t, j);
      out(t, hidden_ + j) = hb_rev(t_len - 1 - t, j);
    }
  }
  return out;
}

Tensor BiLstm::backward(const Tensor& grad) {
  const int t_len = grad.dim(0);
  Tensor gf({t_len, hidden_});
  Tensor gb({t_len, hidden_});
  for (int t = 0; t < t_len; ++t)
    for (int j = 0; j < hidden_; ++j) {
      gf(t, j) = grad(t, j);
      gb(t_len - 1 - t, j) = grad(t, hidden_ + j);
    }
  const Tensor gx_f = fwd_.backward(gf);
  const Tensor gx_b_rev = bwd_.backward(gb);
  Tensor gx = gx_f;
  const int d = gx.dim(1);
  for (int t = 0; t < t_len; ++t)
    for (int k = 0; k < d; ++k) gx(t, k) += gx_b_rev(t_len - 1 - t, k);
  return gx;
}

std::vector<Tensor*> BiLstm::params() {
  auto p = fwd_.params();
  for (Tensor* t : bwd_.params()) p.push_back(t);
  return p;
}

std::vector<Tensor*> BiLstm::grads() {
  auto g = fwd_.grads();
  for (Tensor* t : bwd_.grads()) g.push_back(t);
  return g;
}

void BiLstm::zero_grad() {
  fwd_.zero_grad();
  bwd_.zero_grad();
}

}  // namespace cadmc::controller
