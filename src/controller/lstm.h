// LSTM and bidirectional LSTM with full backpropagation-through-time.
// These are the policy networks of the partition and compression controllers
// (Fig. 6): a DNN layer's hyper-parameter string x_i is embedded and fed to a
// forward and a backward LSTM whose concatenated hidden states H_i drive the
// per-position softmax heads. Sequences are unbatched ([T, dim] tensors) —
// policy-gradient training runs one episode at a time.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace cadmc::controller {

using tensor::Tensor;

class Lstm {
 public:
  Lstm(int input_dim, int hidden_dim, util::Rng& rng);

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

  /// xs: [T, input_dim] -> hidden states [T, hidden_dim]. Caches the episode
  /// for backward().
  Tensor forward(const Tensor& xs);

  /// grad_hs: [T, hidden_dim] -> grad_xs: [T, input_dim]. Accumulates weight
  /// gradients; must follow a forward() on the same sequence.
  Tensor backward(const Tensor& grad_hs);

  std::vector<Tensor*> params() { return {&w_ih_, &w_hh_, &b_}; }
  std::vector<Tensor*> grads() { return {&gw_ih_, &gw_hh_, &gb_}; }
  void zero_grad();

 private:
  int input_dim_, hidden_dim_;
  // Gate order within the stacked dimension: input, forget, cell, output.
  Tensor w_ih_;  // [4H, I]
  Tensor w_hh_;  // [4H, H]
  Tensor b_;     // [4H]
  Tensor gw_ih_, gw_hh_, gb_;

  // Per-step caches from the last forward pass.
  struct StepCache {
    std::vector<float> x, h_prev, c_prev;
    std::vector<float> i, f, g, o;  // post-activation gates
    std::vector<float> c, tanh_c;
  };
  std::vector<StepCache> cache_;
};

/// Forward + reverse LSTM; hidden states are concatenated per position.
class BiLstm {
 public:
  BiLstm(int input_dim, int hidden_dim, util::Rng& rng);

  int output_dim() const { return 2 * hidden_; }

  /// xs: [T, input_dim] -> [T, 2*hidden_dim].
  Tensor forward(const Tensor& xs);
  /// grad: [T, 2*hidden_dim] -> [T, input_dim].
  Tensor backward(const Tensor& grad);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  void zero_grad();

 private:
  int hidden_;
  Lstm fwd_, bwd_;
};

}  // namespace cadmc::controller
