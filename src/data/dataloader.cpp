#include "data/dataloader.h"

#include <stdexcept>

namespace cadmc::data {

DataLoader::DataLoader(const SynthCifar& source, std::int64_t begin,
                       std::int64_t end, int batch_size)
    : source_(source), begin_(begin), end_(end), batch_size_(batch_size) {
  if (begin < 0 || end <= begin || batch_size <= 0 ||
      end - begin < batch_size)
    throw std::invalid_argument("DataLoader: invalid range/batch size");
}

int DataLoader::batches_per_epoch() const {
  return static_cast<int>((end_ - begin_) / batch_size_);
}

SynthCifar::Batch DataLoader::batch(int i) const {
  const int per_epoch = batches_per_epoch();
  const int wrapped = ((i % per_epoch) + per_epoch) % per_epoch;
  return source_.make_batch(begin_ + static_cast<std::int64_t>(wrapped) * batch_size_,
                            batch_size_);
}

}  // namespace cadmc::data
