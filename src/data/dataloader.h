// Train/eval iteration over SynthCIFAR with disjoint index ranges.
#pragma once

#include "data/synth_cifar.h"

namespace cadmc::data {

class DataLoader {
 public:
  /// Serves batches from the half-open example-index range [begin, end).
  DataLoader(const SynthCifar& source, std::int64_t begin, std::int64_t end,
             int batch_size);

  /// Number of full batches per epoch.
  int batches_per_epoch() const;

  /// The i-th batch (wraps modulo batches_per_epoch).
  SynthCifar::Batch batch(int i) const;

  int batch_size() const { return batch_size_; }
  std::int64_t example_count() const { return end_ - begin_; }

 private:
  const SynthCifar& source_;
  std::int64_t begin_, end_;
  int batch_size_;
};

}  // namespace cadmc::data
