#include "data/synth_cifar.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace cadmc::data {

using tensor::Tensor;

SynthCifar::SynthCifar(int image_size, int num_classes, std::uint64_t seed,
                       double noise)
    : image_size_(image_size),
      num_classes_(num_classes),
      seed_(seed),
      noise_(noise) {
  if (image_size <= 0 || num_classes <= 0)
    throw std::invalid_argument("SynthCifar: invalid parameters");
}

Example SynthCifar::make_example(std::int64_t index) const {
  // Every example is a pure function of (seed, index) — regenerating the
  // stream in any order gives identical data.
  util::Rng rng(seed_ ^ (0x9E3779B97f4A7C15ULL * static_cast<std::uint64_t>(index + 1)));
  const int label = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(num_classes_)));

  // Class-conditional texture parameters (deterministic functions of label).
  const double angle = 3.14159265358979 * label / num_classes_;
  const double freq = 2.0 + 0.7 * (label % 5);
  const double color[3] = {0.3 + 0.6 * ((label * 37 % 10) / 9.0),
                           0.3 + 0.6 * ((label * 53 % 10) / 9.0),
                           0.3 + 0.6 * ((label * 71 % 10) / 9.0)};
  // Per-example nuisance parameters.
  const double phase = rng.uniform(0.0, 6.2831853);
  const double cx = rng.uniform(0.25, 0.75), cy = rng.uniform(0.25, 0.75);
  const double blob_r = 0.12 + 0.08 * ((label * 29 % 7) / 6.0);

  Example ex;
  ex.label = label;
  ex.image = Tensor({3, image_size_, image_size_});
  const double ca = std::cos(angle), sa = std::sin(angle);
  for (int y = 0; y < image_size_; ++y) {
    for (int x = 0; x < image_size_; ++x) {
      const double u = static_cast<double>(x) / image_size_;
      const double v = static_cast<double>(y) / image_size_;
      const double proj = ca * u + sa * v;
      const double stripe = 0.5 + 0.5 * std::sin(6.2831853 * freq * proj + phase);
      const double dx = u - cx, dy = v - cy;
      const double blob = std::exp(-(dx * dx + dy * dy) / (blob_r * blob_r));
      for (int c = 0; c < 3; ++c) {
        const double value = color[c] * stripe + (1.0 - color[c]) * blob;
        ex.image(c, y, x) = static_cast<float>(value + rng.normal(0.0, noise_));
      }
    }
  }
  return ex;
}

SynthCifar::Batch SynthCifar::make_batch(std::int64_t start_index, int n) const {
  if (n <= 0) throw std::invalid_argument("make_batch: n <= 0");
  Batch batch;
  batch.images = Tensor({n, 3, image_size_, image_size_});
  batch.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Example ex = make_example(start_index + i);
    batch.labels[static_cast<std::size_t>(i)] = ex.label;
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < image_size_; ++y)
        for (int x = 0; x < image_size_; ++x)
          batch.images(i, c, y, x) = ex.image(c, y, x);
  }
  return batch;
}

}  // namespace cadmc::data
