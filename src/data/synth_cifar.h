// SynthCIFAR: a deterministic synthetic stand-in for CIFAR10 (see DESIGN.md,
// substitutions). Ten classes of 3-channel images; each class is a distinct
// parametric texture (oriented sinusoid + color bias + blob) corrupted with
// noise, so that classifiers of different capacities reach measurably
// different accuracies — which is what the accuracy/latency trade-off needs.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace cadmc::data {

struct Example {
  tensor::Tensor image;  // {3, s, s}
  int label = 0;
};

class SynthCifar {
 public:
  /// `noise` is the pixel-noise stddev; higher noise makes the task harder.
  SynthCifar(int image_size, int num_classes, std::uint64_t seed,
             double noise = 0.25);

  int image_size() const { return image_size_; }
  int num_classes() const { return num_classes_; }

  /// Deterministically generates the i-th example of the stream.
  Example make_example(std::int64_t index) const;

  /// Batched generation: images stacked into [n, 3, s, s].
  struct Batch {
    tensor::Tensor images;
    std::vector<int> labels;
  };
  Batch make_batch(std::int64_t start_index, int n) const;

 private:
  int image_size_;
  int num_classes_;
  std::uint64_t seed_;
  double noise_;
};

}  // namespace cadmc::data
