#include "engine/accuracy_model.h"

#include <cmath>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/span.h"
#include "util/rng.h"

namespace cadmc::engine {

namespace {
/// Post-distillation accuracy cost of each technique on a mid-depth layer,
/// calibrated to the paper's observed ~1% total loss (Tables IV/V).
double technique_base_cost(compress::TechniqueId id) {
  using compress::TechniqueId;
  switch (id) {
    case TechniqueId::kNone: return 0.0;
    case TechniqueId::kF1Svd: return 0.0025;
    case TechniqueId::kF2Ksvd: return 0.0038;
    case TechniqueId::kF3Gap: return 0.0050;
    case TechniqueId::kC1MobileNet: return 0.0055;
    case TechniqueId::kC2MobileNetV2: return 0.0045;
    case TechniqueId::kC3SqueezeNet: return 0.0062;
    case TechniqueId::kW1FilterPrune: return 0.0032;
    case TechniqueId::kQ1Quantize: return 0.0018;
  }
  throw std::invalid_argument("technique_base_cost: bad id");
}
}  // namespace

AccuracyModel::AccuracyModel(double base_accuracy,
                             std::size_t base_layer_count, std::uint64_t seed)
    : base_(base_accuracy), layers_(base_layer_count), seed_(seed) {
  if (base_accuracy <= 0.0 || base_accuracy > 1.0 || base_layer_count == 0)
    throw std::invalid_argument("AccuracyModel: invalid parameters");
}

double AccuracyModel::unit_degradation(std::size_t layer,
                                       compress::TechniqueId id) const {
  if (id == compress::TechniqueId::kNone) return 0.0;
  if (layer >= layers_) throw std::out_of_range("AccuracyModel: layer");
  // Early layers are more sensitive to structural surgery than late ones.
  const double depth_frac =
      layers_ > 1 ? static_cast<double>(layer) / static_cast<double>(layers_ - 1)
                  : 0.0;
  const double depth_factor = 1.3 - 0.6 * depth_frac;
  // Deterministic per-(layer, technique) jitter in [0.8, 1.2): retraining
  // outcomes differ per site, but identically every time we ask.
  std::uint64_t h = seed_ ^ (layer * 0x9E3779B97f4A7C15ULL) ^
                    (static_cast<std::uint64_t>(id) * 0xBF58476D1CE4E5B9ULL);
  const double jitter = 0.8 + 0.4 * (static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53);
  return technique_base_cost(id) * depth_factor * jitter;
}

double AccuracyModel::estimate(
    const std::vector<compress::TechniqueId>& plan) const {
  if (plan.size() != layers_)
    throw std::invalid_argument("AccuracyModel::estimate: plan size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < plan.size(); ++i)
    sum += unit_degradation(i, plan[i]);
  // Compounding: each structural change degrades the representation the
  // following (also rewritten) layers were distilled against, so joint
  // losses grow superlinearly — this is what keeps the searched strategies
  // near the paper's ~1% loss instead of compressing every layer.
  constexpr double kInteraction = 0.010;  // quadratic onset scale
  constexpr double kMaxLoss = 0.25;      // distillation always recovers this much
  const double loss = std::min(kMaxLoss, sum + sum * sum / kInteraction);
  return base_ - loss;
}

RealAccuracyEvaluator::RealAccuracyEvaluator(nn::Model base,
                                             const data::SynthCifar& dataset,
                                             int train_examples,
                                             int eval_examples, int batch_size,
                                             int train_steps, double lr)
    : base_(std::move(base)),
      dataset_(dataset),
      train_examples_(train_examples),
      eval_examples_(eval_examples),
      batch_size_(batch_size),
      train_steps_(train_steps),
      lr_(lr) {
  if (train_examples <= 0 || eval_examples <= 0 || batch_size <= 0)
    throw std::invalid_argument("RealAccuracyEvaluator: invalid sizes");
}

double RealAccuracyEvaluator::train_and_evaluate(nn::Model& candidate) const {
  CADMC_SPAN("distill_train");
  data::DataLoader loader(dataset_, 0, train_examples_, batch_size_);
  nn::Sgd optimizer(lr_, 0.9);
  for (int step = 0; step < train_steps_; ++step) {
    const auto batch = loader.batch(step);
    // Knowledge distillation (Sec. VI-D): soft targets from the base model.
    const tensor::Tensor teacher = base_.forward(batch.images, false);
    const tensor::Tensor logits = candidate.forward(batch.images, true);
    const nn::LossResult loss =
        nn::distillation_loss(logits, teacher, batch.labels);
    candidate.zero_grad();
    candidate.backward(loss.grad);
    // Temperature-scaled distillation gradients are ~T times larger than CE
    // gradients; clip so momentum SGD stays stable at CE-tuned rates.
    nn::clip_grad_norm(candidate.grads(), 5.0);
    optimizer.step(candidate.params(), candidate.grads());
  }
  return evaluate(candidate);
}

double RealAccuracyEvaluator::base_accuracy() const { return evaluate(base_); }

double RealAccuracyEvaluator::evaluate(nn::Model& model) const {
  data::DataLoader loader(dataset_, train_examples_,
                          train_examples_ + eval_examples_, batch_size_);
  double correct_weighted = 0.0;
  int batches = loader.batches_per_epoch();
  for (int b = 0; b < batches; ++b) {
    const auto batch = loader.batch(b);
    const tensor::Tensor logits = model.forward(batch.images, false);
    correct_weighted += nn::accuracy(logits, batch.labels);
  }
  return batches > 0 ? correct_weighted / batches : 0.0;
}

}  // namespace cadmc::engine
