// Accuracy estimation for transformed models.
//
// The paper trains each composed DNN (with knowledge distillation) and
// measures its CIFAR10 accuracy. Training VGG11-scale models is outside this
// repo's compute budget (see DESIGN.md substitutions), so the default is a
// calibrated analytic model: each applied compression contributes a
// technique- and depth-dependent post-retraining degradation, combined with
// diminishing returns. The calibration reproduces the paper's structure —
// base accuracies 92.01% (VGG11) / 84.04% (AlexNet) and ~0.3-1.5% loss for
// the strategies the search typically selects.
//
// For miniature models, RealAccuracyEvaluator measures accuracy by actually
// training (with distillation against the base model) and evaluating on
// SynthCIFAR — the same code path, real numbers (used in tests/examples).
#pragma once

#include <vector>

#include "compress/transform.h"
#include "data/dataloader.h"
#include "nn/model.h"

namespace cadmc::engine {

class AccuracyModel {
 public:
  /// `base_accuracy` in [0,1]; `seed` drives the deterministic per-(layer,
  /// technique) jitter that gives the search landscape texture.
  AccuracyModel(double base_accuracy, std::size_t base_layer_count,
                std::uint64_t seed);

  double base_accuracy() const { return base_; }

  /// Estimated accuracy after applying `plan[i]` to base layer i
  /// (kNone = untouched). plan.size() must equal base_layer_count.
  double estimate(const std::vector<compress::TechniqueId>& plan) const;

  /// Degradation contributed by one (layer, technique) pair.
  double unit_degradation(std::size_t layer, compress::TechniqueId id) const;

 private:
  double base_;
  std::size_t layers_;
  std::uint64_t seed_;
};

/// Measures accuracy of a (small) composed model by distillation-training it
/// against the base model on SynthCIFAR and evaluating on a held-out range.
class RealAccuracyEvaluator {
 public:
  RealAccuracyEvaluator(nn::Model base, const data::SynthCifar& dataset,
                        int train_examples, int eval_examples, int batch_size,
                        int train_steps, double lr);

  /// Distills `candidate` from the base model, then returns eval accuracy.
  /// The candidate is modified (trained) in place.
  double train_and_evaluate(nn::Model& candidate) const;

  /// Accuracy of the (already trained) base model on the eval split.
  double base_accuracy() const;

 private:
  double evaluate(nn::Model& model) const;

  mutable nn::Model base_;
  const data::SynthCifar& dataset_;
  int train_examples_, eval_examples_, batch_size_, train_steps_;
  double lr_;
};

}  // namespace cadmc::engine
