#include "engine/branch_search.h"

#include <stdexcept>

#include "latency/transfer_model.h"
#include "obs/span.h"

namespace cadmc::engine {

using compress::TechniqueId;
using controller::Tensor;

BranchSearch::BranchSearch(const StrategyEvaluator& evaluator,
                           const BranchSearchConfig& config)
    : evaluator_(&evaluator),
      config_(config),
      partition_(config.hidden_dim, config.seed ^ 0x9A17),
      compression_(config.hidden_dim, compress::kTechniqueCount,
                   config.seed ^ 0xC0817) {}

Strategy BranchSearch::sample_strategy(double bandwidth_bytes_per_ms,
                                       util::Rng& rng) {
  const nn::Model& base = evaluator_->base();
  const double bw_mbps = latency::bytes_per_ms_to_mbps(bandwidth_bytes_per_ms);
  const Tensor features = controller::LayerEmbedder::embed(base, bw_mbps);

  Strategy s;
  s.plan.assign(base.size(), TechniqueId::kNone);
  // Partition first (Alg. 1 line 3): action L means "no partition" — the
  // whole model stays on the edge.
  const auto p = partition_.sample(features, rng);
  s.cut = static_cast<std::size_t>(p.action);

  // Then compression of the edge half (Alg. 1 line 4).
  if (s.cut > 0) {
    const Tensor edge_features =
        controller::LayerEmbedder::embed_range(base, 0, s.cut, bw_mbps);
    const auto masks = evaluator_->technique_masks(0, s.cut);
    const auto samples = compression_.sample(edge_features, masks, rng);
    for (std::size_t i = 0; i < samples.size(); ++i)
      s.plan[i] = static_cast<TechniqueId>(samples[i].action);
  }
  return s;
}

BranchSearchResult BranchSearch::run(double bandwidth_bytes_per_ms) {
  obs::ScopedSpan run_span("branch_search");
  const nn::Model& base = evaluator_->base();
  const double bw_mbps = latency::bytes_per_ms_to_mbps(bandwidth_bytes_per_ms);
  util::Rng rng(config_.seed);
  rl::RewardBaseline baseline;
  BranchSearchResult result;
  result.best_eval.reward = -1.0;

  for (const Strategy& seed_strategy : config_.seed_strategies) {
    const Strategy s = sanitize_strategy(*evaluator_, seed_strategy);
    const Evaluation eval = evaluator_->evaluate(s, bandwidth_bytes_per_ms);
    if (eval.reward > result.best_eval.reward) {
      result.best_eval = eval;
      result.best = s;
    }
  }

  for (int episode = 0; episode < config_.episodes; ++episode) {
    const Strategy s = sample_strategy(bandwidth_bytes_per_ms, rng);
    const Evaluation eval = evaluator_->evaluate(s, bandwidth_bytes_per_ms);
    result.log.record(eval.reward);
    if (eval.reward > result.best_eval.reward) {
      result.best_eval = eval;
      result.best = s;
    }
    if (obs::enabled()) {
      obs::count("cadmc.search.branch_episodes");
      obs::observe("cadmc.search.branch_reward", eval.reward);
      obs::set_gauge("cadmc.search.branch_best_reward",
                     result.best_eval.reward);
    }
    const double advantage = baseline.advantage(eval.reward);
    // Rewards live on a ~400 scale; normalize the advantage so the policy
    // gradient magnitude is independent of the reward units.
    const double scaled = advantage / 40.0;

    const Tensor features = controller::LayerEmbedder::embed(base, bw_mbps);
    partition_.zero_grad();
    partition_.accumulate_grad(features, static_cast<int>(s.cut), scaled);
    partition_.step();

    if (s.cut > 0) {
      const Tensor edge_features =
          controller::LayerEmbedder::embed_range(base, 0, s.cut, bw_mbps);
      const auto masks = evaluator_->technique_masks(0, s.cut);
      std::vector<int> actions(s.cut);
      for (std::size_t i = 0; i < s.cut; ++i)
        actions[i] = static_cast<int>(s.plan[i]);
      compression_.zero_grad();
      compression_.accumulate_grad(edge_features, masks, actions, scaled);
      compression_.step();
    }
  }
  return result;
}

Strategy sanitize_strategy(const StrategyEvaluator& evaluator, Strategy s) {
  const std::size_t size = evaluator.base().size();
  if (s.plan.size() != size)
    throw std::invalid_argument("sanitize_strategy: plan size mismatch");
  s.cut = std::min(s.cut, size);
  for (std::size_t i = s.cut; i < size; ++i) s.plan[i] = TechniqueId::kNone;
  if (s.cut > 0) {
    const auto masks = evaluator.technique_masks(0, s.cut);
    for (std::size_t i = 0; i < s.cut; ++i) {
      bool ok = false;
      for (int m : masks[i])
        if (m == static_cast<int>(s.plan[i])) ok = true;
      if (!ok) s.plan[i] = TechniqueId::kNone;
    }
  }
  return s;
}

rl::StrategySpace make_strategy_space(const StrategyEvaluator& evaluator) {
  const std::size_t size = evaluator.base().size();
  rl::StrategySpace space;
  space.cardinalities.push_back(static_cast<int>(size) + 1);  // the cut
  const auto masks = evaluator.technique_masks(0, size);
  for (const auto& mask : masks)
    space.cardinalities.push_back(
        std::max(1, static_cast<int>(mask.size())));
  return space;
}

Strategy genome_to_strategy(const StrategyEvaluator& evaluator,
                            const std::vector<int>& genome) {
  const std::size_t size = evaluator.base().size();
  if (genome.size() != size + 1)
    throw std::invalid_argument("genome_to_strategy: genome size mismatch");
  Strategy s;
  s.cut = static_cast<std::size_t>(genome[0]);
  s.plan.assign(size, TechniqueId::kNone);
  const auto masks = evaluator.technique_masks(0, size);
  for (std::size_t i = 0; i < size; ++i) {
    const auto& mask = masks[i];
    if (mask.empty()) continue;
    const int pick = genome[i + 1] % static_cast<int>(mask.size());
    s.plan[i] = static_cast<TechniqueId>(mask[static_cast<std::size_t>(pick)]);
  }
  return sanitize_strategy(evaluator, s);
}

}  // namespace cadmc::engine
