// Alg. 1 — "Model Compression and Partition": the optimal-branch search.
// Two LSTM controllers (partition first, then compression on the edge half)
// roll out strategies under a constant bandwidth; each candidate is priced
// by the StrategyEvaluator and both controllers are updated by Monte-Carlo
// policy gradient with an EMA baseline until convergence. The best candidate
// is the "optimal branch" model of Sec. V-C.
//
// The same strategy space is exposed as a discrete genome so random search
// and epsilon-greedy search (Fig. 7 baselines) compare on equal footing.
#pragma once

#include "controller/controllers.h"
#include "engine/strategy.h"
#include "rl/baseline_search.h"
#include "rl/reinforce.h"

namespace cadmc::engine {

struct BranchSearchConfig {
  int episodes = 200;
  int hidden_dim = 24;
  std::uint64_t seed = 7;
  /// Known-good strategies (e.g. the DNN-surgery cut, which lies inside the
  /// branch search space) evaluated up front as incumbents, so the search
  /// result can only improve on them.
  std::vector<Strategy> seed_strategies;
};

struct BranchSearchResult {
  Strategy best;
  Evaluation best_eval;
  rl::EpisodeLog log;
};

class BranchSearch {
 public:
  BranchSearch(const StrategyEvaluator& evaluator,
               const BranchSearchConfig& config);

  /// Runs Alg. 1 under one constant bandwidth.
  BranchSearchResult run(double bandwidth_bytes_per_ms);

  /// One rollout without an update (exposed for the tree search, which
  /// reuses trained controllers).
  Strategy sample_strategy(double bandwidth_bytes_per_ms, util::Rng& rng);

  controller::PartitionController& partition_controller() { return partition_; }
  controller::CompressionController& compression_controller() { return compression_; }

 private:
  const StrategyEvaluator* evaluator_;
  BranchSearchConfig config_;
  controller::PartitionController partition_;
  controller::CompressionController compression_;
};

/// Zeroes plan entries that are not actually applicable on the edge slice
/// (so accuracy and latency price the same model). Also clears the cloud
/// half of the plan.
Strategy sanitize_strategy(const StrategyEvaluator& evaluator, Strategy s);

/// Genome layout for the search-method baselines: gene 0 = cut (size L+1),
/// gene 1+i = index into the applicable-technique list of base layer i.
rl::StrategySpace make_strategy_space(const StrategyEvaluator& evaluator);
Strategy genome_to_strategy(const StrategyEvaluator& evaluator,
                            const std::vector<int>& genome);

}  // namespace cadmc::engine
