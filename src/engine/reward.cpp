// Header-only (see reward.h); translation unit kept so the build mirrors the
// module inventory in DESIGN.md.
#include "engine/reward.h"
