// Reward function of Eqn. (7): R = N1(A) + N2(T) with the normalization of
// Sec. VII — accuracy mapped from [50%, 100%] onto [0, 100] reward points
// and latency mapped from [500ms, 0ms] onto [0, 300] points, total scale 400.
#pragma once

#include <algorithm>

namespace cadmc::engine {

struct RewardConfig {
  double acc_min = 0.50;      // minimal accuracy for normalization
  double acc_max = 1.00;      // maximal accuracy
  double lat_min_ms = 0.0;    // minimal latency
  double lat_max_ms = 500.0;  // maximal latency
  double acc_weight = 100.0;  // accuracy share of the total reward
  double lat_weight = 300.0;  // latency share of the total reward

  /// N1: higher accuracy -> higher reward, clamped to [0, acc_weight].
  double accuracy_reward(double accuracy) const {
    const double n = (accuracy - acc_min) / (acc_max - acc_min);
    return acc_weight * std::clamp(n, 0.0, 1.0);
  }

  /// N2: lower latency -> higher reward, clamped to [0, lat_weight].
  double latency_reward(double latency_ms) const {
    const double n = (lat_max_ms - latency_ms) / (lat_max_ms - lat_min_ms);
    return lat_weight * std::clamp(n, 0.0, 1.0);
  }

  /// Eqn. (7).
  double reward(double accuracy, double latency_ms) const {
    return accuracy_reward(accuracy) + latency_reward(latency_ms);
  }
};

}  // namespace cadmc::engine
