#include "engine/strategy.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace cadmc::engine {

namespace {

// Cache hit/miss/insert accounting per evaluator cache ("memo",
// "edge_latency", "mask"). `insert` counts *winning* inserts only: under
// concurrency two threads may compute the same key and race, and the loser's
// duplicate is dropped by ShardedCache — the hit+miss totals still add up.
void count_cache(const char* cache, const char* event) {
  if (!obs::enabled()) return;  // skip the name allocation on the hot path
  obs::count(std::string("cadmc.eval.cache.") + cache + "." + event);
}

}  // namespace

std::string Strategy::key() const {
  std::ostringstream ss;
  ss << cut << "|";
  for (compress::TechniqueId id : plan) ss << static_cast<int>(id);
  return ss.str();
}

RealizedStrategy realize_strategy(const nn::Model& base, const Strategy& s,
                                  const compress::TechniqueRegistry& registry,
                                  util::Rng& rng) {
  if (s.plan.size() != base.size())
    throw std::invalid_argument("realize_strategy: plan size mismatch");
  if (s.cut > base.size())
    throw std::out_of_range("realize_strategy: cut out of range");
  for (std::size_t i = s.cut; i < s.plan.size(); ++i)
    if (s.plan[i] != compress::TechniqueId::kNone)
      throw std::invalid_argument("realize_strategy: plan touches cloud side");

  nn::Model edge = base.slice(0, s.cut);
  std::vector<compress::TechniqueId> edge_plan(s.plan.begin(),
                                               s.plan.begin() + static_cast<std::ptrdiff_t>(s.cut));
  registry.apply_plan(edge_plan, edge, rng);

  RealizedStrategy out;
  out.model = nn::Model(base.input_shape());
  out.model.append(edge);
  out.cut = out.model.size();
  out.model.append(base.slice(s.cut, base.size()));
  return out;
}

StrategyEvaluator::StrategyEvaluator(const nn::Model& base,
                                     partition::PartitionEvaluator partition_eval,
                                     AccuracyModel accuracy_model,
                                     RewardConfig reward_config,
                                     std::uint64_t seed,
                                     bool include_extensions)
    : base_(&base),
      partition_eval_(std::move(partition_eval)),
      accuracy_model_(std::move(accuracy_model)),
      reward_config_(reward_config),
      registry_(/*faithful_weights=*/false, include_extensions),
      realize_seed_(seed) {
  base_boundary_bytes_ = base.boundary_bytes();
  cloud_prefix_ms_.resize(base.size() + 1, 0.0);
  nn::Shape shape = base.input_shape();
  for (std::size_t i = 0; i < base.size(); ++i) {
    cloud_prefix_ms_[i + 1] =
        cloud_prefix_ms_[i] +
        partition_eval_.cloud_model().layer_latency_ms(base.layer(i), shape);
    shape = base.layer(i).output_shape(shape);
  }
}

std::vector<std::vector<int>> StrategyEvaluator::technique_masks(
    std::size_t slice_begin, std::size_t slice_end) const {
  if (slice_begin > slice_end || slice_end > base_->size())
    throw std::out_of_range("technique_masks: bad slice");
  const std::string cache_key =
      std::to_string(slice_begin) + ":" + std::to_string(slice_end);
  if (auto cached = mask_cache_.find(cache_key)) {
    count_cache("mask", "hit");
    return *std::move(cached);
  }
  count_cache("mask", "miss");
  const nn::Model slice = base_->slice(slice_begin, slice_end);
  std::vector<std::vector<int>> masks;
  masks.reserve(slice.size());
  for (std::size_t i = 0; i < slice.size(); ++i) {
    std::vector<int> mask;
    for (compress::TechniqueId id : registry_.applicable(slice, i))
      mask.push_back(static_cast<int>(id));
    masks.push_back(std::move(mask));
  }
  if (mask_cache_.insert(cache_key, masks)) count_cache("mask", "insert");
  return masks;
}

double StrategyEvaluator::edge_slice_latency_ms(const Strategy& s,
                                                std::size_t begin,
                                                std::size_t end) const {
  std::ostringstream key;
  key << begin << ":" << end << ":";
  for (std::size_t i = begin; i < end; ++i)
    key << static_cast<int>(s.plan[i]);
  const std::string k = key.str();
  if (auto cached = edge_latency_cache_.find(k)) {
    count_cache("edge_latency", "hit");
    return *cached;
  }
  count_cache("edge_latency", "miss");

  nn::Model slice = base_->slice(begin, end);
  std::vector<compress::TechniqueId> sub_plan(
      s.plan.begin() + static_cast<std::ptrdiff_t>(begin),
      s.plan.begin() + static_cast<std::ptrdiff_t>(end));
  // The realization seed is a pure function of (base seed, cache key): the
  // same (slice, plan) always realizes identical placeholder weights, no
  // matter which call — or thread — gets here first.
  std::uint64_t seed_state = realize_seed_ ^ util::fnv1a64(k);
  util::Rng rng(util::splitmix64(seed_state));
  registry_.apply_plan(sub_plan, slice, rng);
  const double ms =
      partition_eval_.edge_model().range_latency_ms(slice, 0, slice.size());
  if (edge_latency_cache_.insert(k, ms)) count_cache("edge_latency", "insert");
  return ms;
}

double StrategyEvaluator::cloud_suffix_latency_ms(std::size_t cut) const {
  return cloud_prefix_ms_.back() - cloud_prefix_ms_[cut];
}

Evaluation StrategyEvaluator::evaluate(const Strategy& s,
                                       double bandwidth_bytes_per_ms) const {
  return evaluate_trajectory(s, {}, {bandwidth_bytes_per_ms});
}

Evaluation StrategyEvaluator::evaluate_trajectory(
    const Strategy& s, const std::vector<std::size_t>& boundaries,
    const std::vector<double>& bandwidth_per_block) const {
  if (s.plan.size() != base_->size())
    throw std::invalid_argument("evaluate: plan size mismatch");
  if (s.cut > base_->size()) throw std::out_of_range("evaluate: cut");
  if (bandwidth_per_block.size() != boundaries.size() + 1)
    throw std::invalid_argument("evaluate: one bandwidth per block required");

  std::ostringstream memo_key;
  memo_key << s.key();
  for (std::size_t b : boundaries) memo_key << "," << b;
  for (double bw : bandwidth_per_block)
    memo_key << "~" << static_cast<std::int64_t>(bw * 16.0);  // bandwidth bucket
  const std::string mk = memo_key.str();
  if (auto cached = memo_.find(mk)) {
    count_cache("memo", "hit");
    return *cached;
  }
  count_cache("memo", "miss");

  // Block j spans base layers [block_begin[j], block_end[j]).
  std::vector<std::size_t> edges{0};
  for (std::size_t b : boundaries) edges.push_back(b);
  edges.push_back(base_->size());

  Evaluation eval;
  for (std::size_t j = 0; j + 1 < edges.size(); ++j) {
    const std::size_t begin = edges[j], end = edges[j + 1];
    if (begin >= s.cut) break;  // everything from here on runs on the cloud
    eval.breakdown.edge_ms +=
        edge_slice_latency_ms(s, begin, std::min(end, s.cut));
  }
  eval.breakdown.cloud_ms = cloud_suffix_latency_ms(s.cut);
  if (s.cut < base_->size()) {
    // Transfer is priced at the bandwidth of the block containing the first
    // cloud layer (the state in force when the offload happens).
    std::size_t cut_block = bandwidth_per_block.size() - 1;
    for (std::size_t j = 0; j + 1 < edges.size(); ++j) {
      if (s.cut < edges[j + 1]) {
        cut_block = j;
        break;
      }
    }
    eval.breakdown.transfer_ms = partition_eval_.transfer_model().latency_ms(
        base_boundary_bytes_[s.cut], bandwidth_per_block[cut_block]);
  }
  eval.latency_ms = eval.breakdown.total_ms();
  eval.accuracy = accuracy_model_.estimate(s.plan);
  eval.reward = reward_config_.reward(eval.accuracy, eval.latency_ms);
  if (memo_.insert(mk, eval)) count_cache("memo", "insert");
  return eval;
}

}  // namespace cadmc::engine
