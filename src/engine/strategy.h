// Strategy representation and evaluation. A strategy on a base DNN is
//   * a partition cut (base-layer index; layers [0,cut) on the edge), and
//   * a compression plan (one Table II technique or None per base layer,
//     non-None only on the edge side — the cloud half is never compressed,
//     Alg. 1 / Alg. 3).
//
// StrategyEvaluator prices a strategy without weight-faithful realization:
// the edge slice is realized structurally (exact shapes and MACCs, random
// placeholder weights), the untouched cloud half is priced from precomputed
// base-model prefix sums, accuracy comes from the AccuracyModel, and results
// are memoized (the "memory pool storing the hash code of searched models"
// of Sec. VII-A).
//
// Thread safety: every const member is safe to call concurrently. The three
// memo caches are striped (util::ShardedCache) and every cached value —
// including the realization RNG seed — is a pure function of its cache key,
// so results are bit-identical regardless of call order or thread
// interleaving. Cache traffic is observable as cadmc.eval.cache.* counters.
#pragma once

#include <optional>
#include <string>

#include "compress/registry.h"
#include "engine/accuracy_model.h"
#include "engine/reward.h"
#include "partition/partition.h"
#include "util/sharded_cache.h"

namespace cadmc::engine {

struct Strategy {
  std::size_t cut = 0;                          // base-layer cut index
  std::vector<compress::TechniqueId> plan;      // size = base model size

  /// Memoization key.
  std::string key() const;
};

struct Evaluation {
  double accuracy = 0.0;
  double latency_ms = 0.0;
  double reward = 0.0;
  partition::LatencyBreakdown breakdown;
};

/// Weight-faithful realization of a strategy for actual execution: clones
/// the base, applies the edge-side plan, and returns the transformed model
/// together with the cut position re-expressed in transformed-layer indices.
struct RealizedStrategy {
  nn::Model model;
  std::size_t cut = 0;  // boundary index in the transformed model
};
RealizedStrategy realize_strategy(const nn::Model& base, const Strategy& s,
                                  const compress::TechniqueRegistry& registry,
                                  util::Rng& rng);

class StrategyEvaluator {
 public:
  /// `base` must outlive the evaluator. `seed` drives structural
  /// realizations (placeholder weights only — results are deterministic).
  /// `include_extensions` adds the non-Table-II techniques (Q1 quantization)
  /// to the searchable catalog.
  StrategyEvaluator(const nn::Model& base,
                    partition::PartitionEvaluator partition_eval,
                    AccuracyModel accuracy_model, RewardConfig reward_config,
                    std::uint64_t seed = 0xE7A1,
                    bool include_extensions = false);

  const nn::Model& base() const { return *base_; }
  const partition::PartitionEvaluator& partition_eval() const { return partition_eval_; }
  const AccuracyModel& accuracy_model() const { return accuracy_model_; }
  const RewardConfig& reward_config() const { return reward_config_; }
  const compress::TechniqueRegistry& registry() const { return registry_; }

  /// Technique mask for base layer i when it sits on the edge slice
  /// [slice_begin, slice_end) — applicability is judged within the slice so
  /// cross-cut rewirings (e.g. W1 pruning feeding a cloud layer) are barred.
  std::vector<std::vector<int>> technique_masks(std::size_t slice_begin,
                                                std::size_t slice_end) const;

  /// Prices a strategy under one constant bandwidth (Alg. 1 setting).
  Evaluation evaluate(const Strategy& s, double bandwidth_bytes_per_ms) const;

  /// Prices a strategy under a per-block bandwidth trajectory: block j
  /// (boundaries[j-1]..boundaries[j] in base-layer indices) executes under
  /// bandwidth_per_block[j]; the transfer at the cut is priced with the
  /// bandwidth of the block containing the cut. This is how a model-tree
  /// branch is scored across a series of network states (Sec. VI).
  Evaluation evaluate_trajectory(
      const Strategy& s, const std::vector<std::size_t>& boundaries,
      const std::vector<double>& bandwidth_per_block) const;

  /// Structural edge-slice latency for base layers [begin, end) under
  /// plan entries [begin, end). Cached.
  double edge_slice_latency_ms(const Strategy& s, std::size_t begin,
                               std::size_t end) const;

  /// Cloud latency of the untouched base suffix [cut, size).
  double cloud_suffix_latency_ms(std::size_t cut) const;

  std::size_t memo_size() const { return memo_.size(); }

 private:

  const nn::Model* base_;
  partition::PartitionEvaluator partition_eval_;
  AccuracyModel accuracy_model_;
  RewardConfig reward_config_;
  compress::TechniqueRegistry registry_;  // structural (faithful = false)
  std::vector<std::int64_t> base_boundary_bytes_;
  std::vector<double> cloud_prefix_ms_;  // prefix sums of base cloud latency
  std::uint64_t realize_seed_;  // base of the per-key realization seeds
  mutable util::ShardedCache<Evaluation> memo_;
  mutable util::ShardedCache<double> edge_latency_cache_;
  mutable util::ShardedCache<std::vector<std::vector<int>>> mask_cache_;
};

}  // namespace cadmc::engine
