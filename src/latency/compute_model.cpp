#include "latency/compute_model.h"

namespace cadmc::latency {

ComputeLatencyModel::ComputeLatencyModel(DeviceProfile profile)
    : profile_(std::move(profile)) {}

double ComputeLatencyModel::coeff_for(const nn::Layer& layer) const {
  const nn::LayerSpec spec = layer.spec();
  const bool quantized = spec.type == "conv_q8" || spec.type == "fc_q8";
  const double speedup =
      quantized && profile_.quant_speedup > 0.0 ? profile_.quant_speedup : 1.0;
  if (spec.type == "fc" || spec.type == "fc_q8")
    return profile_.fc_coeff / speedup;
  // Conv-dominated layers (plain, depthwise, fire, residual, inverted
  // residual) use the conv coefficient for their kernel size.
  return profile_.conv_coeff(spec.kernel > 0 ? spec.kernel : 3) / speedup;
}

double ComputeLatencyModel::layer_latency_ms(const nn::Layer& layer,
                                             const nn::Shape& in) const {
  const std::int64_t macc = layer.macc(in);
  if (macc == 0) return 0.0;  // pool/BN/dropout measured as negligible
  return profile_.layer_overhead_ms +
         static_cast<double>(macc) * coeff_for(layer) *
             profile_.efficiency_factor(macc);
}

double ComputeLatencyModel::range_latency_ms(const nn::Model& model,
                                             std::size_t begin,
                                             std::size_t end) const {
  nn::Shape s = model.input_shape();
  double total = 0.0;
  for (std::size_t i = 0; i < end; ++i) {
    if (i >= begin) total += layer_latency_ms(model.layer(i), s);
    s = model.layer(i).output_shape(s);
  }
  return total;
}

double ComputeLatencyModel::model_latency_ms(const nn::Model& model) const {
  return range_latency_ms(model, 0, model.size());
}

std::vector<double> ComputeLatencyModel::layer_latencies_ms(
    const nn::Model& model) const {
  std::vector<double> out;
  out.reserve(model.size());
  nn::Shape s = model.input_shape();
  for (std::size_t i = 0; i < model.size(); ++i) {
    out.push_back(layer_latency_ms(model.layer(i), s));
    s = model.layer(i).output_shape(s);
  }
  return out;
}

}  // namespace cadmc::latency
