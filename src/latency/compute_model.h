// Computational-latency estimation (Te, Tc of Eqn. 3): latency of a layer is
// its MACC count times a device/kernel-size coefficient plus a per-layer
// overhead. The paper uses this estimator during offline search because
// real-device measurement is "extremely inefficient and inaccurate".
#pragma once

#include "latency/device_profile.h"
#include "latency/macc.h"
#include "nn/model.h"

namespace cadmc::latency {

class ComputeLatencyModel {
 public:
  explicit ComputeLatencyModel(DeviceProfile profile);

  const DeviceProfile& profile() const { return profile_; }

  /// Latency of one layer given its per-sample input shape.
  double layer_latency_ms(const nn::Layer& layer, const nn::Shape& in) const;

  /// Latency of layers [begin, end) of the model.
  double range_latency_ms(const nn::Model& model, std::size_t begin,
                          std::size_t end) const;

  /// Whole-model latency.
  double model_latency_ms(const nn::Model& model) const;

  /// Per-layer latencies for the whole model.
  std::vector<double> layer_latencies_ms(const nn::Model& model) const;

 private:
  double coeff_for(const nn::Layer& layer) const;
  DeviceProfile profile_;
};

}  // namespace cadmc::latency
