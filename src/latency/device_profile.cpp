#include "latency/device_profile.h"

#include <stdexcept>

namespace cadmc::latency {

double DeviceProfile::conv_coeff(int kernel) const {
  auto it = conv_coeff_by_kernel.find(kernel);
  return it != conv_coeff_by_kernel.end() ? it->second : conv_coeff_default;
}

double DeviceProfile::efficiency_factor(std::int64_t macc) const {
  if (small_layer_boost <= 0.0) return 1.0;
  return 1.0 + small_layer_boost * small_layer_scale_macc /
                   (small_layer_scale_macc + static_cast<double>(macc));
}

DeviceProfile phone_profile() {
  DeviceProfile p;
  p.name = "phone";
  // Calibrated so VGG19 at 224x224 lands near Table I's 5734.89 ms
  // (~19.6 GMACC => ~2.9e-7 ms/MACC on 3x3 kernels), while CIFAR-scale
  // layers pay the small-layer boost (full VGG11 on 32x32 ~ 100 ms).
  p.conv_coeff_by_kernel = {{1, 3.3e-7}, {3, 2.9e-7}, {5, 2.8e-7},
                            {7, 2.7e-7}, {11, 2.6e-7}};
  p.conv_coeff_default = 2.9e-7;
  p.fc_coeff = 4.0e-7;
  p.layer_overhead_ms = 0.05;
  p.small_layer_boost = 2.0;
  p.small_layer_scale_macc = 2.0e7;
  p.quant_speedup = 1.8;
  return p;
}

DeviceProfile tx2_profile() {
  DeviceProfile p;
  p.name = "tx2";
  // Edge GPU: ~4-5x faster than the phone on large workloads, but small
  // CIFAR-scale kernels underutilize it badly (large boost), matching the
  // paper's TX2 latencies sitting close to the phone's.
  p.conv_coeff_by_kernel = {{1, 6.5e-8}, {3, 5.0e-8}, {5, 4.8e-8},
                            {7, 4.6e-8}, {11, 4.5e-8}};
  p.conv_coeff_default = 5.0e-8;
  p.fc_coeff = 8.0e-8;
  p.layer_overhead_ms = 0.15;  // GPU launch overhead
  p.small_layer_boost = 18.0;
  p.small_layer_scale_macc = 3.0e7;
  p.quant_speedup = 1.1;
  return p;
}

DeviceProfile cloud_profile() {
  DeviceProfile p;
  p.name = "cloud";
  p.conv_coeff_by_kernel = {{1, 5.0e-9}, {3, 3.0e-9}, {5, 2.9e-9},
                            {7, 2.8e-9}, {11, 2.7e-9}};
  p.conv_coeff_default = 3.0e-9;
  p.fc_coeff = 6.0e-9;
  p.layer_overhead_ms = 0.08;
  p.small_layer_boost = 10.0;
  p.small_layer_scale_macc = 3.0e7;
  return p;
}

DeviceProfile profile_by_name(const std::string& name) {
  if (name == "phone") return phone_profile();
  if (name == "tx2") return tx2_profile();
  if (name == "cloud") return cloud_profile();
  throw std::invalid_argument("profile_by_name: unknown device " + name);
}

}  // namespace cadmc::latency
