// Device latency profiles. The paper observes (Sec. V-B, Fig. 5) that
// computational latency is linear in MACCs with per-kernel-size coefficients
// for Conv layers on CPU platforms, while GPU platforms deviate because of
// parallel execution — modelled here as a per-layer launch overhead on top
// of a (much smaller) linear term.
//
// The three presets correspond to the paper's testbed: Xiaomi MI 6X
// (phone, CPU), NVIDIA Jetson TX2 (edge GPU), and a GTX 1080 Ti server
// (cloud). Coefficients are calibrated against Table I (see bench/table1).
#pragma once

#include <map>
#include <string>

namespace cadmc::latency {

struct DeviceProfile {
  std::string name;
  /// Conv-layer ms-per-MACC, keyed by kernel size; falls back to
  /// `conv_coeff_default` for unlisted kernels (Fig. 5: coefficients differ
  /// by kernel size on CPU platforms).
  std::map<int, double> conv_coeff_by_kernel;
  double conv_coeff_default = 0.0;
  /// FC-layer ms-per-MACC (a single coefficient per device — Sec. V-B).
  double fc_coeff = 0.0;
  /// Per-layer fixed overhead in ms (kernel-launch cost; dominant on GPUs
  /// for small layers, which is why GPU latency looks non-linear).
  double layer_overhead_ms = 0.0;
  /// Small-layer inefficiency: layers with few MACCs underutilize the
  /// device (poor parallelism/cache behaviour), so the effective
  /// ms-per-MACC is inflated by
  ///   1 + small_layer_boost * scale / (scale + macc).
  /// Large layers (macc >> scale) approach the asymptotic coefficient —
  /// which is what Table I's 224x224 workloads measure — while CIFAR-scale
  /// layers pay the boost. GPUs have a much larger boost than CPUs.
  double small_layer_boost = 0.0;
  double small_layer_scale_macc = 3.0e7;
  /// Throughput multiplier for 8-bit-quantized layers (extension): CPU
  /// integer kernels run ~1.8x faster; GPUs see little benefit at fp16+.
  double quant_speedup = 1.0;

  double conv_coeff(int kernel) const;
  /// The effective per-MACC multiplier for a layer of the given size.
  double efficiency_factor(std::int64_t macc) const;
};

/// Xiaomi MI 6X (CPU, ~3.4 GMACC/s on 3x3 convs).
DeviceProfile phone_profile();
/// NVIDIA Jetson TX2 (edge GPU).
DeviceProfile tx2_profile();
/// Cloud server: 2x Xeon E5-2630 + GTX 1080 Ti.
DeviceProfile cloud_profile();

DeviceProfile profile_by_name(const std::string& name);

}  // namespace cadmc::latency
