#include "latency/energy_model.h"

#include <stdexcept>

namespace cadmc::latency {

EnergyProfile phone_energy_profile() {
  EnergyProfile p;
  p.name = "phone";
  p.nj_per_macc = 0.8;
  p.radio_tx_mw = 1800.0;
  p.idle_mw = 250.0;
  return p;
}

EnergyProfile tx2_energy_profile() {
  EnergyProfile p;
  p.name = "tx2";
  p.nj_per_macc = 0.5;     // GPU inference is more energy-efficient per op
  p.radio_tx_mw = 1200.0;  // tethered radio
  p.idle_mw = 1500.0;      // board-level idle draw
  return p;
}

EnergyModel::EnergyModel(EnergyProfile profile) : profile_(std::move(profile)) {
  if (profile_.nj_per_macc < 0.0 || profile_.radio_tx_mw < 0.0 ||
      profile_.idle_mw < 0.0)
    throw std::invalid_argument("EnergyModel: negative coefficients");
}

double EnergyModel::inference_mj(std::int64_t edge_macc, double transfer_ms,
                                 double wait_ms) const {
  if (edge_macc < 0 || transfer_ms < 0.0 || wait_ms < 0.0)
    throw std::invalid_argument("EnergyModel: negative inputs");
  const double compute_mj =
      static_cast<double>(edge_macc) * profile_.nj_per_macc * 1e-6;
  // mW * ms = microjoules; /1000 -> millijoules.
  const double radio_mj = profile_.radio_tx_mw * transfer_ms * 1e-3;
  const double idle_mj = profile_.idle_mw * wait_ms * 1e-3;
  return compute_mj + radio_mj + idle_mj;
}

double EnergyModel::strategy_mj(const nn::Model& model, std::size_t cut,
                                double transfer_ms, double cloud_ms) const {
  if (cut > model.size()) throw std::out_of_range("EnergyModel: bad cut");
  const auto maccs = model.layer_maccs();
  std::int64_t edge_macc = 0;
  for (std::size_t i = 0; i < cut; ++i) edge_macc += maccs[i];
  return inference_mj(edge_macc, transfer_ms, transfer_ms + cloud_ms);
}

}  // namespace cadmc::latency
