// Energy model (extension — see DESIGN.md). The paper motivates compression
// partly by "the energy consumption on edge devices" (Sec. I) but evaluates
// only latency/accuracy; this module adds the standard first-order mobile
// energy accounting so strategies can also be compared on Joules:
//   E = e_macc * MACCs_on_edge                  (compute)
//     + p_radio_tx * transfer_seconds           (radio while uploading)
//     + p_idle * (cloud+transfer wait seconds)  (device awake, waiting)
// Coefficients follow published smartphone measurements (~0.5-1 nJ/MACC on
// CPU inference, ~1-2.5 W radio TX power, hundreds of mW awake-idle).
#pragma once

#include <string>

#include "latency/compute_model.h"
#include "nn/model.h"

namespace cadmc::latency {

struct EnergyProfile {
  std::string name;
  double nj_per_macc = 0.8;        // edge compute energy
  double radio_tx_mw = 1800.0;     // radio power while transmitting
  double idle_mw = 250.0;          // awake-idle power while waiting
};

/// Xiaomi MI 6X-class phone.
EnergyProfile phone_energy_profile();
/// Jetson TX2 (wall-powered but thermally limited; larger budget).
EnergyProfile tx2_energy_profile();

class EnergyModel {
 public:
  explicit EnergyModel(EnergyProfile profile);

  const EnergyProfile& profile() const { return profile_; }

  /// Millijoules for one inference: `edge_macc` multiply-accumulates run on
  /// the device, `transfer_ms` of radio transmission and `wait_ms` of
  /// awake-idle waiting (transfer + cloud time).
  double inference_mj(std::int64_t edge_macc, double transfer_ms,
                      double wait_ms) const;

  /// Convenience: energy of running layers [0, cut) of `model` on the edge
  /// with the given transfer/cloud times.
  double strategy_mj(const nn::Model& model, std::size_t cut,
                     double transfer_ms, double cloud_ms) const;

 private:
  EnergyProfile profile_;
};

}  // namespace cadmc::latency
