#include "latency/macc.h"

#include <stdexcept>

namespace cadmc::latency {

std::int64_t MaccProfile::range_macc(std::size_t begin, std::size_t end) const {
  if (begin > end || end >= prefix_maccs.size())
    throw std::out_of_range("MaccProfile::range_macc");
  return prefix_maccs[end] - prefix_maccs[begin];
}

MaccProfile profile_model(const nn::Model& model) {
  MaccProfile profile;
  profile.layer_maccs = model.layer_maccs();
  profile.boundary_bytes = model.boundary_bytes();
  profile.prefix_maccs.resize(profile.layer_maccs.size() + 1, 0);
  for (std::size_t i = 0; i < profile.layer_maccs.size(); ++i)
    profile.prefix_maccs[i + 1] = profile.prefix_maccs[i] + profile.layer_maccs[i];
  profile.total_macc = profile.prefix_maccs.back();
  return profile;
}

}  // namespace cadmc::latency
