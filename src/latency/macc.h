// MACC profiling of a model (Eqns. 4-5): per-layer multiply-accumulate
// counts, prefix sums for evaluating partition points, and the byte size of
// the feature tensor at every cut boundary (the S of Eqn. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"

namespace cadmc::latency {

struct MaccProfile {
  std::vector<std::int64_t> layer_maccs;     // size = model.size()
  std::vector<std::int64_t> prefix_maccs;    // prefix[i] = sum of layers [0, i); size = size()+1
  std::vector<std::int64_t> boundary_bytes;  // feature bytes at boundary i; size = size()+1
  std::int64_t total_macc = 0;

  /// MACCs of layers [begin, end).
  std::int64_t range_macc(std::size_t begin, std::size_t end) const;
};

MaccProfile profile_model(const nn::Model& model);

}  // namespace cadmc::latency
