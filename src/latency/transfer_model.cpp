#include "latency/transfer_model.h"

#include <stdexcept>
#include <vector>

#include "util/stats.h"

namespace cadmc::latency {

double mbps_to_bytes_per_ms(double mbps) {
  // 1 Mbps = 1e6 bits/s = 125000 bytes/s = 125 bytes/ms.
  return mbps * 125.0;
}

double bytes_per_ms_to_mbps(double bytes_per_ms) { return bytes_per_ms / 125.0; }

double TransferModel::latency_ms(std::int64_t bytes,
                                 double bandwidth_bytes_per_ms) const {
  if (bytes <= 0) return 0.0;
  if (bandwidth_bytes_per_ms <= 0.0)
    throw std::invalid_argument("TransferModel: non-positive bandwidth");
  return rtt_ms +
         (1.0 + size_coeff) * static_cast<double>(bytes) / bandwidth_bytes_per_ms;
}

TransferFit fit_transfer_model(std::span<const TransferObservation> obs) {
  if (obs.size() < 2)
    throw std::invalid_argument("fit_transfer_model: need >= 2 observations");
  std::vector<double> xs, ys;
  xs.reserve(obs.size());
  ys.reserve(obs.size());
  for (const auto& o : obs) {
    xs.push_back(static_cast<double>(o.bytes) / o.bandwidth_bytes_per_ms);
    ys.push_back(o.latency_ms);
  }
  const util::LinearFit fit = util::fit_linear(xs, ys);
  TransferFit out;
  out.model.rtt_ms = fit.intercept;
  out.model.size_coeff = fit.slope - 1.0;
  out.r2 = fit.r2;
  return out;
}

}  // namespace cadmc::latency
