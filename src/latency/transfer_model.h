// Transfer-latency estimation (Tt of Eqn. 6):
//   Tt = f(S | W) + S / W,
// where S is the payload size in bytes, W the bandwidth, and f a linear
// function of S given W (first-packet propagation). We parameterize
//   f(S | W) = rtt_ms + size_coeff * S / W,
// so Tt = rtt_ms + (1 + size_coeff) * S / W, and provide a least-squares
// fitter that recovers the parameters from (S, W, Tt) observations — the
// experiment behind the right half of Fig. 5.
#pragma once

#include <cstdint>
#include <span>

namespace cadmc::latency {

/// Bandwidths are carried in bytes/ms internally; Mbps at the API surface.
double mbps_to_bytes_per_ms(double mbps);
double bytes_per_ms_to_mbps(double bytes_per_ms);

struct TransferModel {
  double rtt_ms = 12.0;      // first-packet propagation base
  double size_coeff = 0.18;  // extra propagation proportional to S/W

  /// Estimated transfer latency (Eqn. 6).
  double latency_ms(std::int64_t bytes, double bandwidth_bytes_per_ms) const;
};

struct TransferObservation {
  std::int64_t bytes = 0;
  double bandwidth_bytes_per_ms = 0.0;
  double latency_ms = 0.0;
};

struct TransferFit {
  TransferModel model;
  double r2 = 0.0;
};

/// Fits (rtt_ms, size_coeff) to observations by OLS on the regressor S/W.
TransferFit fit_transfer_model(std::span<const TransferObservation> obs);

}  // namespace cadmc::latency
