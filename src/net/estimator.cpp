#include "net/estimator.h"

#include <algorithm>
#include <stdexcept>

namespace cadmc::net {

BandwidthEstimator::BandwidthEstimator(const BandwidthTrace& trace,
                                       double staleness_ms, double alpha)
    : trace_(trace), staleness_ms_(staleness_ms), ema_(alpha) {
  if (staleness_ms < 0.0)
    throw std::invalid_argument("BandwidthEstimator: negative staleness");
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("BandwidthEstimator: alpha out of (0,1]");
}

double BandwidthEstimator::estimate_at(double t_ms) {
  // Blackout samples are zero; clamp anything non-positive before feeding
  // the EWMA so a dead window cannot decay the estimate to a bandwidth that
  // divides to infinity downstream (TransferModel rejects bw <= 0).
  const double measured =
      std::max(0.0, trace_.at(std::max(0.0, t_ms - staleness_ms_)));
  return std::max(ema_.update(measured), kMinBandwidth);
}

}  // namespace cadmc::net
