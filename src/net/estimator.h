// Runtime bandwidth estimation. The online decision engine cannot see the
// true instantaneous bandwidth — it sees a smoothed, slightly stale estimate
// (EWMA over periodic measurements). The estimation error is one source of
// the emulation-vs-field gap the paper reports (Sec. VII-B3: "a coarse
// estimation of network conditions").
#pragma once

#include "net/trace.h"
#include "util/stats.h"

namespace cadmc::net {

class BandwidthEstimator {
 public:
  /// Estimates never drop below this floor (bytes/ms, ~8 kbps): blackout
  /// samples are zero and an EWMA fed zeros decays toward a bandwidth that
  /// downstream latency models would divide by. The floor keeps estimates
  /// finite-latency while still signalling "effectively dead" to policies.
  static constexpr double kMinBandwidth = 1e-3;

  /// `staleness_ms`: measurements reflect the link this long ago.
  /// `alpha`: EWMA smoothing weight of the newest measurement.
  BandwidthEstimator(const BandwidthTrace& trace, double staleness_ms,
                     double alpha);

  /// Feeds the measurement available at time t and returns the estimate.
  double estimate_at(double t_ms);

  /// True instantaneous bandwidth (for oracle comparisons).
  double truth_at(double t_ms) const { return trace_.at(t_ms); }

  void reset() { ema_.reset(); }

 private:
  const BandwidthTrace& trace_;
  double staleness_ms_;
  util::Ema ema_;
};

}  // namespace cadmc::net
