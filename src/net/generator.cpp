#include "net/generator.h"

#include <cmath>
#include <stdexcept>

#include "latency/transfer_model.h"
#include "util/rng.h"

namespace cadmc::net {

BandwidthTrace generate_trace(const TraceGeneratorParams& params,
                              double duration_ms, std::uint64_t seed) {
  if (duration_ms <= 0.0 || params.dt_ms <= 0.0 || params.mean_mbps <= 0.0)
    throw std::invalid_argument("generate_trace: invalid parameters");
  util::Rng rng(seed);
  const std::size_t n =
      static_cast<std::size_t>(std::ceil(duration_ms / params.dt_ms));
  const double dt_s = params.dt_ms / 1000.0;
  const double log_mean = std::log(params.mean_mbps);

  std::vector<double> samples;
  samples.reserve(n);
  double log_bw = log_mean;
  bool in_fade = false;
  for (std::size_t i = 0; i < n; ++i) {
    // OU step in log space: d(log W) = theta (mu - log W) dt + sigma dB.
    const double theta = params.reversion_per_s;
    log_bw += theta * (log_mean - log_bw) * dt_s +
              params.volatility * std::sqrt(dt_s) * rng.normal();
    // Markov fade regime.
    if (in_fade) {
      if (rng.bernoulli(params.fade_exit_prob_per_s * dt_s)) in_fade = false;
    } else {
      if (rng.bernoulli(params.fade_prob_per_s * dt_s)) in_fade = true;
    }
    double mbps = std::exp(log_bw);
    if (in_fade) mbps *= params.fade_depth;
    mbps = std::max(mbps, 0.05);  // floor: the link never fully dies
    samples.push_back(latency::mbps_to_bytes_per_ms(mbps));
  }
  return BandwidthTrace(params.dt_ms, std::move(samples));
}

}  // namespace cadmc::net
