// Synthetic bandwidth-trace generation (DESIGN.md substitution for the
// paper's field-collected traces). The generator is a mean-reverting
// Ornstein–Uhlenbeck process in log-bandwidth space modulated by a two-state
// Markov fade regime, which reproduces the qualitative features of Fig. 1:
// second-scale drastic variation, mobility-dependent volatility, and deep
// fades under weak signal.
#pragma once

#include <cstdint>

#include "net/trace.h"

namespace cadmc::net {

struct TraceGeneratorParams {
  double mean_mbps = 8.0;        // long-run bandwidth mean
  double volatility = 0.3;       // OU noise scale (log space, per sqrt(s))
  double reversion_per_s = 1.0;  // OU mean-reversion rate
  double fade_prob_per_s = 0.05; // chance of entering a deep-fade regime
  double fade_exit_prob_per_s = 0.5;
  double fade_depth = 0.2;       // bandwidth multiplier while in a fade
  double dt_ms = 100.0;          // sample interval
};

BandwidthTrace generate_trace(const TraceGeneratorParams& params,
                              double duration_ms, std::uint64_t seed);

}  // namespace cadmc::net
