#include "net/scenes.h"

#include <stdexcept>

namespace cadmc::net {

namespace {
Scene make_scene(std::string name, double mean_mbps, double volatility,
                 double fade_prob, double fade_depth, double rtt_ms) {
  Scene s;
  s.name = std::move(name);
  s.trace.mean_mbps = mean_mbps;
  s.trace.volatility = volatility;
  s.trace.fade_prob_per_s = fade_prob;
  s.trace.fade_depth = fade_depth;
  s.rtt_ms = rtt_ms;
  return s;
}
}  // namespace

std::vector<Scene> all_scenes() {
  // Mean bandwidth / volatility / fades tuned per environment class:
  //  * weak signal  -> low mean, frequent deep fades,
  //  * quick motion -> high volatility (Fig. 1 left),
  //  * static       -> low volatility,
  //  * 4G has a higher RTT than WiFi.
  // Uplink bandwidths (features flow edge -> cloud), hence the low means.
  return {
      make_scene("4G (weak) indoor", 0.6, 0.45, 0.30, 0.25, 25.0),
      make_scene("4G indoor static", 2.5, 0.12, 0.02, 0.50, 18.0),
      make_scene("4G indoor slow", 1.8, 0.30, 0.08, 0.40, 20.0),
      make_scene("4G outdoor quick", 3.5, 0.75, 0.25, 0.20, 22.0),
      make_scene("WiFi (weak) indoor", 1.2, 0.50, 0.25, 0.25, 9.0),
      make_scene("WiFi (weak) outdoor", 1.0, 0.60, 0.30, 0.20, 10.0),
      make_scene("WiFi outdoor slow", 4.0, 0.40, 0.10, 0.35, 8.0),
  };
}

Scene scene_by_name(const std::string& name) {
  for (const Scene& s : all_scenes())
    if (s.name == name) return s;
  throw std::invalid_argument("scene_by_name: unknown scene " + name);
}

std::vector<EvalContext> paper_contexts() {
  std::vector<EvalContext> out;
  const char* vgg_phone[] = {"4G (weak) indoor",   "4G indoor static",
                             "4G indoor slow",     "4G outdoor quick",
                             "WiFi (weak) indoor", "WiFi (weak) outdoor",
                             "WiFi outdoor slow"};
  for (const char* env : vgg_phone)
    out.push_back({"VGG11", "phone", scene_by_name(env)});
  const char* vgg_tx2[] = {"4G (weak) indoor", "4G indoor static",
                           "WiFi (weak) indoor"};
  for (const char* env : vgg_tx2)
    out.push_back({"VGG11", "tx2", scene_by_name(env)});
  const char* alex_phone[] = {"4G indoor static", "WiFi (weak) indoor",
                              "WiFi (weak) outdoor", "WiFi outdoor slow"};
  for (const char* env : alex_phone)
    out.push_back({"AlexNet", "phone", scene_by_name(env)});
  return out;
}

}  // namespace cadmc::net
