// The real-life network scenes of Sec. VII: 4G/WiFi, weak/normal signal,
// static/slow/quick mobility. Each scene carries trace-generator parameters
// and the link RTT used by the transfer-latency model.
#pragma once

#include <string>
#include <vector>

#include "net/generator.h"

namespace cadmc::net {

struct Scene {
  std::string name;            // e.g. "4G (weak) indoor"
  TraceGeneratorParams trace;  // calibrated generator parameters
  double rtt_ms = 15.0;        // first-packet propagation base for this link
};

/// The seven distinct phone/TX2 environments used across Tables III-V.
std::vector<Scene> all_scenes();

/// Throws std::invalid_argument for an unknown name.
Scene scene_by_name(const std::string& name);

/// The (model, device, environment) rows of Tables III-V.
struct EvalContext {
  std::string model;   // "VGG11" or "AlexNet"
  std::string device;  // "phone" or "tx2"
  Scene scene;
};

/// The 10 VGG11 rows (7 phone + 3 TX2) followed by the 4 AlexNet rows,
/// in the paper's table order.
std::vector<EvalContext> paper_contexts();

}  // namespace cadmc::net
