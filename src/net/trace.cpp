#include "net/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.h"
#include "util/stats.h"

namespace cadmc::net {

BandwidthTrace::BandwidthTrace(double dt_ms, std::vector<double> samples)
    : dt_ms_(dt_ms), samples_(std::move(samples)) {
  if (dt_ms <= 0.0) throw std::invalid_argument("BandwidthTrace: dt_ms <= 0");
  // Zero is a legal sample (link blackout — see runtime::FaultInjector);
  // negative/NaN bandwidth is not.
  for (double s : samples_)
    if (!(s >= 0.0)) throw std::invalid_argument("BandwidthTrace: negative sample");
}

double BandwidthTrace::at(double t_ms) const {
  if (samples_.empty())
    throw std::logic_error("BandwidthTrace::at: empty trace");
  const double idx = t_ms / dt_ms_;
  const std::int64_t i = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::floor(idx)), 0,
      static_cast<std::int64_t>(samples_.size()) - 1);
  return samples_[static_cast<std::size_t>(i)];
}

double BandwidthTrace::quantile(double q) const {
  if (samples_.empty())
    throw std::logic_error("BandwidthTrace::quantile: empty trace");
  return util::quantile(samples_, q);
}

double BandwidthTrace::mean() const { return util::mean(samples_); }

int BandwidthTrace::classify(double bandwidth, int k) const {
  if (k <= 1) return 0;
  for (int fork = 1; fork < k; ++fork) {
    const double threshold = quantile(static_cast<double>(fork) / k);
    if (bandwidth < threshold) return fork - 1;
  }
  return k - 1;
}

bool BandwidthTrace::save_csv(const std::string& path) const {
  util::CsvWriter csv({"t_ms", "bandwidth_bytes_per_ms"});
  for (std::size_t i = 0; i < samples_.size(); ++i)
    csv.add_row(std::vector<double>{dt_ms_ * static_cast<double>(i), samples_[i]});
  return csv.save(path);
}

BandwidthTrace BandwidthTrace::load_csv(const std::string& path) {
  std::string text;
  if (!util::read_file(path, text))
    throw std::runtime_error("BandwidthTrace::load_csv: cannot read " + path);
  const auto rows = util::parse_csv(text);
  if (rows.size() < 3)
    throw std::runtime_error("BandwidthTrace::load_csv: too few rows");
  std::vector<double> samples;
  double dt = 0.0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() < 2)
      throw std::runtime_error("BandwidthTrace::load_csv: malformed row");
    const double t = std::stod(rows[i][0]);
    if (i == 2) dt = t - std::stod(rows[1][0]);
    samples.push_back(std::stod(rows[i][1]));
  }
  if (dt <= 0.0) throw std::runtime_error("BandwidthTrace::load_csv: bad dt");
  return BandwidthTrace(dt, std::move(samples));
}

}  // namespace cadmc::net
