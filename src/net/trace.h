// Bandwidth traces: a fixed-interval time series of bandwidth samples, the
// substrate for Fig. 1 ("real-world network context"), the emulation runs of
// Table IV, and the token-bucket shaper of the field tests (Table V).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cadmc::net {

class BandwidthTrace {
 public:
  BandwidthTrace() = default;
  /// `samples` are bandwidths in bytes/ms at multiples of `dt_ms`. A zero
  /// sample is a link blackout (the fault layer splices these in); negative
  /// samples are rejected.
  BandwidthTrace(double dt_ms, std::vector<double> samples);

  double dt_ms() const { return dt_ms_; }
  std::size_t sample_count() const { return samples_.size(); }
  double duration_ms() const {
    return dt_ms_ * static_cast<double>(samples_.size());
  }
  const std::vector<double>& samples() const { return samples_; }

  /// Bandwidth at time t (zero-order hold; clamps to the trace ends).
  double at(double t_ms) const;

  /// Bandwidth quantile over the whole trace. The paper classifies network
  /// state into K = 2 conditions using the lower and upper quartiles.
  double quantile(double q) const;
  double mean() const;

  /// 'good'/'poor' classification threshold = median by default.
  /// Returns the fork index in [0, k) for a bandwidth value given the trace's
  /// k-quantile thresholds (k-1 internal quantiles split the range evenly).
  int classify(double bandwidth, int k) const;

  bool save_csv(const std::string& path) const;
  /// Throws std::runtime_error on missing/malformed file.
  static BandwidthTrace load_csv(const std::string& path);

 private:
  double dt_ms_ = 100.0;
  std::vector<double> samples_;
};

}  // namespace cadmc::net
