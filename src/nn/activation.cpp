#include "nn/activation.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace cadmc::nn {

Tensor ReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  return tensor::relu(input, cap_);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  return tensor::relu_backward(cached_input_, grad_out, cap_);
}

LayerSpec ReLU::spec() const {
  return LayerSpec{cap_ > 0.0f ? "relu6" : "relu", 0, 0, 0, 0};
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>(*this);
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  if (input.rank() == 2) return input;
  const int n = input.dim(0);
  const int d = static_cast<int>(input.numel() / n);
  return input.reshaped({n, d});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

LayerSpec Flatten::spec() const { return LayerSpec{"flatten", 0, 0, 0, 0}; }

Shape Flatten::output_shape(const Shape& in) const {
  int d = 1;
  for (int v : in) d *= v;
  return {d};
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(*this);
}

Dropout::Dropout(double drop_prob, std::uint64_t seed)
    : drop_prob_(drop_prob), rng_(seed) {
  if (drop_prob < 0.0 || drop_prob >= 1.0)
    throw std::invalid_argument("Dropout: p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || drop_prob_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - drop_prob_));
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const bool keep = !rng_.bernoulli(drop_prob_);
    mask_.at(i) = keep ? scale : 0.0f;
    out.at(i) *= mask_.at(i);
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor grad_in = grad_out;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) grad_in.at(i) *= mask_.at(i);
  return grad_in;
}

LayerSpec Dropout::spec() const { return LayerSpec{"dropout", 0, 0, 0, 0}; }

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(*this);
}

}  // namespace cadmc::nn
