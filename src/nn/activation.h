// Parameter-free layers: ReLU, ReLU6, Flatten, Dropout.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace cadmc::nn {

class ReLU : public Layer {
 public:
  /// cap <= 0 means plain ReLU; cap = 6 gives ReLU6 (MobileNetV2).
  explicit ReLU(float cap = 0.0f) : cap_(cap) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::unique_ptr<Layer> clone() const override;

 private:
  float cap_;
  Tensor cached_input_;
};

/// [N,C,H,W] -> [N,C*H*W]; no-op on already-flat [N,D] inputs.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_shape_;
};

/// Inverted dropout; identity at inference time.
class Dropout : public Layer {
 public:
  Dropout(double drop_prob, std::uint64_t seed);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override { return in; }
  std::unique_ptr<Layer> clone() const override;

 private:
  double drop_prob_;
  util::Rng rng_;
  Tensor mask_;
};

}  // namespace cadmc::nn
