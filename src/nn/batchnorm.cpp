#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace cadmc::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
  gamma_ = Tensor::ones({channels});
  beta_ = Tensor({channels});
  gamma_grad_ = Tensor({channels});
  beta_grad_ = Tensor({channels});
  running_mean_ = Tensor({channels});
  running_var_ = Tensor::ones({channels});
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_)
    throw std::invalid_argument("BatchNorm2d: expected [N,C,H,W] input");
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t per_channel = static_cast<std::int64_t>(n) * h * w;
  Tensor out(input.shape());

  if (training) {
    cached_input_ = input;
    cached_mean_.assign(static_cast<std::size_t>(channels_), 0.0f);
    cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
    cached_norm_ = Tensor(input.shape());
    for (int c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (int b = 0; b < n; ++b)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x) mean += input(b, c, y, x);
      mean /= static_cast<double>(per_channel);
      double var = 0.0;
      for (int b = 0; b < n; ++b)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x) {
            const double d = input(b, c, y, x) - mean;
            var += d * d;
          }
      var /= static_cast<double>(per_channel);
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
      cached_mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
      cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
      running_mean_(c) = (1.0f - momentum_) * running_mean_(c) +
                         momentum_ * static_cast<float>(mean);
      running_var_(c) = (1.0f - momentum_) * running_var_(c) +
                        momentum_ * static_cast<float>(var);
      for (int b = 0; b < n; ++b)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x) {
            const float norm =
                (input(b, c, y, x) - static_cast<float>(mean)) * inv_std;
            cached_norm_(b, c, y, x) = norm;
            out(b, c, y, x) = gamma_(c) * norm + beta_(c);
          }
    }
  } else {
    for (int c = 0; c < channels_; ++c) {
      const float inv_std = 1.0f / std::sqrt(running_var_(c) + eps_);
      for (int b = 0; b < n; ++b)
        for (int y = 0; y < h; ++y)
          for (int x = 0; x < w; ++x)
            out(b, c, y, x) =
                gamma_(c) * (input(b, c, y, x) - running_mean_(c)) * inv_std +
                beta_(c);
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0), h = grad_out.dim(2), w = grad_out.dim(3);
  const double m = static_cast<double>(n) * h * w;
  Tensor grad_in(grad_out.shape());
  for (int c = 0; c < channels_; ++c) {
    double sum_dy = 0.0, sum_dy_norm = 0.0;
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          const double dy = grad_out(b, c, y, x);
          sum_dy += dy;
          sum_dy_norm += dy * cached_norm_(b, c, y, x);
        }
    gamma_grad_(c) += static_cast<float>(sum_dy_norm);
    beta_grad_(c) += static_cast<float>(sum_dy);
    const double g = gamma_(c);
    const double inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          const double dy = grad_out(b, c, y, x);
          const double norm = cached_norm_(b, c, y, x);
          grad_in(b, c, y, x) = static_cast<float>(
              g * inv_std * (dy - sum_dy / m - norm * sum_dy_norm / m));
        }
  }
  return grad_in;
}

LayerSpec BatchNorm2d::spec() const {
  return LayerSpec{"bn", 0, 0, 0, channels_};
}

Shape BatchNorm2d::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != channels_)
    throw std::invalid_argument("BatchNorm2d: incompatible input shape");
  return in;
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  return std::make_unique<BatchNorm2d>(*this);
}

}  // namespace cadmc::nn
