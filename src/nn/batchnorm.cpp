#include "nn/batchnorm.h"

#include <stdexcept>
#include <utility>

#include "tensor/ops.h"

namespace cadmc::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels <= 0");
  gamma_ = Tensor::ones({channels});
  beta_ = Tensor({channels});
  gamma_grad_ = Tensor({channels});
  beta_grad_ = Tensor({channels});
  running_mean_ = Tensor({channels});
  running_var_ = Tensor::ones({channels});
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_)
    throw std::invalid_argument("BatchNorm2d: expected [N,C,H,W] input");
  if (training) {
    auto fwd = tensor::batchnorm2d_train(input, gamma_, beta_, eps_);
    cached_norm_ = std::move(fwd.norm);
    cached_inv_std_ = std::move(fwd.inv_std);
    for (int c = 0; c < channels_; ++c) {
      running_mean_(c) = (1.0f - momentum_) * running_mean_(c) +
                         momentum_ * fwd.mean[static_cast<std::size_t>(c)];
      running_var_(c) = (1.0f - momentum_) * running_var_(c) +
                        momentum_ * fwd.var[static_cast<std::size_t>(c)];
    }
    return std::move(fwd.output);
  }
  return tensor::batchnorm2d_infer(input, gamma_, beta_, running_mean_,
                                   running_var_, eps_);
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  auto grads =
      tensor::batchnorm2d_backward(grad_out, cached_norm_, gamma_, cached_inv_std_);
  for (int c = 0; c < channels_; ++c) {
    gamma_grad_(c) += grads.gamma(c);
    beta_grad_(c) += grads.beta(c);
  }
  return std::move(grads.input);
}

LayerSpec BatchNorm2d::spec() const {
  return LayerSpec{"bn", 0, 0, 0, channels_};
}

Shape BatchNorm2d::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != channels_)
    throw std::invalid_argument("BatchNorm2d: incompatible input shape");
  return in;
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  return std::make_unique<BatchNorm2d>(*this);
}

}  // namespace cadmc::nn
