// 2-D batch normalization with running statistics. MACC cost is negligible
// per the paper's measurements (Sec. V-B), so macc() stays 0.
#pragma once

#include "nn/layer.h"

namespace cadmc::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&gamma_grad_, &beta_grad_}; }

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int channels() const { return channels_; }

 private:
  int channels_;
  float momentum_, eps_;
  Tensor gamma_, beta_, gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;
  // Caches for backward: the normalized activations and per-channel 1/std.
  // The raw input is never retained — backward only needs norm and inv_std.
  Tensor cached_norm_;
  std::vector<float> cached_inv_std_;
};

}  // namespace cadmc::nn
