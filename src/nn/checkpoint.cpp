#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.h"

namespace cadmc::nn {

namespace {
constexpr std::uint32_t kMagic = 0x504B4443;  // "CDKP"
}

std::vector<std::uint8_t> encode_weights(Model& model) {
  std::vector<std::uint8_t> out;
  const auto params = model.params();
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&magic),
             reinterpret_cast<const std::uint8_t*>(&magic) + 4);
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&count),
             reinterpret_cast<const std::uint8_t*>(&count) + 4);
  for (const tensor::Tensor* p : params) tensor::encode_tensor(*p, out);
  return out;
}

bool save_weights(Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto buffer = encode_weights(model);
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  return static_cast<bool>(out);
}

void decode_weights(Model& model, const std::vector<std::uint8_t>& buffer) {
  if (buffer.size() < 8)
    throw std::runtime_error("decode_weights: truncated header");
  std::uint32_t magic = 0, count = 0;
  std::memcpy(&magic, buffer.data(), 4);
  std::memcpy(&count, buffer.data() + 4, 4);
  if (magic != kMagic) throw std::runtime_error("decode_weights: bad magic");
  const auto params = model.params();
  if (count != params.size())
    throw std::runtime_error("decode_weights: parameter count mismatch (" +
                             std::to_string(count) + " vs " +
                             std::to_string(params.size()) + ")");
  std::size_t offset = 8;
  for (tensor::Tensor* p : params) {
    tensor::Tensor loaded = tensor::decode_tensor(buffer, offset);
    if (loaded.shape() != p->shape())
      throw std::runtime_error("decode_weights: tensor shape mismatch");
    *p = std::move(loaded);
  }
  if (offset != buffer.size())
    throw std::runtime_error("decode_weights: trailing bytes");
}

void load_weights(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  std::vector<std::uint8_t> buffer((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  decode_weights(model, buffer);
}

}  // namespace cadmc::nn
