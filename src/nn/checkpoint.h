// Weight checkpointing: save/load every parameter tensor of a model. The
// architecture itself is NOT serialized — the loader validates that the
// target model's parameter shapes match the checkpoint (the offline phase
// rebuilds architectures from strategies; only the trained weights need to
// move between processes).
#pragma once

#include <string>

#include "nn/model.h"

namespace cadmc::nn {

/// Serializes all parameters (in params() order) to a buffer/file.
std::vector<std::uint8_t> encode_weights(Model& model);
bool save_weights(Model& model, const std::string& path);

/// Loads parameters into `model`. Throws std::runtime_error when the
/// checkpoint is malformed or any tensor shape mismatches.
void decode_weights(Model& model, const std::vector<std::uint8_t>& buffer);
void load_weights(Model& model, const std::string& path);

}  // namespace cadmc::nn
