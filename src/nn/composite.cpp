#include "nn/composite.h"

#include <stdexcept>

#include "nn/activation.h"

namespace cadmc::nn {

namespace {
/// Concatenates two [N,C,H,W] tensors along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b) {
  const int n = a.dim(0), ca = a.dim(1), cb = b.dim(1), h = a.dim(2), w = a.dim(3);
  Tensor out({n, ca + cb, h, w});
  for (int bi = 0; bi < n; ++bi) {
    for (int c = 0; c < ca; ++c)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) out(bi, c, y, x) = a(bi, c, y, x);
    for (int c = 0; c < cb; ++c)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) out(bi, ca + c, y, x) = b(bi, c, y, x);
  }
  return out;
}

/// Splits channel-axis gradient back into the two concat inputs.
std::pair<Tensor, Tensor> split_channels(const Tensor& g, int ca) {
  const int n = g.dim(0), c = g.dim(1), h = g.dim(2), w = g.dim(3);
  Tensor ga({n, ca, h, w});
  Tensor gb({n, c - ca, h, w});
  for (int bi = 0; bi < n; ++bi) {
    for (int cc = 0; cc < ca; ++cc)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) ga(bi, cc, y, x) = g(bi, cc, y, x);
    for (int cc = ca; cc < c; ++cc)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) gb(bi, cc - ca, y, x) = g(bi, cc, y, x);
  }
  return {std::move(ga), std::move(gb)};
}

std::vector<Tensor*> collect_params(std::vector<std::unique_ptr<Layer>>& layers) {
  std::vector<Tensor*> out;
  for (auto& l : layers)
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> collect_grads(std::vector<std::unique_ptr<Layer>>& layers) {
  std::vector<Tensor*> out;
  for (auto& l : layers)
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}
}  // namespace

// ---------------------------------------------------------------- Sequential

SequentialBlock::SequentialBlock(std::string name,
                                 std::vector<std::unique_ptr<Layer>> layers,
                                 LayerSpec spec)
    : name_(std::move(name)), layers_(std::move(layers)), spec_(std::move(spec)) {
  if (layers_.empty())
    throw std::invalid_argument("SequentialBlock: no layers");
}

SequentialBlock::SequentialBlock(const SequentialBlock& other)
    : Layer(other), name_(other.name_), spec_(other.spec_) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Tensor SequentialBlock::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, training);
  return x;
}

Tensor SequentialBlock::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Tensor*> SequentialBlock::params() { return collect_params(layers_); }
std::vector<Tensor*> SequentialBlock::grads() { return collect_grads(layers_); }

Shape SequentialBlock::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

std::int64_t SequentialBlock::macc(const Shape& in) const {
  Shape s = in;
  std::int64_t total = 0;
  for (const auto& l : layers_) {
    total += l->macc(s);
    s = l->output_shape(s);
  }
  return total;
}

std::unique_ptr<Layer> SequentialBlock::clone() const {
  return std::make_unique<SequentialBlock>(*this);
}

// ----------------------------------------------------------------------- Fire

Fire::Fire(int in_channels, int squeeze_channels, int expand_channels,
           util::Rng& rng)
    : in_channels_(in_channels),
      squeeze_channels_(squeeze_channels),
      expand_channels_(expand_channels) {
  squeeze_ = std::make_unique<Conv2d>(in_channels, squeeze_channels, 1, 1, 0, rng);
  expand1_ = std::make_unique<Conv2d>(squeeze_channels, expand_channels, 1, 1, 0, rng);
  expand3_ = std::make_unique<Conv2d>(squeeze_channels, expand_channels, 3, 1, 1, rng);
}

Fire::Fire(const Fire& other)
    : Layer(other),
      in_channels_(other.in_channels_),
      squeeze_channels_(other.squeeze_channels_),
      expand_channels_(other.expand_channels_),
      squeeze_(std::make_unique<Conv2d>(*other.squeeze_)),
      expand1_(std::make_unique<Conv2d>(*other.expand1_)),
      expand3_(std::make_unique<Conv2d>(*other.expand3_)) {}

Tensor Fire::forward(const Tensor& input, bool training) {
  Tensor s = squeeze_->forward(input, training);
  s.clamp_min_(0.0f);  // ReLU on the squeeze output
  if (training) squeeze_out_ = s;
  Tensor e1 = expand1_->forward(s, training);
  Tensor e3 = expand3_->forward(s, training);
  if (training) {
    expand1_out_ = e1;
    expand3_out_ = e3;
  }
  Tensor out = concat_channels(e1, e3);
  out.clamp_min_(0.0f);  // ReLU on the concatenated expand output
  return out;
}

Tensor Fire::backward(const Tensor& grad_out) {
  // Through the final ReLU: gradient passes where pre-activation > 0.
  Tensor g = grad_out;
  const Tensor pre = concat_channels(expand1_out_, expand3_out_);
  for (std::int64_t i = 0; i < g.numel(); ++i)
    if (pre.at(i) <= 0.0f) g.at(i) = 0.0f;
  auto [g1, g3] = split_channels(g, expand_channels_);
  Tensor gs = expand1_->backward(g1);
  gs.add_(expand3_->backward(g3));
  // Through the squeeze ReLU.
  for (std::int64_t i = 0; i < gs.numel(); ++i)
    if (squeeze_out_.at(i) <= 0.0f) gs.at(i) = 0.0f;
  return squeeze_->backward(gs);
}

std::vector<Tensor*> Fire::params() {
  std::vector<Tensor*> out;
  for (Layer* l : {static_cast<Layer*>(squeeze_.get()),
                   static_cast<Layer*>(expand1_.get()),
                   static_cast<Layer*>(expand3_.get())})
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Fire::grads() {
  std::vector<Tensor*> out;
  for (Layer* l : {static_cast<Layer*>(squeeze_.get()),
                   static_cast<Layer*>(expand1_.get()),
                   static_cast<Layer*>(expand3_.get())})
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}

LayerSpec Fire::spec() const {
  return LayerSpec{"fire", 3, 1, 1, out_channels()};
}

Shape Fire::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_channels_)
    throw std::invalid_argument("Fire: incompatible input shape");
  return {out_channels(), in[1], in[2]};
}

std::int64_t Fire::macc(const Shape& in) const {
  Shape s = squeeze_->output_shape(in);
  return squeeze_->macc(in) + expand1_->macc(s) + expand3_->macc(s);
}

std::unique_ptr<Layer> Fire::clone() const {
  return std::make_unique<Fire>(*this);
}

// ----------------------------------------------------------- InvertedResidual

InvertedResidual::InvertedResidual(int in_channels, int out_channels,
                                   int expansion, int stride, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      expansion_(expansion),
      stride_(stride),
      use_skip_(stride == 1 && in_channels == out_channels) {
  const int mid = in_channels * expansion;
  if (expansion > 1) {
    chain_.push_back(std::make_unique<Conv2d>(in_channels, mid, 1, 1, 0, rng));
    chain_.push_back(std::make_unique<ReLU>(6.0f));
  }
  chain_.push_back(std::make_unique<Conv2d>(mid, mid, 3, stride, 1, rng, mid));
  chain_.push_back(std::make_unique<ReLU>(6.0f));
  chain_.push_back(std::make_unique<Conv2d>(mid, out_channels, 1, 1, 0, rng));
}

InvertedResidual::InvertedResidual(const InvertedResidual& other)
    : Layer(other),
      in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      expansion_(other.expansion_),
      stride_(other.stride_),
      use_skip_(other.use_skip_) {
  for (const auto& l : other.chain_) chain_.push_back(l->clone());
}

Tensor InvertedResidual::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& l : chain_) x = l->forward(x, training);
  if (use_skip_) x.add_(input);
  return x;
}

Tensor InvertedResidual::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) g = (*it)->backward(g);
  if (use_skip_) g.add_(grad_out);
  return g;
}

std::vector<Tensor*> InvertedResidual::params() { return collect_params(chain_); }
std::vector<Tensor*> InvertedResidual::grads() { return collect_grads(chain_); }

LayerSpec InvertedResidual::spec() const {
  return LayerSpec{"inv_res", 3, stride_, 1, out_channels_};
}

Shape InvertedResidual::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_channels_)
    throw std::invalid_argument("InvertedResidual: incompatible input shape");
  Shape s = in;
  for (const auto& l : chain_) s = l->output_shape(s);
  return s;
}

std::int64_t InvertedResidual::macc(const Shape& in) const {
  Shape s = in;
  std::int64_t total = 0;
  for (const auto& l : chain_) {
    total += l->macc(s);
    s = l->output_shape(s);
  }
  return total;
}

std::unique_ptr<Layer> InvertedResidual::clone() const {
  return std::make_unique<InvertedResidual>(*this);
}

// --------------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(int in_channels, int mid_channels,
                             int out_channels, int stride, bool bottleneck,
                             util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      bottleneck_(bottleneck) {
  if (bottleneck) {
    main_.push_back(std::make_unique<Conv2d>(in_channels, mid_channels, 1, 1, 0, rng));
    main_.push_back(std::make_unique<ReLU>());
    main_.push_back(std::make_unique<Conv2d>(mid_channels, mid_channels, 3, stride, 1, rng));
    main_.push_back(std::make_unique<ReLU>());
    main_.push_back(std::make_unique<Conv2d>(mid_channels, out_channels, 1, 1, 0, rng));
  } else {
    main_.push_back(std::make_unique<Conv2d>(in_channels, mid_channels, 3, stride, 1, rng));
    main_.push_back(std::make_unique<ReLU>());
    main_.push_back(std::make_unique<Conv2d>(mid_channels, out_channels, 3, 1, 1, rng));
  }
  if (stride != 1 || in_channels != out_channels)
    projection_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
}

ResidualBlock::ResidualBlock(const ResidualBlock& other)
    : Layer(other),
      in_channels_(other.in_channels_),
      out_channels_(other.out_channels_),
      stride_(other.stride_),
      bottleneck_(other.bottleneck_) {
  for (const auto& l : other.main_) main_.push_back(l->clone());
  if (other.projection_)
    projection_ = std::make_unique<Conv2d>(*other.projection_);
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor x = input;
  for (auto& l : main_) x = l->forward(x, training);
  Tensor skip = projection_ ? projection_->forward(input, training) : input;
  x.add_(skip);
  if (training) cached_sum_ = x;
  x.clamp_min_(0.0f);  // final ReLU
  return x;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::int64_t i = 0; i < g.numel(); ++i)
    if (cached_sum_.at(i) <= 0.0f) g.at(i) = 0.0f;
  Tensor g_main = g;
  for (auto it = main_.rbegin(); it != main_.rend(); ++it)
    g_main = (*it)->backward(g_main);
  Tensor g_skip = projection_ ? projection_->backward(g) : g;
  g_main.add_(g_skip);
  return g_main;
}

std::vector<Tensor*> ResidualBlock::params() {
  auto out = collect_params(main_);
  if (projection_)
    for (Tensor* p : projection_->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> ResidualBlock::grads() {
  auto out = collect_grads(main_);
  if (projection_)
    for (Tensor* g : projection_->grads()) out.push_back(g);
  return out;
}

LayerSpec ResidualBlock::spec() const {
  return LayerSpec{bottleneck_ ? "res_bneck" : "res_basic", 3, stride_, 1,
                   out_channels_};
}

Shape ResidualBlock::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_channels_)
    throw std::invalid_argument("ResidualBlock: incompatible input shape");
  Shape s = in;
  for (const auto& l : main_) s = l->output_shape(s);
  return s;
}

std::int64_t ResidualBlock::macc(const Shape& in) const {
  Shape s = in;
  std::int64_t total = 0;
  for (const auto& l : main_) {
    total += l->macc(s);
    s = l->output_shape(s);
  }
  if (projection_) total += projection_->macc(in);
  return total;
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  return std::make_unique<ResidualBlock>(*this);
}

}  // namespace cadmc::nn
