// Composite layers. These realize the structural compression targets of
// Table II and the residual blocks used by the ResNet factory:
//  * SequentialBlock — a named sub-chain of layers that acts as one Layer
//    (used for the MobileNet depthwise-separable replacement and the
//    low-rank FC factorizations),
//  * Fire — SqueezeNet's squeeze/expand module (C3),
//  * InvertedResidual — MobileNetV2's block (C2),
//  * ResidualBlock — basic/bottleneck residual units for ResNet-50/101/152.
#pragma once

#include "nn/conv.h"
#include "nn/layer.h"

namespace cadmc::nn {

class SequentialBlock : public Layer {
 public:
  SequentialBlock(std::string name, std::vector<std::unique_ptr<Layer>> layers,
                  LayerSpec spec);

  SequentialBlock(const SequentialBlock& other);
  SequentialBlock& operator=(const SequentialBlock&) = delete;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;

  LayerSpec spec() const override { return spec_; }
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& in) const override;
  std::int64_t macc(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
  LayerSpec spec_;
};

/// SqueezeNet Fire module: 1x1 squeeze then concatenated 1x1/3x3 expands.
class Fire : public Layer {
 public:
  Fire(int in_channels, int squeeze_channels, int expand_channels,
       util::Rng& rng);
  Fire(const Fire& other);
  Fire& operator=(const Fire&) = delete;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;

  LayerSpec spec() const override;
  std::string name() const override { return "fire"; }
  Shape output_shape(const Shape& in) const override;
  std::int64_t macc(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int out_channels() const { return 2 * expand_channels_; }

 private:
  int in_channels_, squeeze_channels_, expand_channels_;
  std::unique_ptr<Conv2d> squeeze_, expand1_, expand3_;
  Tensor squeeze_out_;       // post-ReLU squeeze activation (cached)
  Tensor expand1_out_, expand3_out_;  // pre-ReLU expand outputs (cached)
};

/// MobileNetV2 inverted residual: expand 1x1 -> depthwise 3x3 -> project 1x1,
/// with a skip connection when the shapes allow it.
class InvertedResidual : public Layer {
 public:
  InvertedResidual(int in_channels, int out_channels, int expansion,
                   int stride, util::Rng& rng);
  InvertedResidual(const InvertedResidual& other);
  InvertedResidual& operator=(const InvertedResidual&) = delete;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;

  LayerSpec spec() const override;
  std::string name() const override { return "inv_res"; }
  Shape output_shape(const Shape& in) const override;
  std::int64_t macc(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  bool has_skip() const { return use_skip_; }

 private:
  int in_channels_, out_channels_, expansion_, stride_;
  bool use_skip_;
  std::vector<std::unique_ptr<Layer>> chain_;  // pw + relu6 + dw + relu6 + pw
};

/// ResNet residual unit. Bottleneck form (1x1 -> 3x3 -> 1x1) when
/// `bottleneck` is true; basic (3x3 -> 3x3) otherwise. A 1x1 projection is
/// added on the skip path when shape changes.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int in_channels, int mid_channels, int out_channels,
                int stride, bool bottleneck, util::Rng& rng);
  ResidualBlock(const ResidualBlock& other);
  ResidualBlock& operator=(const ResidualBlock&) = delete;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;

  LayerSpec spec() const override;
  std::string name() const override { return bottleneck_ ? "res_bneck" : "res_basic"; }
  Shape output_shape(const Shape& in) const override;
  std::int64_t macc(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  /// Internal structure, exposed so the partition layer can expand residual
  /// units into explicit DAG nodes (main path, skip path, merge).
  const std::vector<std::unique_ptr<Layer>>& main_path() const { return main_; }
  const Conv2d* projection() const { return projection_.get(); }

 private:
  int in_channels_, out_channels_, stride_;
  bool bottleneck_;
  std::vector<std::unique_ptr<Layer>> main_;   // conv/relu chain
  std::unique_ptr<Conv2d> projection_;         // null when identity skip
  Tensor cached_input_, cached_sum_;           // for backward through the add+relu
};

}  // namespace cadmc::nn
