#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cadmc::nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, util::Rng& rng, int groups, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      groups_(groups),
      has_bias_(bias) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      padding < 0 || groups <= 0)
    throw std::invalid_argument("Conv2d: invalid hyper-parameters");
  if (in_channels % groups != 0 || out_channels % groups != 0)
    throw std::invalid_argument("Conv2d: channels not divisible by groups");
  const int cig = in_channels / groups;
  const float fan_in = static_cast<float>(cig * kernel * kernel);
  // Kaiming-He initialization for ReLU networks.
  weight_ = Tensor::randn({out_channels, cig, kernel, kernel}, rng,
                          std::sqrt(2.0f / fan_in));
  weight_grad_ = Tensor(weight_.shape());
  if (has_bias_) {
    bias_ = Tensor({out_channels});
    bias_grad_ = Tensor({out_channels});
  }
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (training) {
    cached_input_ = input;
  } else {
    // An inference forward must not leave a stale activation behind: a later
    // backward() would silently differentiate against the wrong input.
    cached_input_ = Tensor();
  }
  has_cached_input_ = training;
  tensor::Conv2dSpec cspec{stride_, padding_, groups_};
  return tensor::conv2d(input, weight_, bias_, cspec);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (!has_cached_input_)
    throw std::logic_error(
        "Conv2d::backward: no cached input — call forward(training=true) "
        "before backward");
  tensor::Conv2dSpec cspec{stride_, padding_, groups_};
  auto grads =
      tensor::conv2d_backward(cached_input_, weight_, has_bias_, grad_out, cspec);
  weight_grad_.add_(grads.weight);
  if (has_bias_) bias_grad_.add_(grads.bias);
  return std::move(grads.input);
}

std::vector<Tensor*> Conv2d::params() {
  std::vector<Tensor*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

std::vector<Tensor*> Conv2d::grads() {
  std::vector<Tensor*> out{&weight_grad_};
  if (has_bias_) out.push_back(&bias_grad_);
  return out;
}

LayerSpec Conv2d::spec() const {
  return LayerSpec{"conv", kernel_, stride_, padding_, out_channels_};
}

std::string Conv2d::name() const {
  if (groups_ == in_channels_ && groups_ > 1) return "conv_dw";
  if (groups_ > 1) return "conv_g" + std::to_string(groups_);
  return "conv";
}

Shape Conv2d::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_channels_)
    throw std::invalid_argument("Conv2d: incompatible input shape");
  return {out_channels_,
          tensor::conv_out_size(in[1], kernel_, stride_, padding_),
          tensor::conv_out_size(in[2], kernel_, stride_, padding_)};
}

std::int64_t Conv2d::macc(const Shape& in) const {
  // Eqn. (4): K*K*Cin*Cout*Hout*Wout, divided by groups for grouped convs.
  const Shape out = output_shape(in);
  return static_cast<std::int64_t>(kernel_) * kernel_ *
         (in_channels_ / groups_) * out_channels_ * out[1] * out[2];
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(*this);
}

void Conv2d::zero_filters(const std::vector<int>& filter_indices) {
  // Filter f is one contiguous [cig*k*k] row of weight_; operate on row
  // spans instead of per-element at() calls.
  const std::size_t per_filter =
      static_cast<std::size_t>(weight_.numel() / out_channels_);
  float* w = weight_.data().data();
  for (int f : filter_indices) {
    if (f < 0 || f >= out_channels_)
      throw std::out_of_range("Conv2d::zero_filters: bad index");
    std::fill_n(w + static_cast<std::size_t>(f) * per_filter, per_filter,
                0.0f);
    if (has_bias_) bias_.at(f) = 0.0f;
  }
}

void Conv2d::keep_filters(const std::vector<int>& filter_indices) {
  if (filter_indices.empty())
    throw std::invalid_argument("Conv2d::keep_filters: empty set");
  const int cig = in_channels_ / groups_;
  if (groups_ != 1)
    throw std::invalid_argument("Conv2d::keep_filters: grouped conv unsupported");
  const int new_out = static_cast<int>(filter_indices.size());
  Tensor new_weight({new_out, cig, kernel_, kernel_});
  Tensor new_bias = has_bias_ ? Tensor({new_out}) : Tensor();
  const std::size_t per_filter =
      static_cast<std::size_t>(cig) * kernel_ * kernel_;
  const float* src = weight_.data().data();
  float* dst = new_weight.data().data();
  for (int nf = 0; nf < new_out; ++nf) {
    const int f = filter_indices[static_cast<std::size_t>(nf)];
    if (f < 0 || f >= out_channels_)
      throw std::out_of_range("Conv2d::keep_filters: bad index");
    std::copy_n(src + static_cast<std::size_t>(f) * per_filter, per_filter,
                dst + static_cast<std::size_t>(nf) * per_filter);
    if (has_bias_) new_bias(nf) = bias_(f);
  }
  out_channels_ = new_out;
  weight_ = std::move(new_weight);
  weight_grad_ = Tensor(weight_.shape());
  if (has_bias_) {
    bias_ = std::move(new_bias);
    bias_grad_ = Tensor({new_out});
  }
}

void Conv2d::keep_input_channels(const std::vector<int>& channel_indices) {
  if (groups_ != 1)
    throw std::invalid_argument("Conv2d::keep_input_channels: grouped conv unsupported");
  const int new_in = static_cast<int>(channel_indices.size());
  if (new_in <= 0) throw std::invalid_argument("Conv2d::keep_input_channels: empty");
  Tensor new_weight({out_channels_, new_in, kernel_, kernel_});
  // Per (filter, channel) the k*k patch is contiguous in both tensors.
  const std::size_t ksq = static_cast<std::size_t>(kernel_) * kernel_;
  const float* src = weight_.data().data();
  float* dst = new_weight.data().data();
  for (int f = 0; f < out_channels_; ++f)
    for (int nc = 0; nc < new_in; ++nc) {
      const int c = channel_indices[static_cast<std::size_t>(nc)];
      if (c < 0 || c >= in_channels_)
        throw std::out_of_range("Conv2d::keep_input_channels: bad index");
      std::copy_n(
          src + (static_cast<std::size_t>(f) * in_channels_ + c) * ksq, ksq,
          dst + (static_cast<std::size_t>(f) * new_in + nc) * ksq);
    }
  in_channels_ = new_in;
  weight_ = std::move(new_weight);
  weight_grad_ = Tensor(weight_.shape());
}

std::vector<double> Conv2d::filter_saliency() const {
  std::vector<double> saliency(static_cast<std::size_t>(out_channels_), 0.0);
  const std::size_t per_filter =
      static_cast<std::size_t>(weight_.numel() / out_channels_);
  const float* w = weight_.data().data();
  for (int f = 0; f < out_channels_; ++f) {
    const float* row = w + static_cast<std::size_t>(f) * per_filter;
    double s = 0.0;
    for (std::size_t i = 0; i < per_filter; ++i) s += std::fabs(row[i]);
    saliency[static_cast<std::size_t>(f)] = s / static_cast<double>(per_filter);
  }
  return saliency;
}

}  // namespace cadmc::nn
