// 2-D convolution layer (optionally grouped / depthwise) with Kaiming
// initialization and full backward pass.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace cadmc::nn {

class Conv2d : public Layer {
 public:
  /// groups == in_channels gives a depthwise convolution (MobileNet C1).
  Conv2d(int in_channels, int out_channels, int kernel, int stride,
         int padding, util::Rng& rng, int groups = 1, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;

  LayerSpec spec() const override;
  std::string name() const override;
  Shape output_shape(const Shape& in) const override;
  std::int64_t macc(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }
  int groups() const { return groups_; }

  Tensor& weight() { return weight_; }
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  /// Zeroes the given output filters (used by W1 filter pruning).
  void zero_filters(const std::vector<int>& filter_indices);

  /// Keeps only the listed output filters, shrinking the layer.
  void keep_filters(const std::vector<int>& filter_indices);

  /// Shrinks input channels to the listed subset (to follow a pruned
  /// predecessor layer).
  void keep_input_channels(const std::vector<int>& channel_indices);

  /// Mean absolute weight per output filter — the W1 pruning saliency.
  std::vector<double> filter_saliency() const;

 private:
  int in_channels_, out_channels_, kernel_, stride_, padding_, groups_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
  bool has_cached_input_ = false;
};

}  // namespace cadmc::nn
