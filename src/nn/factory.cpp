#include "nn/factory.h"

#include <stdexcept>

#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "util/rng.h"

namespace cadmc::nn {

namespace {
void add_conv_relu(Model& m, int in_c, int out_c, int k, int s, int p,
                   util::Rng& rng) {
  m.add(std::make_unique<Conv2d>(in_c, out_c, k, s, p, rng));
  m.add(std::make_unique<ReLU>());
}
}  // namespace

Model make_vgg11(int num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({3, 32, 32});
  // Feature extractor: VGG-A configuration (64, M, 128, M, 256x2, M,
  // 512x2, M, 512x2, M) on 32x32 inputs -> 512x1x1.
  add_conv_relu(m, 3, 64, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 16
  add_conv_relu(m, 64, 128, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 8
  add_conv_relu(m, 128, 256, 3, 1, 1, rng);
  add_conv_relu(m, 256, 256, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 4
  add_conv_relu(m, 256, 512, 3, 1, 1, rng);
  add_conv_relu(m, 512, 512, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 2
  add_conv_relu(m, 512, 512, 3, 1, 1, rng);
  add_conv_relu(m, 512, 512, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 1
  // Classifier (CIFAR-scale widths, as in common VGG11-on-CIFAR setups).
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(512, 512, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dropout>(0.5, seed ^ 0xD0));
  m.add(std::make_unique<Linear>(512, 512, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dropout>(0.5, seed ^ 0xD1));
  m.add(std::make_unique<Linear>(512, num_classes, rng));
  return m;
}

Model make_alexnet(int num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({3, 32, 32});
  // CIFAR-scale AlexNet.
  add_conv_relu(m, 3, 64, 3, 2, 1, rng);   // 16
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 8
  add_conv_relu(m, 64, 192, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 4
  add_conv_relu(m, 192, 384, 3, 1, 1, rng);
  add_conv_relu(m, 384, 256, 3, 1, 1, rng);
  add_conv_relu(m, 256, 256, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 2
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Linear>(256 * 2 * 2, 1024, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dropout>(0.5, seed ^ 0xA0));
  m.add(std::make_unique<Linear>(1024, 1024, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(1024, num_classes, rng));
  return m;
}

Model make_vgg19_imagenet(int num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({3, 224, 224});
  const int cfg[][2] = {// {out_channels, repeat}
                        {64, 2}, {128, 2}, {256, 4}, {512, 4}, {512, 4}};
  int in_c = 3;
  for (const auto& [out_c, repeat] : cfg) {
    for (int r = 0; r < repeat; ++r) {
      add_conv_relu(m, in_c, out_c, 3, 1, 1, rng);
      in_c = out_c;
    }
    m.add(std::make_unique<MaxPool2d>(2, 2));
  }
  m.add(std::make_unique<Flatten>());  // 512*7*7
  m.add(std::make_unique<Linear>(512 * 7 * 7, 4096, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(4096, 4096, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(4096, num_classes, rng));
  return m;
}

Model make_resnet_imagenet(int depth, int num_classes, std::uint64_t seed) {
  int stage_blocks[4];
  switch (depth) {
    case 50: stage_blocks[0] = 3; stage_blocks[1] = 4; stage_blocks[2] = 6; stage_blocks[3] = 3; break;
    case 101: stage_blocks[0] = 3; stage_blocks[1] = 4; stage_blocks[2] = 23; stage_blocks[3] = 3; break;
    case 152: stage_blocks[0] = 3; stage_blocks[1] = 8; stage_blocks[2] = 36; stage_blocks[3] = 3; break;
    default:
      throw std::invalid_argument("make_resnet_imagenet: depth must be 50/101/152");
  }
  util::Rng rng(seed);
  Model m({3, 224, 224});
  m.add(std::make_unique<Conv2d>(3, 64, 7, 2, 3, rng));  // 112
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>(3, 2));  // 55 (no padding in our pool)
  int in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const int mid = 64 << stage;
    const int out = mid * 4;
    for (int b = 0; b < stage_blocks[stage]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      m.add(std::make_unique<ResidualBlock>(in_c, mid, out, stride,
                                            /*bottleneck=*/true, rng));
      in_c = out;
    }
  }
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(in_c, num_classes, rng));
  return m;
}

namespace {
void add_depthwise_separable(Model& m, int in_c, int out_c, int stride,
                             util::Rng& rng) {
  m.add(std::make_unique<Conv2d>(in_c, in_c, 3, stride, 1, rng, in_c));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Conv2d>(in_c, out_c, 1, 1, 0, rng));
  m.add(std::make_unique<ReLU>());
}
}  // namespace

Model make_mobilenet(int num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({3, 32, 32});
  add_conv_relu(m, 3, 32, 3, 1, 1, rng);
  add_depthwise_separable(m, 32, 64, 1, rng);
  add_depthwise_separable(m, 64, 128, 2, rng);   // 16
  add_depthwise_separable(m, 128, 128, 1, rng);
  add_depthwise_separable(m, 128, 256, 2, rng);  // 8
  add_depthwise_separable(m, 256, 256, 1, rng);
  add_depthwise_separable(m, 256, 512, 2, rng);  // 4
  add_depthwise_separable(m, 512, 512, 1, rng);
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(512, num_classes, rng));
  return m;
}

Model make_squeezenet(int num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({3, 32, 32});
  add_conv_relu(m, 3, 96, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 16
  m.add(std::make_unique<Fire>(96, 16, 64, rng));    // -> 128
  m.add(std::make_unique<Fire>(128, 16, 64, rng));   // -> 128
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 8
  m.add(std::make_unique<Fire>(128, 32, 128, rng));  // -> 256
  m.add(std::make_unique<Fire>(256, 32, 128, rng));  // -> 256
  m.add(std::make_unique<MaxPool2d>(2, 2));  // 4
  m.add(std::make_unique<Conv2d>(256, num_classes, 1, 1, 0, rng));
  m.add(std::make_unique<GlobalAvgPool>());
  return m;
}

Model make_tiny_cnn(int num_classes, int image_size, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({3, image_size, image_size});
  add_conv_relu(m, 3, 8, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));
  add_conv_relu(m, 8, 16, 3, 1, 1, rng);
  m.add(std::make_unique<MaxPool2d>(2, 2));
  m.add(std::make_unique<Flatten>());
  const int flat = 16 * (image_size / 4) * (image_size / 4);
  m.add(std::make_unique<Linear>(flat, 64, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(64, num_classes, rng));
  return m;
}

Model make_mlp(int in_features, int hidden, int num_classes,
               std::uint64_t seed) {
  util::Rng rng(seed);
  Model m({in_features});
  m.add(std::make_unique<Linear>(in_features, hidden, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(hidden, num_classes, rng));
  return m;
}

std::vector<std::size_t> block_boundaries(const Model& model,
                                          std::size_t num_blocks) {
  if (num_blocks == 0) throw std::invalid_argument("block_boundaries: zero blocks");
  const auto maccs = model.layer_maccs();
  std::int64_t total = 0;
  for (std::int64_t v : maccs) total += v;
  std::vector<std::size_t> boundaries;
  if (num_blocks <= 1 || model.size() <= 1) return boundaries;
  std::int64_t cumulative = 0;
  std::size_t next_block = 1;
  for (std::size_t i = 0; i + 1 < model.size() && next_block < num_blocks; ++i) {
    cumulative += maccs[i];
    const std::int64_t target =
        total * static_cast<std::int64_t>(next_block) /
        static_cast<std::int64_t>(num_blocks);
    if (cumulative >= target) {
      boundaries.push_back(i + 1);
      ++next_block;
    }
  }
  // Guarantee exactly num_blocks - 1 strictly increasing boundaries.
  while (boundaries.size() < num_blocks - 1) {
    const std::size_t last = boundaries.empty() ? 0 : boundaries.back();
    if (last + 1 >= model.size()) break;
    boundaries.push_back(last + 1);
  }
  return boundaries;
}

}  // namespace cadmc::nn
