// Base-model factory. Builds the architectures the paper evaluates:
//  * VGG11 and AlexNet on 3x32x32 inputs (CIFAR10-scale) — the two base DNNs
//    of Sec. VII,
//  * VGG19 and ResNet-50/101/152 on 3x224x224 inputs — used by Table I's
//    on-device latency measurements,
//  * miniature CNN/MLP models used by tests and RealEval examples.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"

namespace cadmc::nn {

Model make_vgg11(int num_classes = 10, std::uint64_t seed = 1);
Model make_alexnet(int num_classes = 10, std::uint64_t seed = 2);
Model make_vgg19_imagenet(int num_classes = 1000, std::uint64_t seed = 3);
/// depth must be 50, 101 or 152.
Model make_resnet_imagenet(int depth, int num_classes = 1000,
                           std::uint64_t seed = 4);

/// MobileNet(v1)-style CIFAR model: stem conv + depthwise-separable stacks.
/// Already-compact base DNN — used to study how the engine behaves when the
/// base model leaves little room for further compression (generalization
/// beyond the paper's VGG11/AlexNet).
Model make_mobilenet(int num_classes = 10, std::uint64_t seed = 12);

/// SqueezeNet-style CIFAR model built from Fire modules.
Model make_squeezenet(int num_classes = 10, std::uint64_t seed = 13);

/// Small CNN for real end-to-end training in tests/examples.
/// input {3, image_size, image_size}.
Model make_tiny_cnn(int num_classes = 10, int image_size = 16,
                    std::uint64_t seed = 5);
/// Small MLP on flat {in} inputs.
Model make_mlp(int in_features, int hidden, int num_classes,
               std::uint64_t seed = 6);

/// Splits the model into `num_blocks` contiguous blocks of roughly equal
/// MACC cost. Returns the boundary layer indices: boundaries[i] is the first
/// layer of block i+1; implicit boundaries 0 and size() frame the blocks.
/// Used to slice the base DNN into the N blocks of the model tree (Alg. 3).
std::vector<std::size_t> block_boundaries(const Model& model,
                                          std::size_t num_blocks);

}  // namespace cadmc::nn
