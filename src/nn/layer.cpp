#include "nn/layer.h"

#include <sstream>

namespace cadmc::nn {

std::string LayerSpec::to_string() const {
  std::ostringstream ss;
  ss << type << "," << kernel << "," << stride << "," << padding << ","
     << out_channels;
  return ss.str();
}

void Layer::zero_grad() {
  for (Tensor* g : grads()) g->fill(0.0f);
}

std::int64_t Layer::param_count() {
  std::int64_t n = 0;
  for (Tensor* p : params()) n += p->numel();
  return n;
}

std::unique_ptr<Layer> clone_layer(const Layer& layer) { return layer.clone(); }

}  // namespace cadmc::nn
