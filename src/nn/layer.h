// Layer abstraction for the DNN substrate. Every layer
//  * runs a real forward pass on Tensors (and a backward pass for training /
//    knowledge distillation),
//  * can describe itself as the hyper-parameter string of Eqn. (1),
//    x_i = (l, k, s, p, n), which is what the LSTM controllers consume,
//  * reports its per-sample MACC count (Eqns. 4-5) for the latency model, and
//  * reports its parameter count and per-sample output shape so the engine
//    can compute model size and feature-transfer size at any cut point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cadmc::nn {

using tensor::Shape;
using tensor::Tensor;

/// Eqn. (1): a layer as a tuple of hyper-parameters (l, k, s, p, n).
struct LayerSpec {
  std::string type;      // l: layer type ("conv", "fc", "relu", ...)
  int kernel = 0;        // k
  int stride = 0;        // s
  int padding = 0;       // p
  int out_channels = 0;  // n

  /// "conv,3,1,1,64" — the string form fed to the controllers (Fig. 6).
  std::string to_string() const;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer on a batched input. When `training` is true the layer
  /// caches whatever it needs for backward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates gradients; accumulates parameter gradients internally.
  /// Must be preceded by forward(..., /*training=*/true).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters and their gradient buffers (parallel vectors).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }
  void zero_grad();
  std::int64_t param_count();

  virtual LayerSpec spec() const = 0;
  virtual std::string name() const { return spec().type; }

  /// Per-sample output shape (no batch dim): {c,h,w} for image tensors,
  /// {d} for flat feature vectors. Throws on incompatible input shapes.
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Per-sample multiply-accumulate operations (Eqns. 4-5). Layers the paper
  /// measures as negligible (pooling, batch-norm, dropout) return 0.
  virtual std::int64_t macc(const Shape& in) const {
    (void)in;
    return 0;
  }

  virtual std::unique_ptr<Layer> clone() const = 0;

 protected:
  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;
};

std::unique_ptr<Layer> clone_layer(const Layer& layer);

}  // namespace cadmc::nn
