#include "nn/linear.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "tensor/ops.h"

namespace cadmc::nn {

Linear::Linear(int in_features, int out_features, util::Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("Linear: invalid dimensions");
  weight_ = Tensor::randn({out_features, in_features}, rng,
                          std::sqrt(2.0f / static_cast<float>(in_features)));
  weight_grad_ = Tensor(weight_.shape());
  if (has_bias_) {
    bias_ = Tensor({out_features});
    bias_grad_ = Tensor({out_features});
  }
}

Tensor Linear::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_features_)
    throw std::invalid_argument("Linear: expected [N," +
                                std::to_string(in_features_) + "] input");
  if (training) {
    cached_input_ = input;
  } else {
    // See Conv2d::forward: a stale cache must not survive inference calls.
    cached_input_ = Tensor();
  }
  has_cached_input_ = training;
  Tensor out = tensor::matmul_nt(input, weight_);  // [N, out]
  if (has_bias_) {
    const int n = out.dim(0);
    const float* __restrict b = bias_.data().data();
    for (int i = 0; i < n; ++i) {
      float* __restrict row = out.data().data() +
                              static_cast<std::ptrdiff_t>(i) * out_features_;
      for (int j = 0; j < out_features_; ++j) row[j] += b[j];
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (!has_cached_input_)
    throw std::logic_error(
        "Linear::backward: no cached input — call forward(training=true) "
        "before backward");
  // dW = grad_out^T [N,out]^T * input [N,in] -> [out,in]
  weight_grad_.add_(tensor::matmul_tn(grad_out, cached_input_));
  if (has_bias_) {
    const int n = grad_out.dim(0);
    float* __restrict bg = bias_grad_.data().data();
    for (int i = 0; i < n; ++i) {
      const float* __restrict row =
          grad_out.data().data() +
          static_cast<std::ptrdiff_t>(i) * out_features_;
      for (int j = 0; j < out_features_; ++j) bg[j] += row[j];
    }
  }
  // dX = grad_out [N,out] * W [out,in] -> [N,in]
  return tensor::matmul(grad_out, weight_);
}

std::vector<Tensor*> Linear::params() {
  std::vector<Tensor*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

std::vector<Tensor*> Linear::grads() {
  std::vector<Tensor*> out{&weight_grad_};
  if (has_bias_) out.push_back(&bias_grad_);
  return out;
}

LayerSpec Linear::spec() const {
  return LayerSpec{"fc", 0, 0, 0, out_features_};
}

Shape Linear::output_shape(const Shape& in) const {
  if (in.size() != 1 || in[0] != in_features_)
    throw std::invalid_argument("Linear: incompatible input shape");
  return {out_features_};
}

std::int64_t Linear::macc(const Shape& in) const {
  (void)in;
  return static_cast<std::int64_t>(in_features_) * out_features_;
}

std::unique_ptr<Layer> Linear::clone() const {
  return std::make_unique<Linear>(*this);
}

double Linear::sparsity() const {
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < weight_.numel(); ++i)
    if (weight_.at(i) == 0.0f) ++zeros;
  return weight_.numel() ? static_cast<double>(zeros) /
                               static_cast<double>(weight_.numel())
                         : 0.0;
}

}  // namespace cadmc::nn
