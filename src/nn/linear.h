// Fully-connected layer y = W x + b, operating on [N, in] tensors.
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace cadmc::nn {

class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::int64_t macc(const Shape& in) const override;  // Eqn. (5): Cin*Cout
  std::unique_ptr<Layer> clone() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }          // [out, in]
  const Tensor& weight() const { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

  /// Fraction of exactly-zero weights (F2 sparsity reporting).
  double sparsity() const;

 private:
  int in_features_, out_features_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
  bool has_cached_input_ = false;
};

}  // namespace cadmc::nn
