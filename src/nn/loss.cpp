#include "nn/loss.h"

#include <utility>

#include "tensor/ops.h"

namespace cadmc::nn {

using tensor::Tensor;

LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  auto rows = tensor::softmax_xent_rows(logits, labels);
  LossResult result;
  result.loss = rows.loss;
  result.grad = std::move(rows.grad);
  return result;
}

LossResult distillation_loss(const Tensor& student_logits,
                             const Tensor& teacher_logits,
                             const std::vector<int>& labels, double temperature,
                             double alpha) {
  // Soft part: T^2 * KL(p_T || q_T) where p_T, q_T are temperature-softened
  // teacher/student distributions. dL/dz_student = T * (q_T - p_T) per sample
  // (the T^2 factor cancels one 1/T from the softmax derivative). The fused
  // kernel writes the soft gradient directly — no [N,C] temporaries here.
  auto soft = tensor::kd_softmax_rows(student_logits, teacher_logits, temperature);
  auto hard = tensor::softmax_xent_rows(student_logits, labels);

  LossResult result;
  result.loss = alpha * soft.loss + (1.0 - alpha) * hard.loss;
  result.grad = std::move(soft.grad);
  result.grad.scale_(static_cast<float>(alpha));
  result.grad.add_scaled_(hard.grad, static_cast<float>(1.0 - alpha));
  return result;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const int n = logits.dim(0), c = logits.dim(1);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (logits(i, j) > logits(i, best)) best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return n ? static_cast<double>(correct) / n : 0.0;
}

}  // namespace cadmc::nn
