#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cadmc::nn {

using tensor::Tensor;

LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("cross_entropy: rank-2 logits expected");
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n)
    throw std::invalid_argument("cross_entropy: label count mismatch");
  Tensor probs = tensor::softmax_rows(logits);
  LossResult result;
  result.grad = probs;
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) throw std::invalid_argument("cross_entropy: bad label");
    loss -= std::log(std::max(1e-12, static_cast<double>(probs(i, y))));
    result.grad(i, y) -= 1.0f;
  }
  result.loss = loss / n;
  result.grad.scale_(1.0f / static_cast<float>(n));
  return result;
}

LossResult distillation_loss(const Tensor& student_logits,
                             const Tensor& teacher_logits,
                             const std::vector<int>& labels, double temperature,
                             double alpha) {
  const int n = student_logits.dim(0), c = student_logits.dim(1);
  if (teacher_logits.dim(0) != n || teacher_logits.dim(1) != c)
    throw std::invalid_argument("distillation_loss: teacher/student shape mismatch");

  // Soft part: T^2 * KL(p_T || q_T) where p_T, q_T are temperature-softened
  // teacher/student distributions. dL/dz_student = T * (q_T - p_T) per sample
  // (the T^2 factor cancels one 1/T from the softmax derivative).
  Tensor student_t = student_logits;
  Tensor teacher_t = teacher_logits;
  student_t.scale_(static_cast<float>(1.0 / temperature));
  teacher_t.scale_(static_cast<float>(1.0 / temperature));
  const Tensor q = tensor::softmax_rows(student_t);
  const Tensor p = tensor::softmax_rows(teacher_t);

  double soft_loss = 0.0;
  Tensor soft_grad({n, c});
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < c; ++j) {
      const double pij = p(i, j), qij = std::max(1e-12, static_cast<double>(q(i, j)));
      if (pij > 1e-12) soft_loss += pij * std::log(pij / qij);
      soft_grad(i, j) = static_cast<float>(temperature * (q(i, j) - p(i, j)));
    }
  soft_loss *= temperature * temperature / n;
  soft_grad.scale_(1.0f / static_cast<float>(n));

  LossResult hard = cross_entropy(student_logits, labels);

  LossResult result;
  result.loss = alpha * soft_loss + (1.0 - alpha) * hard.loss;
  result.grad = soft_grad;
  result.grad.scale_(static_cast<float>(alpha));
  result.grad.add_scaled_(hard.grad, static_cast<float>(1.0 - alpha));
  return result;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const int n = logits.dim(0), c = logits.dim(1);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (logits(i, j) > logits(i, best)) best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return n ? static_cast<double>(correct) / n : 0.0;
}

}  // namespace cadmc::nn
