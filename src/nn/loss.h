// Classification losses: softmax cross-entropy against hard labels, and the
// knowledge-distillation loss of Sec. VI-D (soft targets from the base DNN's
// logits, temperature-scaled KL, blended with the hard-label loss).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace cadmc::nn {

struct LossResult {
  double loss = 0.0;
  tensor::Tensor grad;  // dL/dlogits, same shape as logits [N,C]
};

/// Mean softmax cross-entropy over the batch.
LossResult cross_entropy(const tensor::Tensor& logits,
                         const std::vector<int>& labels);

/// Knowledge distillation (Sec. VI-D): the composed model is trained against
/// the base model's output logits instead of ground-truth labels.
/// loss = alpha * T^2 * KL(softmax(teacher/T) || softmax(student/T))
///      + (1-alpha) * CE(student, labels).
LossResult distillation_loss(const tensor::Tensor& student_logits,
                             const tensor::Tensor& teacher_logits,
                             const std::vector<int>& labels,
                             double temperature = 4.0, double alpha = 0.9);

/// Top-1 accuracy of logits vs labels, per Eqn. (2).
double accuracy(const tensor::Tensor& logits, const std::vector<int>& labels);

}  // namespace cadmc::nn
