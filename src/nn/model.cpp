#include "nn/model.h"

#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace cadmc::nn {

Model::Model(const Model& other) : input_shape_(other.input_shape_) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  Model copy(other);
  *this = std::move(copy);
  return *this;
}

void Model::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Model::add: null layer");
  layers_.push_back(std::move(layer));
}

void Model::replace_layer(std::size_t i,
                          std::vector<std::unique_ptr<Layer>> repl) {
  if (i >= layers_.size()) throw std::out_of_range("Model::replace_layer");
  layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(i));
  for (std::size_t j = 0; j < repl.size(); ++j)
    layers_.insert(layers_.begin() + static_cast<std::ptrdiff_t>(i + j),
                   std::move(repl[j]));
}

void Model::remove_layer(std::size_t i) {
  if (i >= layers_.size()) throw std::out_of_range("Model::remove_layer");
  layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(i));
}

std::unique_ptr<Layer> Model::take_layer(std::size_t i) {
  if (i >= layers_.size()) throw std::out_of_range("Model::take_layer");
  auto layer = std::move(layers_[i]);
  layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(i));
  return layer;
}

Tensor Model::forward(const Tensor& input, bool training) {
  return forward_range(input, 0, layers_.size(), training);
}

Tensor Model::forward_range(const Tensor& input, std::size_t begin,
                            std::size_t end, bool training) {
  if (begin > end || end > layers_.size())
    throw std::out_of_range("Model::forward_range");
  Tensor x = input;
  for (std::size_t i = begin; i < end; ++i)
    x = layers_[i]->forward(x, training);
  return x;
}

void Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
}

std::vector<Tensor*> Model::params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Model::grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}

void Model::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

std::int64_t Model::param_count() const {
  std::int64_t n = 0;
  for (const auto& l : layers_)
    n += const_cast<Layer&>(*l).param_count();
  return n;
}

Shape Model::shape_after(std::size_t i) const {
  if (i >= layers_.size()) throw std::out_of_range("Model::shape_after");
  Shape s = input_shape_;
  for (std::size_t j = 0; j <= i; ++j) s = layers_[j]->output_shape(s);
  return s;
}

std::vector<Shape> Model::boundary_shapes() const {
  std::vector<Shape> shapes;
  shapes.reserve(layers_.size() + 1);
  Shape s = input_shape_;
  shapes.push_back(s);
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    shapes.push_back(s);
  }
  return shapes;
}

std::vector<std::int64_t> Model::layer_maccs() const {
  std::vector<std::int64_t> maccs;
  maccs.reserve(layers_.size());
  Shape s = input_shape_;
  for (const auto& l : layers_) {
    maccs.push_back(l->macc(s));
    s = l->output_shape(s);
  }
  return maccs;
}

std::int64_t Model::total_macc() const {
  std::int64_t total = 0;
  for (std::int64_t m : layer_maccs()) total += m;
  return total;
}

std::vector<std::int64_t> Model::boundary_bytes() const {
  std::vector<std::int64_t> bytes;
  for (const Shape& s : boundary_shapes())
    bytes.push_back(tensor::shape_numel(s) * 4);
  return bytes;
}

std::vector<std::string> Model::spec_strings() const {
  std::vector<std::string> out;
  out.reserve(layers_.size());
  for (const auto& l : layers_) out.push_back(l->spec().to_string());
  return out;
}

std::string Model::signature() const {
  return tensor::shape_to_string(input_shape_) + "|" +
         util::join(spec_strings(), ";");
}

Model Model::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > layers_.size())
    throw std::out_of_range("Model::slice");
  Shape in = input_shape_;
  for (std::size_t i = 0; i < begin; ++i) in = layers_[i]->output_shape(in);
  Model out(std::move(in));
  for (std::size_t i = begin; i < end; ++i) out.add(layers_[i]->clone());
  return out;
}

void Model::append(const Model& other) {
  for (std::size_t i = 0; i < other.size(); ++i)
    layers_.push_back(other.layer(i).clone());
}

std::string Model::summary() const {
  std::ostringstream ss;
  ss << "Model input=" << tensor::shape_to_string(input_shape_)
     << " params=" << param_count() << " macc=" << total_macc() << "\n";
  Shape s = input_shape_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const auto& l = layers_[i];
    const std::int64_t m = l->macc(s);
    s = l->output_shape(s);
    ss << "  [" << i << "] " << l->name() << " (" << l->spec().to_string()
       << ") -> " << tensor::shape_to_string(s) << " macc=" << m << "\n";
  }
  return ss.str();
}

}  // namespace cadmc::nn
