// Model: an ordered chain of layers. This is the unit the decision engine
// manipulates — it can be sliced into blocks (for the model tree), described
// as the hyper-parameter string sequence of Eqn. (1), and profiled per layer
// for MACCs and feature sizes at every possible cut point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace cadmc::nn {

class Model {
 public:
  Model() = default;
  /// `input_shape` is the per-sample shape, e.g. {3,32,32} for CIFAR.
  explicit Model(Shape input_shape) : input_shape_(std::move(input_shape)) {}

  Model(const Model& other);
  Model& operator=(const Model& other);
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  void add(std::unique_ptr<Layer> layer);

  std::size_t size() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Replaces layer i with one or more layers (compression transforms).
  void replace_layer(std::size_t i, std::vector<std::unique_ptr<Layer>> repl);
  void remove_layer(std::size_t i);
  std::unique_ptr<Layer> take_layer(std::size_t i);

  const Shape& input_shape() const { return input_shape_; }
  void set_input_shape(Shape s) { input_shape_ = std::move(s); }

  /// Full forward pass over a batched input tensor.
  Tensor forward(const Tensor& input, bool training = false);
  /// Forward through layers [begin, end).
  Tensor forward_range(const Tensor& input, std::size_t begin, std::size_t end,
                       bool training = false);
  /// Backward pass; call after forward(..., training=true).
  void backward(const Tensor& grad_out);

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  void zero_grad();
  std::int64_t param_count() const;

  /// Per-sample output shape after layer i (i.e. after layers [0..i]).
  Shape shape_after(std::size_t i) const;
  /// Per-sample shapes at every boundary: index 0 is the input shape,
  /// index i+1 the shape after layer i. Size = size() + 1.
  std::vector<Shape> boundary_shapes() const;
  /// Per-layer MACCs (Eqns. 4-5). Size = size().
  std::vector<std::int64_t> layer_maccs() const;
  std::int64_t total_macc() const;
  /// Bytes of the float32 feature tensor crossing boundary i (0 = raw input).
  std::vector<std::int64_t> boundary_bytes() const;

  /// Eqn. (1) string state, one entry per layer.
  std::vector<std::string> spec_strings() const;
  /// Single-line signature used for memoization keys.
  std::string signature() const;

  /// Deep-copies layers [begin, end) into a new model whose input shape is
  /// the boundary shape at `begin`.
  Model slice(std::size_t begin, std::size_t end) const;
  /// Appends deep copies of all layers of `other`.
  void append(const Model& other);

  std::string summary() const;

 private:
  Shape input_shape_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace cadmc::nn
