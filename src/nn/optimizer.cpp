#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace cadmc::nn {

using tensor::Tensor;

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Sgd::step: params/grads size mismatch");
  if (momentum_ > 0.0 && velocity_.size() != params.size()) {
    velocity_.clear();
    for (Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    if (momentum_ > 0.0) {
      Tensor& v = velocity_[i];
      for (std::int64_t j = 0; j < p.numel(); ++j) {
        const float grad =
            g.at(j) + static_cast<float>(weight_decay_) * p.at(j);
        v.at(j) = static_cast<float>(momentum_) * v.at(j) + grad;
        p.at(j) -= static_cast<float>(lr_) * v.at(j);
      }
    } else {
      for (std::int64_t j = 0; j < p.numel(); ++j) {
        const float grad =
            g.at(j) + static_cast<float>(weight_decay_) * p.at(j);
        p.at(j) -= static_cast<float>(lr_) * grad;
      }
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Adam::step: params/grads size mismatch");
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p.numel(); ++j) {
      const double gj = g.at(j);
      m.at(j) = static_cast<float>(beta1_ * m.at(j) + (1.0 - beta1_) * gj);
      v.at(j) = static_cast<float>(beta2_ * v.at(j) + (1.0 - beta2_) * gj * gj);
      const double mhat = m.at(j) / bc1;
      const double vhat = v.at(j) / bc2;
      p.at(j) -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

double clip_grad_norm(const std::vector<Tensor*>& grads, double max_norm) {
  double total = 0.0;
  for (const Tensor* g : grads)
    for (std::int64_t j = 0; j < g->numel(); ++j)
      total += static_cast<double>(g->at(j)) * g->at(j);
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor* g : grads) g->scale_(scale);
  }
  return norm;
}

}  // namespace cadmc::nn
