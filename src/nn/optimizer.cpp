#include "nn/optimizer.h"

#include <cmath>
#include <span>
#include <stdexcept>

#include "tensor/ops.h"

namespace cadmc::nn {

using tensor::Tensor;

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Sgd::step: params/grads size mismatch");
  if (momentum_ > 0.0 && velocity_.size() != params.size()) {
    velocity_.clear();
    for (Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  // The fused kernel does weight decay, momentum and the parameter update in
  // one sweep per tensor (one pass over memory instead of three).
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    std::span<float> velocity;
    if (momentum_ > 0.0) velocity = velocity_[i].data();
    tensor::sgd_update(p.data(), g.data(), velocity, static_cast<float>(lr_),
                       static_cast<float>(momentum_),
                       static_cast<float>(weight_decay_));
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Adam::step: params/grads size mismatch");
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* __restrict p = params[i]->data().data();
    const float* __restrict g = grads[i]->data().data();
    float* __restrict m = m_[i].data().data();
    float* __restrict v = v_[i].data().data();
    const std::int64_t n = params[i]->numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const double gj = g[j];
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * gj);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * gj * gj);
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

double clip_grad_norm(const std::vector<Tensor*>& grads, double max_norm) {
  double total = 0.0;
  for (const Tensor* g : grads) {
    const float* __restrict gp = g->data().data();
    const std::int64_t n = g->numel();
    for (std::int64_t j = 0; j < n; ++j)
      total += static_cast<double>(gp[j]) * gp[j];
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor* g : grads) g->scale_(scale);
  }
  return norm;
}

}  // namespace cadmc::nn
