// First-order optimizers over a parameter/gradient set. Used both for the
// DNN substrate (training composed models with distillation) and for the
// LSTM controllers (policy-gradient ascent).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace cadmc::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update using the current gradients, then leaves gradients
  /// untouched (callers zero them).
  virtual void step(const std::vector<tensor::Tensor*>& params,
                    const std::vector<tensor::Tensor*>& grads) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads) override;
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, momentum_, weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads) override;
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
};

/// Global gradient-norm clipping; returns the pre-clip norm.
double clip_grad_norm(const std::vector<tensor::Tensor*>& grads,
                      double max_norm);

}  // namespace cadmc::nn
