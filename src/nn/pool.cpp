#include "nn/pool.h"

#include <stdexcept>
#include <utility>

namespace cadmc::nn {

MaxPool2d::MaxPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0)
    throw std::invalid_argument("MaxPool2d: invalid hyper-parameters");
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  // Inference skips the argmax side-output entirely (and unlocks the
  // vectorized fast-mode row kernel); training keeps only shape + argmax —
  // never the input activation itself.
  auto result = tensor::maxpool2d(input, kernel_, stride_, training);
  if (training) {
    cached_shape_ = input.shape();
    cached_argmax_ = std::move(result.argmax);
  } else {
    cached_argmax_.clear();
  }
  has_cache_ = training;
  return std::move(result.output);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (!has_cache_)
    throw std::logic_error(
        "MaxPool2d::backward: no cached argmax — call forward(training=true) "
        "before backward");
  Tensor grad_in =
      tensor::maxpool2d_backward(cached_shape_, cached_argmax_, grad_out);
  cached_argmax_.clear();
  cached_argmax_.shrink_to_fit();
  has_cache_ = false;
  return grad_in;
}

LayerSpec MaxPool2d::spec() const {
  return LayerSpec{"maxpool", kernel_, stride_, 0, 0};
}

Shape MaxPool2d::output_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument("MaxPool2d: expected {c,h,w}");
  const int ho = tensor::conv_out_size(in[1], kernel_, stride_, 0);
  const int wo = tensor::conv_out_size(in[2], kernel_, stride_, 0);
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("MaxPool2d: empty output");
  return {in[0], ho, wo};
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(*this);
}

AvgPool2d::AvgPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0)
    throw std::invalid_argument("AvgPool2d: invalid hyper-parameters");
}

Tensor AvgPool2d::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  has_cache_ = training;
  return tensor::avgpool2d(input, kernel_, stride_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (!has_cache_)
    throw std::logic_error(
        "AvgPool2d::backward: no cached shape — call forward(training=true) "
        "before backward");
  has_cache_ = false;
  return tensor::avgpool2d_backward(cached_shape_, kernel_, stride_, grad_out);
}

LayerSpec AvgPool2d::spec() const {
  return LayerSpec{"avgpool", kernel_, stride_, 0, 0};
}

Shape AvgPool2d::output_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument("AvgPool2d: expected {c,h,w}");
  const int ho = tensor::conv_out_size(in[1], kernel_, stride_, 0);
  const int wo = tensor::conv_out_size(in[2], kernel_, stride_, 0);
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("AvgPool2d: empty output");
  return {in[0], ho, wo};
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(*this);
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  has_cache_ = training;
  return tensor::global_avgpool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (!has_cache_)
    throw std::logic_error(
        "GlobalAvgPool::backward: no cached shape — call "
        "forward(training=true) before backward");
  has_cache_ = false;
  return tensor::global_avgpool_backward(cached_shape_, grad_out);
}

LayerSpec GlobalAvgPool::spec() const {
  return LayerSpec{"gap", 0, 0, 0, 0};
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument("GlobalAvgPool: expected {c,h,w}");
  return {in[0]};
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(*this);
}

}  // namespace cadmc::nn
