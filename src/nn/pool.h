// Pooling layers: max, average and global-average (the F3 replacement for
// FC heads in Table II). Pooling MACCs are negligible per the paper's
// measurements, so macc() stays 0.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace cadmc::nn {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  int kernel_, stride_;
  Tensor cached_input_;
  tensor::MaxPoolResult cached_fwd_;
};

class AvgPool2d : public Layer {
 public:
  AvgPool2d(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  int kernel_, stride_;
  Tensor cached_input_;
};

/// [N,C,H,W] -> [N,C]; replaces FC heads under the F3 transform.
class GlobalAvgPool : public Layer {
 public:
  GlobalAvgPool() = default;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_input_;
};

}  // namespace cadmc::nn
