// Pooling layers: max, average and global-average (the F3 replacement for
// FC heads in Table II). Pooling MACCs are negligible per the paper's
// measurements, so macc() stays 0.
//
// Backward needs only the input *shape* (plus, for max pooling, the argmax
// routing), so no layer here retains a full input activation: forward
// caches the shape, backward consumes the cache and releases it. A backward
// without a training-mode forward — or a second backward on the same cache —
// throws std::logic_error, matching the Conv2d/Linear stale-cache contract.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/ops.h"

namespace cadmc::nn {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  int kernel_, stride_;
  Shape cached_shape_;
  std::vector<std::int64_t> cached_argmax_;
  bool has_cache_ = false;
};

class AvgPool2d : public Layer {
 public:
  AvgPool2d(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  int kernel_, stride_;
  Shape cached_shape_;
  bool has_cache_ = false;
};

/// [N,C,H,W] -> [N,C]; replaces FC heads under the F3 transform.
class GlobalAvgPool : public Layer {
 public:
  GlobalAvgPool() = default;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  LayerSpec spec() const override;
  Shape output_shape(const Shape& in) const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_shape_;
  bool has_cache_ = false;
};

}  // namespace cadmc::nn
