#include "nn/quant.h"

#include <cmath>
#include <stdexcept>

namespace cadmc::nn {

float quantize_tensor(tensor::Tensor& t, int bits) {
  if (bits < 2 || bits > 16)
    throw std::invalid_argument("quantize_tensor: bits out of [2,16]");
  const float max_abs = t.abs_max();
  if (max_abs == 0.0f) return 0.0f;
  const float levels = static_cast<float>((1 << (bits - 1)) - 1);
  const float scale = max_abs / levels;
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t.at(i) = std::round(t.at(i) / scale) * scale;
  return scale;
}

QuantizedConv2d::QuantizedConv2d(const Conv2d& conv, int bits)
    : Conv2d(conv), bits_(bits) {
  quantize_tensor(weight(), bits);
}

LayerSpec QuantizedConv2d::spec() const {
  LayerSpec s = Conv2d::spec();
  s.type = "conv_q8";
  return s;
}

std::string QuantizedConv2d::name() const {
  return "conv_q" + std::to_string(bits_);
}

std::unique_ptr<Layer> QuantizedConv2d::clone() const {
  return std::make_unique<QuantizedConv2d>(*this);
}

QuantizedLinear::QuantizedLinear(const Linear& fc, int bits)
    : Linear(fc), bits_(bits) {
  quantize_tensor(weight(), bits);
}

LayerSpec QuantizedLinear::spec() const {
  LayerSpec s = Linear::spec();
  s.type = "fc_q8";
  return s;
}

std::unique_ptr<Layer> QuantizedLinear::clone() const {
  return std::make_unique<QuantizedLinear>(*this);
}

}  // namespace cadmc::nn
