// Quantized layer variants (extension — see DESIGN.md). Weights are snapped
// to a symmetric 8-bit grid per tensor (the post-training scheme of Deep
// Compression, which the paper cites as [16]); the layers advertise a
// distinct spec type ("conv_q8"/"fc_q8") so the device latency model can
// price the integer-arithmetic speedup CPUs get from 8-bit kernels.
#pragma once

#include "nn/conv.h"
#include "nn/linear.h"

namespace cadmc::nn {

/// Snaps every weight to the nearest of 2^bits symmetric levels spanning
/// [-max|w|, +max|w|]. Returns the quantization scale (level width).
float quantize_tensor(tensor::Tensor& t, int bits);

class QuantizedConv2d : public Conv2d {
 public:
  /// Copies `conv` and quantizes its weights to `bits`.
  QuantizedConv2d(const Conv2d& conv, int bits);

  LayerSpec spec() const override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  int bits() const { return bits_; }

 private:
  int bits_;
};

class QuantizedLinear : public Linear {
 public:
  QuantizedLinear(const Linear& fc, int bits);

  LayerSpec spec() const override;
  std::unique_ptr<Layer> clone() const override;

  int bits() const { return bits_; }

 private:
  int bits_;
};

}  // namespace cadmc::nn
