#include "obs/critpath.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "obs/export.h"
#include "util/string_util.h"
#include "util/table.h"

namespace cadmc::obs {

namespace {

// Happens-before slack: recorded timestamps round-trip through text (JSONL,
// Chrome JSON), so two back-to-back spans can land a hair apart. A sibling
// ending within this of another's start still counts as "before".
constexpr double kOrderEps = 1e-6;

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

double span_end(const SpanRecord& s) { return s.start_ms + s.wall_ms; }

/// Ordering used everywhere ties must break deterministically.
bool span_before(const SpanRecord& a, const SpanRecord& b) {
  if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
  if (span_end(a) != span_end(b)) return span_end(a) < span_end(b);
  return a.id < b.id;
}

/// Longest dependency chain over one sibling group (or the root group of a
/// forest). `members` are node indices sorted by span_before; `critical` is
/// the per-node critical path already computed for each member. Returns the
/// best chain value and fills `chain` with the member indices along the
/// winning chain, in time order.
double longest_chain(const std::vector<int>& members,
                     const std::vector<CritNode>& nodes,
                     const std::vector<double>& critical,
                     std::vector<int>* chain) {
  const std::size_t k = members.size();
  chain->clear();
  if (k == 0) return 0.0;
  // best[j]: weight of the best chain ending at member j; pred[j]: the
  // member it extends (-1 = chain starts at j). Members whose interval ends
  // no later than j's start are eligible predecessors — overlapping
  // siblings get no edge and therefore run in parallel.
  std::vector<double> best(k, 0.0);
  std::vector<int> pred(k, -1);
  // Sweep in start order, consuming members in end order through a running
  // prefix max — O(k log k) instead of the quadratic sibling scan, which
  // matters for wide fan-outs (thousands of requests under one gateway
  // trace). A member is consumable only once its own best is computed
  // ("processed"); the only candidates that can be unprocessed are
  // zero-width spans tied exactly at j's start, whose chains can never beat
  // the running max (their own weight is zero), so stopping at them is safe.
  std::vector<std::size_t> by_end(k);
  for (std::size_t i = 0; i < k; ++i) by_end[i] = i;
  std::sort(by_end.begin(), by_end.end(), [&](std::size_t a, std::size_t b) {
    const SpanRecord& sa = nodes[static_cast<std::size_t>(members[a])].span;
    const SpanRecord& sb = nodes[static_cast<std::size_t>(members[b])].span;
    if (span_end(sa) != span_end(sb)) return span_end(sa) < span_end(sb);
    return span_before(sa, sb);
  });
  std::vector<char> processed(k, 0);
  double run_max = -1.0;
  int run_arg = -1;
  std::size_t p = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const SpanRecord& sj = nodes[static_cast<std::size_t>(members[j])].span;
    while (p < k) {
      const std::size_t i = by_end[p];
      const SpanRecord& si = nodes[static_cast<std::size_t>(members[i])].span;
      if (span_end(si) > sj.start_ms + kOrderEps) break;
      if (!processed[i]) break;  // zero-width tie at j's start; contributes 0
      if (best[i] > run_max) {
        run_max = best[i];
        run_arg = static_cast<int>(i);
      }
      ++p;
    }
    best[j] = critical[static_cast<std::size_t>(members[j])];
    if (run_max > 0.0) {
      best[j] += run_max;
      pred[j] = run_arg;
    }
    processed[j] = 1;
  }
  std::size_t winner = 0;
  for (std::size_t j = 1; j < k; ++j)
    if (best[j] > best[winner]) winner = j;  // ties keep the earlier member
  for (int j = static_cast<int>(winner); j >= 0; j = pred[j])
    chain->push_back(members[static_cast<std::size_t>(j)]);
  std::reverse(chain->begin(), chain->end());
  return best[winner];
}

/// Union length of the children's intervals clamped to the parent's.
double covered_by_children(const CritNode& node,
                           const std::vector<CritNode>& nodes) {
  const double lo = node.span.start_ms;
  const double hi = span_end(node.span);
  double covered = 0.0;
  double cursor = lo;
  for (int c : node.children) {  // already sorted by start
    const SpanRecord& s = nodes[static_cast<std::size_t>(c)].span;
    const double b = std::max(s.start_ms, cursor);
    const double e = std::min(span_end(s), hi);
    if (e > b) {
      covered += e - b;
      cursor = e;
    }
  }
  return covered;
}

TraceProfile profile_one_trace(std::uint64_t trace_id,
                               std::vector<SpanRecord> spans) {
  TraceProfile trace;
  trace.trace_id = trace_id;
  trace.span_count = spans.size();
  std::sort(spans.begin(), spans.end(), span_before);
  trace.nodes.reserve(spans.size());
  for (SpanRecord& s : spans) {
    CritNode node;
    node.span = std::move(s);
    trace.nodes.push_back(std::move(node));
  }
  std::unordered_map<std::uint64_t, int> by_id;
  by_id.reserve(trace.nodes.size());
  for (std::size_t i = 0; i < trace.nodes.size(); ++i)
    by_id.emplace(trace.nodes[i].span.id, static_cast<int>(i));

  // Link children; a span whose parent is absent (the usual root case, and
  // the cross-process case where the edge half was not merged in) is a root.
  std::vector<int> roots;
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    CritNode& node = trace.nodes[i];
    const std::uint64_t pid = node.span.parent_id;
    const auto it = pid != 0 && pid != node.span.id ? by_id.find(pid)
                                                    : by_id.end();
    if (it == by_id.end()) {
      roots.push_back(static_cast<int>(i));
    } else {
      node.parent = it->second;
      trace.nodes[static_cast<std::size_t>(it->second)].children.push_back(
          static_cast<int>(i));
    }
  }

  // Iterative post-order from the roots: children are fully resolved before
  // their parent. Nodes a malformed stream leaves unreachable (parent
  // cycles) are promoted to roots rather than dropped.
  std::vector<char> visited(trace.nodes.size(), 0);
  std::vector<int> order;
  order.reserve(trace.nodes.size());
  const auto walk = [&](int root) {
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    visited[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [n, next_child] = stack.back();
      const CritNode& node = trace.nodes[static_cast<std::size_t>(n)];
      if (next_child < node.children.size()) {
        const int c = node.children[next_child++];
        visited[static_cast<std::size_t>(c)] = 1;
        stack.push_back({c, 0});
      } else {
        order.push_back(n);
        stack.pop_back();
      }
    }
  };
  for (int r : roots) walk(r);
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    if (!visited[i]) {
      trace.nodes[i].parent = -1;
      roots.push_back(static_cast<int>(i));
      walk(static_cast<int>(i));
    }
  }
  std::sort(roots.begin(), roots.end(), [&](int a, int b) {
    return span_before(trace.nodes[static_cast<std::size_t>(a)].span,
                       trace.nodes[static_cast<std::size_t>(b)].span);
  });

  // Bottom-up: self time and per-subtree critical path; remember each
  // node's winning child chain for the marking pass.
  std::vector<double> critical(trace.nodes.size(), 0.0);
  std::vector<std::vector<int>> child_chain(trace.nodes.size());
  for (int n : order) {
    CritNode& node = trace.nodes[static_cast<std::size_t>(n)];
    node.self_ms =
        std::max(0.0, node.span.wall_ms - covered_by_children(node, trace.nodes));
    const double through_children =
        longest_chain(node.children, trace.nodes, critical,
                      &child_chain[static_cast<std::size_t>(n)]);
    node.critical_ms = node.self_ms + through_children;
    critical[static_cast<std::size_t>(n)] = node.critical_ms;
  }

  std::vector<int> root_chain;
  trace.critical_path_ms =
      longest_chain(roots, trace.nodes, critical, &root_chain);

  // Mark the winning chains top-down.
  std::vector<int> stack = root_chain;
  while (!stack.empty()) {
    const int n = stack.back();
    stack.pop_back();
    trace.nodes[static_cast<std::size_t>(n)].on_critical_path = true;
    for (int c : child_chain[static_cast<std::size_t>(n)]) stack.push_back(c);
  }
  for (std::size_t i = 0; i < trace.nodes.size(); ++i)
    if (trace.nodes[i].on_critical_path)
      trace.critical_nodes.push_back(static_cast<int>(i));
  // Path order: by start time, ancestors before the children they enclose
  // (longer interval first on a start tie), span id as the final tie-break.
  std::sort(trace.critical_nodes.begin(), trace.critical_nodes.end(),
            [&](int a, int b) {
              const SpanRecord& sa = trace.nodes[static_cast<std::size_t>(a)].span;
              const SpanRecord& sb = trace.nodes[static_cast<std::size_t>(b)].span;
              if (sa.start_ms != sb.start_ms) return sa.start_ms < sb.start_ms;
              const double end_a = sa.start_ms + sa.wall_ms;
              const double end_b = sb.start_ms + sb.wall_ms;
              if (end_a != end_b) return end_a > end_b;
              return sa.id < sb.id;
            });

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const CritNode& node : trace.nodes) {
    lo = std::min(lo, node.span.start_ms);
    hi = std::max(hi, span_end(node.span));
    trace.total_work_ms += node.self_ms;
  }
  trace.makespan_ms = trace.nodes.empty() ? 0.0 : hi - lo;
  if (!roots.empty())
    trace.root_name =
        trace.nodes[static_cast<std::size_t>(roots.front())].span.name;
  trace.parallelism = trace.critical_path_ms > 0.0
                          ? trace.total_work_ms / trace.critical_path_ms
                          : 1.0;
  return trace;
}

}  // namespace

ProfileReport profile_spans(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, std::vector<SpanRecord>> by_trace;
  for (const SpanRecord& s : spans) by_trace[s.trace_id].push_back(s);

  ProfileReport report;
  report.traces.reserve(by_trace.size());
  for (auto& [trace_id, trace_spans] : by_trace) {
    TraceProfile trace = profile_one_trace(trace_id, std::move(trace_spans));
    report.critical_total_ms += trace.critical_path_ms;
    report.work_total_ms += trace.total_work_ms;
    for (const CritNode& node : trace.nodes) {
      CritPathStats& stats = report.by_name[node.span.name];
      ++stats.count;
      stats.total_wall_ms += node.span.wall_ms;
      stats.total_self_ms += node.self_ms;
      if (node.span.modelled_ms >= 0.0)
        stats.total_modelled_ms += node.span.modelled_ms;
      if (node.on_critical_path) {
        ++stats.critical_count;
        stats.critical_self_ms += node.self_ms;
      }
    }
    report.traces.push_back(std::move(trace));
  }
  report.parallelism = report.critical_total_ms > 0.0
                           ? report.work_total_ms / report.critical_total_ms
                           : 1.0;
  // The serial bottleneck: the name whose self time dominates the critical
  // paths. std::map iteration makes the tie-break lexicographic.
  double best = -1.0;
  for (const auto& [name, stats] : report.by_name) {
    if (stats.critical_self_ms > best) {
      best = stats.critical_self_ms;
      report.bottleneck = name;
    }
  }
  if (report.critical_total_ms > 0.0 && !report.bottleneck.empty())
    report.bottleneck_share =
        report.by_name[report.bottleneck].critical_self_ms /
        report.critical_total_ms;
  return report;
}

ProfileReport profile_registry(const MetricsRegistry& registry) {
  return profile_spans(registry.spans());
}

std::vector<SpanRecord> spans_from_events(
    const std::vector<std::map<std::string, std::string>>& events) {
  std::vector<SpanRecord> spans;
  const auto to_double = [](const std::map<std::string, std::string>& e,
                            const char* key, double fallback) {
    const auto it = e.find(key);
    if (it == e.end() || it->second.empty()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      return fallback;
    }
  };
  const auto to_u64 = [](const std::map<std::string, std::string>& e,
                         const char* key) -> std::uint64_t {
    const auto it = e.find(key);
    if (it == e.end() || it->second.empty()) return 0;
    try {
      return std::stoull(it->second);
    } catch (const std::exception&) {
      return 0;
    }
  };
  for (const auto& event : events) {
    const auto type = event.find("type");
    if (type == event.end() || type->second != "span") continue;
    const auto name = event.find("name");
    if (name == event.end() || name->second.empty()) continue;
    SpanRecord s;
    s.name = name->second;
    s.id = to_u64(event, "id");
    s.parent_id = to_u64(event, "parent");
    s.trace_id = to_u64(event, "trace");
    s.depth = static_cast<int>(to_double(event, "depth", 0.0));
    s.start_ms = to_double(event, "start_ms", 0.0);
    s.wall_ms = to_double(event, "wall_ms", 0.0);
    s.modelled_ms = to_double(event, "modelled_ms", -1.0);
    spans.push_back(std::move(s));
  }
  return spans;
}

namespace {

/// Scans one JSON object (starting at `i` == '{'), collecting scalar values
/// keyed by name; nested objects recurse with a dotted prefix ("args.id").
/// Returns the index one past the closing brace. Tolerant by design: this
/// only needs to read back what to_chrome_trace wrote.
std::size_t scan_object(const std::string& text, std::size_t i,
                        const std::string& prefix,
                        std::map<std::string, std::string>& out) {
  const auto scan_string = [&](std::size_t at, std::string* value) {
    std::string s;
    ++at;  // opening quote
    while (at < text.size() && text[at] != '"') {
      if (text[at] == '\\' && at + 1 < text.size()) {
        ++at;
        switch (text[at]) {
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          default: s.push_back(text[at]);
        }
      } else {
        s.push_back(text[at]);
      }
      ++at;
    }
    if (value != nullptr) *value = std::move(s);
    return at < text.size() ? at + 1 : at;
  };
  ++i;  // '{'
  while (i < text.size() && text[i] != '}') {
    if (text[i] != '"') {
      ++i;
      continue;
    }
    std::string key;
    i = scan_string(i, &key);
    while (i < text.size() && (text[i] == ':' || std::isspace(
                                   static_cast<unsigned char>(text[i]))))
      ++i;
    if (i >= text.size()) break;
    if (text[i] == '{') {
      i = scan_object(text, i, prefix + key + ".", out);
    } else if (text[i] == '[') {
      int depth = 0;  // skip arrays wholesale (none carry span fields)
      bool in_string = false;
      for (; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
          if (c == '\\') ++i;
          else if (c == '"') in_string = false;
        } else if (c == '"') {
          in_string = true;
        } else if (c == '[') {
          ++depth;
        } else if (c == ']' && --depth == 0) {
          ++i;
          break;
        }
      }
    } else if (text[i] == '"') {
      std::string value;
      i = scan_string(i, &value);
      out[prefix + key] = std::move(value);
    } else {
      std::string literal;
      while (i < text.size() && text[i] != ',' && text[i] != '}')
        literal.push_back(text[i++]);
      out[prefix + key] = util::trim(literal);
    }
    while (i < text.size() && (text[i] == ',' || std::isspace(
                                   static_cast<unsigned char>(text[i]))))
      ++i;
  }
  return i < text.size() ? i + 1 : i;
}

}  // namespace

bool looks_like_chrome_trace(const std::string& text) {
  const std::size_t probe = std::min<std::size_t>(text.size(), 256);
  return text.compare(0, 1, "{") == 0 &&
         text.substr(0, probe).find("traceEvents") != std::string::npos;
}

std::vector<SpanRecord> spans_from_chrome_trace(const std::string& json) {
  std::vector<SpanRecord> spans;
  const std::size_t array_at = json.find("\"traceEvents\"");
  if (array_at == std::string::npos) return spans;
  std::size_t i = json.find('[', array_at);
  if (i == std::string::npos) return spans;
  ++i;
  while (i < json.size()) {
    while (i < json.size() && json[i] != '{' && json[i] != ']') ++i;
    if (i >= json.size() || json[i] == ']') break;
    std::map<std::string, std::string> fields;
    i = scan_object(json, i, "", fields);
    const auto get = [&](const char* key) -> const std::string* {
      const auto it = fields.find(key);
      return it != fields.end() ? &it->second : nullptr;
    };
    const std::string* name = get("name");
    const std::string* ts = get("ts");
    if (name == nullptr || ts == nullptr) continue;
    const auto to_double = [](const std::string* s, double fallback) {
      if (s == nullptr || s->empty()) return fallback;
      try {
        return std::stod(*s);
      } catch (const std::exception&) {
        return fallback;
      }
    };
    const auto to_u64 = [](const std::string* s) -> std::uint64_t {
      if (s == nullptr || s->empty()) return 0;
      try {
        return std::stoull(*s);
      } catch (const std::exception&) {
        return 0;
      }
    };
    SpanRecord s;
    s.name = *name;
    s.start_ms = to_double(ts, 0.0) / 1000.0;  // Chrome ts/dur are µs
    s.wall_ms = to_double(get("dur"), 0.0) / 1000.0;
    s.trace_id = to_u64(get("pid"));
    s.id = to_u64(get("args.id"));
    s.parent_id = to_u64(get("args.parent"));
    s.modelled_ms = to_double(get("args.modelled_ms"), -1.0);
    spans.push_back(std::move(s));
  }
  return spans;
}

std::string render_profile(const ProfileReport& report, std::size_t top) {
  std::ostringstream out;
  out << "critical path: " << util::format_double(report.critical_total_ms, 3)
      << " ms over " << report.traces.size() << " trace(s), total work "
      << util::format_double(report.work_total_ms, 3) << " ms, parallelism "
      << util::format_double(report.parallelism, 2) << "x\n";
  if (!report.bottleneck.empty())
    out << "serial bottleneck: " << report.bottleneck << " ("
        << util::format_double(report.bottleneck_share * 100.0, 1)
        << "% of the critical path)\n";

  if (!report.by_name.empty()) {
    // Sorted by critical self time: the top row is where optimization pays.
    std::vector<std::pair<std::string, const CritPathStats*>> rows;
    rows.reserve(report.by_name.size());
    for (const auto& [name, stats] : report.by_name)
      rows.emplace_back(name, &stats);
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second->critical_self_ms != b.second->critical_self_ms)
        return a.second->critical_self_ms > b.second->critical_self_ms;
      return a.first < b.first;
    });
    if (top > 0 && rows.size() > top) rows.resize(top);
    util::AsciiTable table({"Span", "Count", "On path", "Self ms",
                            "Crit self ms", "% crit", "Wall ms",
                            "Modelled ms"});
    for (const auto& [name, stats] : rows) {
      const double share = report.critical_total_ms > 0.0
                               ? stats->critical_self_ms /
                                     report.critical_total_ms * 100.0
                               : 0.0;
      table.add_row({name, std::to_string(stats->count),
                     std::to_string(stats->critical_count),
                     util::format_double(stats->total_self_ms, 3),
                     util::format_double(stats->critical_self_ms, 3),
                     util::format_double(share, 1),
                     util::format_double(stats->total_wall_ms, 3),
                     util::format_double(stats->total_modelled_ms, 3)});
    }
    out << table.to_string();
  }

  if (!report.traces.empty()) {
    std::vector<const TraceProfile*> longest;
    longest.reserve(report.traces.size());
    for (const TraceProfile& t : report.traces) longest.push_back(&t);
    std::sort(longest.begin(), longest.end(),
              [](const TraceProfile* a, const TraceProfile* b) {
                if (a->critical_path_ms != b->critical_path_ms)
                  return a->critical_path_ms > b->critical_path_ms;
                return a->trace_id < b->trace_id;
              });
    if (top > 0 && longest.size() > top) longest.resize(top);
    util::AsciiTable table({"Trace", "Root", "Spans", "Makespan ms",
                            "Critical ms", "Work ms", "Parallelism"});
    for (const TraceProfile* t : longest)
      table.add_row({std::to_string(t->trace_id),
                     t->root_name.empty() ? "?" : t->root_name,
                     std::to_string(t->span_count),
                     util::format_double(t->makespan_ms, 3),
                     util::format_double(t->critical_path_ms, 3),
                     util::format_double(t->total_work_ms, 3),
                     util::format_double(t->parallelism, 2)});
    out << table.to_string();

    // The longest trace's critical path, step by step — the chain to cut.
    const TraceProfile& worst = *longest.front();
    out << "critical path of trace " << worst.trace_id << ":";
    std::size_t shown = 0;
    for (int n : worst.critical_nodes) {
      const CritNode& node = worst.nodes[static_cast<std::size_t>(n)];
      if (top > 0 && shown++ >= top) {
        out << " -> ...(" << worst.critical_nodes.size() - top << " more)";
        break;
      }
      out << (shown == 1 ? " " : " -> ") << node.span.name << "("
          << util::format_double(node.self_ms, 3) << ")";
    }
    out << "\n";
  }
  if (report.traces.empty()) out << "(no spans to profile)\n";
  return out.str();
}

std::string profile_jsonl(const ProfileReport& report) {
  std::ostringstream out;
  out << "{\"type\":\"critpath\",\"traces\":" << report.traces.size()
      << ",\"critical_ms\":" << num(report.critical_total_ms)
      << ",\"work_ms\":" << num(report.work_total_ms)
      << ",\"parallelism\":" << num(report.parallelism)
      << ",\"bottleneck\":\"" << json_escape(report.bottleneck)
      << "\",\"bottleneck_share\":" << num(report.bottleneck_share) << "}\n";
  for (const auto& [name, stats] : report.by_name)
    out << "{\"type\":\"critpath_name\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << stats.count
        << ",\"critical_count\":" << stats.critical_count
        << ",\"wall_ms\":" << num(stats.total_wall_ms)
        << ",\"self_ms\":" << num(stats.total_self_ms)
        << ",\"critical_self_ms\":" << num(stats.critical_self_ms)
        << ",\"modelled_ms\":" << num(stats.total_modelled_ms) << "}\n";
  for (const TraceProfile& t : report.traces) {
    out << "{\"type\":\"critpath_trace\",\"trace\":" << t.trace_id
        << ",\"root\":\"" << json_escape(t.root_name)
        << "\",\"spans\":" << t.span_count
        << ",\"makespan_ms\":" << num(t.makespan_ms)
        << ",\"critical_ms\":" << num(t.critical_path_ms)
        << ",\"work_ms\":" << num(t.total_work_ms)
        << ",\"parallelism\":" << num(t.parallelism) << ",\"path\":\"";
    bool first = true;
    for (int n : t.critical_nodes) {
      if (!first) out << ">";
      first = false;
      out << json_escape(t.nodes[static_cast<std::size_t>(n)].span.name);
    }
    out << "\"}\n";
  }
  return out.str();
}

std::string profile_csv(const ProfileReport& report) {
  std::ostringstream out;
  out << "kind,name,count,critical_count,wall_ms,self_ms,critical_self_ms,"
         "share\n";
  out << "summary," << csv_escape(report.bottleneck) << ","
      << report.traces.size() << ",," << num(report.critical_total_ms) << ","
      << num(report.work_total_ms) << ",," << num(report.bottleneck_share)
      << "\n";
  for (const auto& [name, stats] : report.by_name) {
    const double share = report.critical_total_ms > 0.0
                             ? stats.critical_self_ms / report.critical_total_ms
                             : 0.0;
    out << "name," << csv_escape(name) << "," << stats.count << ","
        << stats.critical_count << "," << num(stats.total_wall_ms) << ","
        << num(stats.total_self_ms) << "," << num(stats.critical_self_ms)
        << "," << num(share) << "\n";
  }
  for (const TraceProfile& t : report.traces)
    out << "trace," << csv_escape(t.root_name) << "," << t.span_count << ",,"
        << num(t.makespan_ms) << "," << num(t.total_work_ms) << ","
        << num(t.critical_path_ms) << "," << num(t.parallelism) << "\n";
  return out.str();
}

}  // namespace cadmc::obs
