// Hierarchical critical-path profiler over the span stream (the kremlin
// idea applied to our traces): given the closed spans of one run — from a
// live MetricsRegistry, a recorded JSONL metrics stream, or an exported
// Chrome trace, with the cross-process cloud spans merged by trace id — it
// reconstructs each trace's span tree and answers the question every perf
// PR starts from: *what is the serial bottleneck of a frame, and how much
// of the rest is parallelizable?*
//
// Definitions (all durations in ms, computed from recorded wall times):
//
//  * self time  — a span's wall time minus the part of its interval covered
//    by its children (children clamped to the parent's interval). This is
//    work attributed to the span itself, never double-counted with a child.
//  * critical path of a span — self time plus the longest dependency chain
//    through its children, where child A precedes child B iff A ends before
//    B starts (non-overlapping siblings are serialized; overlapping
//    siblings — e.g. worker threads — are parallel, so only the longer
//    chain contributes). Recursively, each child contributes its own
//    critical path. For a purely serial trace the critical path equals the
//    root's wall time; for an ideally parallel one it approaches the
//    longest single chain.
//  * total work of a trace — the sum of self times over all its spans (what
//    infinitely many cores would still have to execute).
//  * parallelism ratio — total work / critical path: 1.0 means fully
//    serial, N means N-way parallel on average along the run.
//
// The per-name aggregation marks every span instance that lies on its
// trace's critical path and accumulates the self time it contributed there;
// the name with the largest such contribution is the run's serial
// bottleneck — shortening anything else cannot shorten the run.
//
// Everything here is a pure function of the input records: a fixed recorded
// trace file yields a bit-identical report (ties in chain selection break
// by earlier start, then smaller span id).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cadmc::obs {

/// One span as the profiler sees it, annotated with tree and critical-path
/// results. Indices refer into TraceProfile::nodes.
struct CritNode {
  SpanRecord span;
  int parent = -1;            // -1 = root of its trace
  std::vector<int> children;  // sorted by (start_ms, id)
  double self_ms = 0.0;
  double critical_ms = 0.0;   // critical path of this subtree
  bool on_critical_path = false;
};

/// Critical-path analysis of one causal tree (one frame / one request).
struct TraceProfile {
  std::uint64_t trace_id = 0;
  std::string root_name;           // first root's name
  std::size_t span_count = 0;
  double makespan_ms = 0.0;        // max end - min start over all spans
  double critical_path_ms = 0.0;   // longest dependency chain of the trace
  double total_work_ms = 0.0;      // sum of self times
  double parallelism = 1.0;        // total work / critical path
  std::vector<CritNode> nodes;
  std::vector<int> critical_nodes; // indices along the path, in time order
};

/// Per-span-name statistics aggregated across every trace of a run.
struct CritPathStats {
  std::uint64_t count = 0;          // span instances
  std::uint64_t critical_count = 0; // instances on a critical path
  double total_wall_ms = 0.0;
  double total_self_ms = 0.0;
  double critical_self_ms = 0.0;    // self time contributed on critical paths
  double total_modelled_ms = 0.0;   // sum over records that set it
};

struct ProfileReport {
  std::vector<TraceProfile> traces;         // ordered by trace id
  std::map<std::string, CritPathStats> by_name;
  double critical_total_ms = 0.0;  // sum of per-trace critical paths
  double work_total_ms = 0.0;      // sum of per-trace total work
  double parallelism = 1.0;        // work_total / critical_total
  std::string bottleneck;          // name with max critical_self_ms
  double bottleneck_share = 0.0;   // its critical_self / critical_total
};

/// Profiles a span set. Spans are grouped by trace id; spans whose parent id
/// is absent from their trace (or zero) become roots. A trace with several
/// roots is treated as a forest under a virtual root: the roots themselves
/// are chained by the same happens-before rule, so two sequential root
/// frames serialize and two concurrent ones parallelize.
ProfileReport profile_spans(const std::vector<SpanRecord>& spans);

/// Convenience: profiles everything `registry` retained.
ProfileReport profile_registry(const MetricsRegistry& registry);

/// Extracts span records from parsed JSONL events (obs::parse_jsonl shape,
/// "type":"span" lines). Events from several files can be concatenated
/// first — the cloud half of a field run merges by shared trace ids.
std::vector<SpanRecord> spans_from_events(
    const std::vector<std::map<std::string, std::string>>& events);

/// Parses a Chrome trace-event JSON document (the to_chrome_trace shape:
/// complete "X" slices with ts/dur in microseconds, pid = trace id, args
/// carrying span/parent ids) back into span records. Tolerates unknown
/// fields; events without a ts or name are skipped.
std::vector<SpanRecord> spans_from_chrome_trace(const std::string& json);

/// True when `text` looks like a Chrome trace document rather than a JSONL
/// metrics stream (used by `cadmc profile` to auto-detect its input).
bool looks_like_chrome_trace(const std::string& text);

/// Renders the report as ASCII tables: a run summary (work, critical path,
/// parallelism, bottleneck), the per-name table sorted by critical self
/// time, and the critical path of the longest trace. `top` caps the
/// per-name and per-trace rows (0 = unlimited).
std::string render_profile(const ProfileReport& report, std::size_t top = 20);

/// One JSONL line per aggregate, per name and per trace:
///   {"type":"critpath","critical_ms":...,"work_ms":...,"parallelism":...,
///    "bottleneck":"...","bottleneck_share":...}
///   {"type":"critpath_name","name":"...","count":N,...}
///   {"type":"critpath_trace","trace":ID,"critical_ms":...,...}
std::string profile_jsonl(const ProfileReport& report);

/// CSV rows (names escaped per RFC 4180, see obs::csv_escape):
///   kind,name,count,critical_count,wall_ms,self_ms,critical_self_ms,share
std::string profile_csv(const ProfileReport& report);

}  // namespace cadmc::obs
