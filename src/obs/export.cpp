#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"
#include "util/table.h"

namespace cadmc::obs {

namespace {

std::string num(double v) {
  // Shortest faithful form: integers print without a fraction.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Span timestamps need more than num()'s 6 significant digits: an hour of
// uptime is 3.6e6 ms, where %.6g rounds to whole seconds and the profiler's
// happens-before ordering (end <= start of the next span) would collapse.
std::string num_time(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

double to_double(const std::map<std::string, std::string>& event,
                 const std::string& key, double fallback = 0.0) {
  const auto it = event.find(key);
  if (it == event.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string field(const std::map<std::string, std::string>& event,
                  const std::string& key) {
  const auto it = event.find(key);
  return it != event.end() ? it->second : std::string();
}

}  // namespace

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

RunReport make_report(const MetricsRegistry& registry) {
  RunReport report;
  report.counters = registry.counter_values();
  report.gauges = registry.gauge_values();
  report.histograms = registry.histogram_values();
  for (const SpanRecord& s : registry.spans()) {
    RunReport::SpanStats& stats = report.spans[s.name];
    if (stats.count == 0) stats.depth = s.depth;
    ++stats.count;
    stats.total_wall_ms += s.wall_ms;
    if (s.modelled_ms >= 0.0) stats.total_modelled_ms += s.modelled_ms;
    RunReport::TraceStats& trace = report.traces[s.trace_id];
    ++trace.spans;
    trace.total_wall_ms += s.wall_ms;
    if (s.parent_id == 0) {
      trace.root_name = s.name;
      trace.root_wall_ms = s.wall_ms;
    }
  }
  for (auto& [name, stats] : report.spans)
    stats.mean_wall_ms = stats.total_wall_ms / static_cast<double>(stats.count);
  return report;
}

std::string render_report(const RunReport& report) {
  std::ostringstream out;
  if (!report.counters.empty() || !report.gauges.empty()) {
    util::AsciiTable table({"Metric", "Kind", "Value"});
    for (const auto& [name, v] : report.counters)
      table.add_row({name, "counter", std::to_string(v)});
    for (const auto& [name, v] : report.gauges)
      table.add_row({name, "gauge", util::format_double(v, 3)});
    out << table.to_string();
  }
  if (!report.histograms.empty()) {
    util::AsciiTable table(
        {"Histogram", "Count", "Mean", "Min", "p50", "p90", "p99", "Max"});
    for (const auto& [name, h] : report.histograms) {
      const double mean = h.count ? h.sum / static_cast<double>(h.count) : 0.0;
      table.add_row({name, std::to_string(h.count),
                     util::format_double(mean, 3), util::format_double(h.min, 3),
                     util::format_double(h.p50, 3), util::format_double(h.p90, 3),
                     util::format_double(h.p99, 3),
                     util::format_double(h.max, 3)});
    }
    out << table.to_string();
  }
  if (!report.spans.empty()) {
    util::AsciiTable table(
        {"Span", "Count", "Wall ms", "Mean ms", "Modelled ms"});
    for (const auto& [name, s] : report.spans) {
      std::string indented(static_cast<std::size_t>(s.depth) * 2, ' ');
      indented += name;
      table.add_row({indented, std::to_string(s.count),
                     util::format_double(s.total_wall_ms, 3),
                     util::format_double(s.mean_wall_ms, 3),
                     util::format_double(s.total_modelled_ms, 3)});
    }
    out << table.to_string();
  }
  // Legacy streams carry no trace ids (one bucket keyed 0) — skip the table.
  if (!report.traces.empty() &&
      !(report.traces.size() == 1 && report.traces.begin()->first == 0)) {
    util::AsciiTable table({"Trace", "Spans", "Root", "Root ms", "Total ms"});
    for (const auto& [trace_id, t] : report.traces)
      table.add_row({std::to_string(trace_id), std::to_string(t.spans),
                     t.root_name.empty() ? "?" : t.root_name,
                     util::format_double(t.root_wall_ms, 3),
                     util::format_double(t.total_wall_ms, 3)});
    out << table.to_string();
  }
  if (out.str().empty()) out << "(no metrics collected)\n";
  return out.str();
}

std::string report_csv(const RunReport& report) {
  std::ostringstream out;
  out << "kind,name,count,value,sum,min,max,p50,p90,p99\n";
  for (const auto& [name, v] : report.counters)
    out << "counter," << csv_escape(name) << ",," << v << ",,,,,,\n";
  for (const auto& [name, v] : report.gauges)
    out << "gauge," << csv_escape(name) << ",," << num(v) << ",,,,,,\n";
  for (const auto& [name, h] : report.histograms)
    out << "histogram," << csv_escape(name) << "," << h.count << ",,"
        << num(h.sum) << "," << num(h.min) << "," << num(h.max) << ","
        << num(h.p50) << "," << num(h.p90) << "," << num(h.p99) << "\n";
  for (const auto& [name, s] : report.spans)
    out << "span," << csv_escape(name) << "," << s.count << ","
        << num(s.total_modelled_ms) << "," << num(s.total_wall_ms)
        << ",,,,,\n";
  return out.str();
}

std::string to_jsonl(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const auto& [name, v] : registry.counter_values())
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << v << "}\n";
  for (const auto& [name, v] : registry.gauge_values())
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << num(v) << "}\n";
  for (const auto& [name, h] : registry.histogram_values())
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << h.count << ",\"sum\":" << num(h.sum)
        << ",\"min\":" << num(h.min) << ",\"max\":" << num(h.max)
        << ",\"p50\":" << num(h.p50) << ",\"p90\":" << num(h.p90)
        << ",\"p99\":" << num(h.p99) << "}\n";
  for (const SpanRecord& s : registry.spans())
    out << "{\"type\":\"span\",\"name\":\"" << json_escape(s.name)
        << "\",\"id\":" << s.id << ",\"parent\":" << s.parent_id
        << ",\"trace\":" << s.trace_id << ",\"depth\":" << s.depth
        << ",\"start_ms\":" << num_time(s.start_ms)
        << ",\"wall_ms\":" << num_time(s.wall_ms)
        << ",\"modelled_ms\":" << num(s.modelled_ms) << "}\n";
  return out.str();
}

bool export_jsonl(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl(registry);
  return static_cast<bool>(out);
}

std::vector<std::map<std::string, std::string>> parse_jsonl(
    const std::string& text) {
  std::vector<std::map<std::string, std::string>> events;
  for (const std::string& line : util::split(text, '\n')) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    std::map<std::string, std::string> event;
    std::size_t i = 0;
    const auto skip_ws = [&] {
      while (i < trimmed.size() &&
             std::isspace(static_cast<unsigned char>(trimmed[i])))
        ++i;
    };
    const auto parse_string = [&]() -> std::string {
      std::string s;
      ++i;  // opening quote
      while (i < trimmed.size() && trimmed[i] != '"') {
        if (trimmed[i] == '\\' && i + 1 < trimmed.size()) {
          ++i;
          switch (trimmed[i]) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            default: s.push_back(trimmed[i]);
          }
        } else {
          s.push_back(trimmed[i]);
        }
        ++i;
      }
      ++i;  // closing quote
      return s;
    };
    skip_ws();
    if (i >= trimmed.size() || trimmed[i] != '{') continue;
    ++i;
    while (i < trimmed.size()) {
      skip_ws();
      if (i < trimmed.size() && (trimmed[i] == ',' )) { ++i; continue; }
      if (i >= trimmed.size() || trimmed[i] == '}') break;
      if (trimmed[i] != '"') break;  // malformed; keep what we have
      const std::string key = parse_string();
      skip_ws();
      if (i < trimmed.size() && trimmed[i] == ':') ++i;
      skip_ws();
      if (i < trimmed.size() && trimmed[i] == '"') {
        event[key] = parse_string();
      } else {
        std::string literal;
        while (i < trimmed.size() && trimmed[i] != ',' && trimmed[i] != '}')
          literal.push_back(trimmed[i++]);
        event[key] = util::trim(literal);
      }
    }
    if (!event.empty()) events.push_back(std::move(event));
  }
  return events;
}

RunReport report_from_events(
    const std::vector<std::map<std::string, std::string>>& events) {
  RunReport report;
  for (const auto& event : events) {
    const std::string type = field(event, "type");
    const std::string name = field(event, "name");
    if (name.empty()) continue;
    if (type == "counter") {
      report.counters[name] =
          static_cast<std::int64_t>(to_double(event, "value"));
    } else if (type == "gauge") {
      report.gauges[name] = to_double(event, "value");
    } else if (type == "histogram") {
      HistogramSnapshot h;
      h.count = static_cast<std::uint64_t>(to_double(event, "count"));
      h.sum = to_double(event, "sum");
      h.min = to_double(event, "min");
      h.max = to_double(event, "max");
      h.p50 = to_double(event, "p50");
      h.p90 = to_double(event, "p90");
      h.p99 = to_double(event, "p99");
      report.histograms[name] = std::move(h);
    } else if (type == "span") {
      RunReport::SpanStats& stats = report.spans[name];
      if (stats.count == 0)
        stats.depth = static_cast<int>(to_double(event, "depth"));
      ++stats.count;
      const double wall = to_double(event, "wall_ms");
      stats.total_wall_ms += wall;
      const double modelled = to_double(event, "modelled_ms", -1.0);
      if (modelled >= 0.0) stats.total_modelled_ms += modelled;
      // Per-trace rollup: spans from different processes of one run merge
      // under their shared trace id (the cloud half arrives depth-0 in its
      // own file but carries a nonzero parent, so roots stay unambiguous).
      std::uint64_t trace_id = 0;
      try {
        trace_id = std::stoull(field(event, "trace"));
      } catch (const std::exception&) {
      }
      RunReport::TraceStats& trace = report.traces[trace_id];
      ++trace.spans;
      trace.total_wall_ms += wall;
      if (to_double(event, "parent") == 0.0) {
        trace.root_name = name;
        trace.root_wall_ms = wall;
      }
    }
  }
  for (auto& [name, stats] : report.spans)
    if (stats.count > 0)
      stats.mean_wall_ms =
          stats.total_wall_ms / static_cast<double>(stats.count);
  return report;
}

}  // namespace cadmc::obs
