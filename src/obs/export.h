// Exporters over a MetricsRegistry: a JSONL event stream (one flat JSON
// object per counter/gauge/histogram/span), a structured RunReport snapshot,
// and human-readable text / CSV renderings of that report (util::table /
// util::csv shapes, like the paper benches).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cadmc::obs {

/// End-of-run snapshot of everything a registry collected. Span records are
/// aggregated by name (individual records remain available via
/// MetricsRegistry::spans / the JSONL stream).
struct RunReport {
  struct SpanStats {
    std::uint64_t count = 0;
    int depth = 0;             // depth of the first occurrence
    double total_wall_ms = 0.0;
    double mean_wall_ms = 0.0;
    double total_modelled_ms = 0.0;  // sum over records that set it
  };

  /// Per-trace rollup: one causal tree (possibly spanning the edge and
  /// cloud processes of a field run, merged from their JSONL streams).
  struct TraceStats {
    std::uint64_t spans = 0;
    std::string root_name;       // name of the trace's root span, if seen
    double root_wall_ms = 0.0;
    double total_wall_ms = 0.0;  // sum over every span in the trace
  };

  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanStats> spans;
  std::map<std::uint64_t, TraceStats> traces;
};

RunReport make_report(const MetricsRegistry& registry);

/// Renders the report as ASCII tables (Counters/Gauges, Histograms, Spans).
std::string render_report(const RunReport& report);

/// Renders the report as CSV rows: kind,name,count,value,sum,min,max,p50,p90,p99.
std::string report_csv(const RunReport& report);

/// One JSONL line per metric and span. Example lines:
///   {"type":"counter","name":"cadmc.search.episodes","value":150}
///   {"type":"span","name":"compose","id":4,"parent":3,"depth":1,
///    "start_ms":12.834,"wall_ms":0.112,"modelled_ms":-1}
std::string to_jsonl(const MetricsRegistry& registry);

/// Writes to_jsonl() to `path`; returns false on I/O failure.
bool export_jsonl(const MetricsRegistry& registry, const std::string& path);

/// Parses a stream of flat JSON objects (string/number values — the shape
/// to_jsonl emits) into key->literal maps, one per line. String values are
/// unescaped; numbers keep their textual form. Blank lines are skipped.
std::vector<std::map<std::string, std::string>> parse_jsonl(
    const std::string& text);

/// Rebuilds an aggregate report from parsed JSONL events (the `report` CLI
/// subcommand). Histogram quantiles are taken from the event fields.
RunReport report_from_events(
    const std::vector<std::map<std::string, std::string>>& events);

std::string json_escape(const std::string& s);

/// RFC 4180 field escaping: a value containing a comma, double quote, CR or
/// LF is wrapped in double quotes with inner quotes doubled; anything else
/// passes through unchanged. Applied to every name report_csv emits so a
/// hostile span name ("conv,3x3" or a name with a newline) cannot desync the
/// CSV columns.
std::string csv_escape(const std::string& s);

}  // namespace cadmc::obs
