#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "util/stats.h"
#include "util/string_util.h"

namespace cadmc::obs {

namespace {
std::atomic<bool> g_enabled{false};
std::once_flag g_env_once;
}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool init_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("CADMC_METRICS");
    if (env == nullptr) return;
    const std::string v = util::to_lower(env);
    if (v == "1" || v == "true" || v == "on") set_enabled(true);
  });
  return enabled();
}

std::vector<double> Histogram::default_bounds() {
  return {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
          200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (samples_.size() < kMaxSamples) samples_.push_back(v);
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  if (samples_.size() == 1) {
    // A single observation is the whole distribution (see the
    // HistogramSnapshot contract in metrics.h).
    s.p50 = s.p90 = s.p99 = samples_.front();
  } else if (!samples_.empty()) {
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.p50 = util::quantile(sorted, 0.50);
    s.p90 = util::quantile(sorted, 0.90);
    s.p99 = util::quantile(sorted, 0.99);
  }
  // count == 0 leaves every quantile at 0.0 by construction — never NaN.
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

void MetricsRegistry::record_span(SpanRecord record) {
  histogram("cadmc.span." + record.name).observe(record.wall_ms);
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::map<std::string, std::int64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c.value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g.value();
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histogram_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h.snapshot();
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  dropped_spans_ = 0;
}

#ifndef CADMC_OBS_DISABLED
void count(const std::string& name, std::int64_t n) {
  if (!enabled()) return;
  MetricsRegistry::global().counter(name).add(n);
}

void observe(const std::string& name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().histogram(name).observe(v);
}

void set_gauge(const std::string& name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().gauge(name).set(v);
}
#endif

}  // namespace cadmc::obs
