// Metrics registry — named counters, gauges and fixed-bucket histograms for
// the whole stack (metric naming scheme: "cadmc.<area>.<name>"). A global
// default registry serves the common case; library users that need isolation
// can inject their own instance (e.g. runtime::EngineConfig::metrics).
//
// Cost model: every instrumentation site is gated by the runtime flag
// `obs::enabled()` (one relaxed atomic load when off) and the whole layer can
// be compiled out with -DCADMC_OBS_DISABLED, so the Table I/IV latency
// numbers are unaffected by the disabled path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cadmc::obs {

/// Runtime switch. Defaults to off so benches/tests pay nothing unless they
/// opt in.
void set_enabled(bool on);
bool enabled();

/// Reads CADMC_METRICS from the environment once ("1"/"true"/"on" enables
/// collection); later calls are no-ops. Returns the resulting enabled state.
bool init_from_env();

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of a histogram, with quantiles precomputed via
/// util::quantile over the retained samples.
///
/// Degenerate-count contract (pinned by Histogram.QuantileEdges):
///  * count == 0 — p50/p90/p99 (and min/max/sum) are all 0.0, never NaN:
///    exporters print these fields verbatim and bare `nan` is not valid
///    JSON. `count` is the emptiness signal; consumers must check it before
///    reading the quantiles.
///  * count == 1 — every quantile equals the single observation (the sample
///    is the whole distribution; no interpolation happens).
struct HistogramSnapshot {
  std::vector<double> bounds;          // bucket upper bounds (le semantics)
  std::vector<std::uint64_t> counts;   // bounds.size() + 1 (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Fixed-bucket histogram. Also retains up to kMaxSamples raw observations
/// (first-come) so snapshots can report interpolated p50/p90/p99 rather than
/// bucket-resolution estimates; runs here are short enough that the cap is
/// rarely hit.
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 8192;

  /// Default bounds cover the paper's millisecond scales (0.5 ms .. 5 s).
  static std::vector<double> default_bounds();

  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One closed tracing span (see obs/span.h for the RAII producer).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = no parent
  std::uint64_t trace_id = 0;   // causal tree this span belongs to
  std::string name;
  int depth = 0;
  double start_ms = 0.0;     // ms since process start, shifted into the
                             // trace root's timebase for remote spans
  double wall_ms = 0.0;      // measured wall-clock duration
  double modelled_ms = -1.0; // analytic-model duration; < 0 when unset
};

/// Thread-safe named-metric registry. Metric objects are created on first
/// use and live as long as the registry; returned references stay valid.
class MetricsRegistry {
 public:
  /// Process-wide default instance.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  /// Appends a closed span and folds its wall duration into the
  /// "cadmc.span.<name>" histogram. Retention is capped at kMaxSpans.
  static constexpr std::size_t kMaxSpans = 100'000;
  void record_span(SpanRecord record);

  std::vector<SpanRecord> spans() const;
  std::map<std::string, std::int64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;
  std::map<std::string, HistogramSnapshot> histogram_values() const;

  /// Drops every metric and retained span.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<SpanRecord> spans_;
  std::size_t dropped_spans_ = 0;
};

#ifndef CADMC_OBS_DISABLED
/// Convenience helpers against the global registry; no-ops while disabled.
void count(const std::string& name, std::int64_t n = 1);
void observe(const std::string& name, double v);
void set_gauge(const std::string& name, double v);
#else
inline void count(const std::string&, std::int64_t = 1) {}
inline void observe(const std::string&, double) {}
inline void set_gauge(const std::string&, double) {}
#endif

}  // namespace cadmc::obs
