#include "obs/snapshot.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/export.h"
#include "obs/span.h"

namespace cadmc::obs {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

SnapshotExporter::SnapshotExporter(Options options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &MetricsRegistry::global();
  if (options_.interval_ms < 1) options_.interval_ms = 1;
  out_.open(options_.path, std::ios::app);
  thread_ = std::thread([this] { run(); });
}

SnapshotExporter::~SnapshotExporter() { stop(); }

void SnapshotExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_snapshot_now();  // final state, so short runs still leave a record
}

bool SnapshotExporter::write_snapshot_now() {
  // Snapshot the registry outside the I/O lock: the registry has its own
  // mutex, and holding ours during collection would stall the caller.
  const auto counters = options_.registry->counter_values();
  const auto gauges = options_.registry->gauge_values();
  const auto histograms = options_.registry->histogram_values();
  const std::uint64_t seq =
      snapshots_.fetch_add(1, std::memory_order_relaxed) + 1;

  std::ostringstream block;
  block << "{\"type\":\"snapshot\",\"seq\":" << seq
        << ",\"t_ms\":" << num(steady_now_ms())
        << ",\"counters\":" << counters.size()
        << ",\"gauges\":" << gauges.size()
        << ",\"histograms\":" << histograms.size() << "}\n";
  for (const auto& [name, v] : counters)
    block << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
          << "\",\"value\":" << v << ",\"seq\":" << seq << "}\n";
  for (const auto& [name, v] : gauges)
    block << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
          << "\",\"value\":" << num(v) << ",\"seq\":" << seq << "}\n";
  for (const auto& [name, h] : histograms)
    block << "{\"type\":\"histogram\",\"name\":\"" << json_escape(name)
          << "\",\"count\":" << h.count << ",\"sum\":" << num(h.sum)
          << ",\"min\":" << num(h.min) << ",\"max\":" << num(h.max)
          << ",\"p50\":" << num(h.p50) << ",\"p90\":" << num(h.p90)
          << ",\"p99\":" << num(h.p99) << ",\"seq\":" << seq << "}\n";

  std::lock_guard<std::mutex> lock(io_mutex_);
  if (!out_) return false;
  out_ << block.str();
  out_.flush();
  return static_cast<bool>(out_);
}

void SnapshotExporter::run() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stopping_) {
    if (wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                       [this] { return stopping_; }))
      break;
    lock.unlock();
    write_snapshot_now();
    lock.lock();
  }
}

std::unique_ptr<SnapshotExporter> SnapshotExporter::from_env() {
  const char* interval_env = std::getenv("CADMC_METRICS_INTERVAL_MS");
  if (interval_env == nullptr || interval_env[0] == '\0') return nullptr;
  const int interval_ms = std::atoi(interval_env);
  if (interval_ms <= 0) return nullptr;
  Options options;
  options.interval_ms = interval_ms;
  const char* path_env = std::getenv("CADMC_METRICS_SNAPSHOT");
  if (path_env != nullptr && path_env[0] != '\0') options.path = path_env;
  set_enabled(true);  // a snapshot of a disabled registry would be empty
  return std::make_unique<SnapshotExporter>(std::move(options));
}

}  // namespace cadmc::obs
