// Periodic metrics-snapshot exporter: a background thread that appends a
// JSONL heartbeat plus the current counter/gauge/histogram values to a file
// every interval, so a serving process (gateway, field emulator) can be
// observed *while it runs* — `tail -f` the file, or feed it to `cadmc
// report`. Span records are deliberately not re-dumped per tick (they are
// cumulative and unbounded); the end-of-run exporters cover those.
//
// Enabled from the environment: CADMC_METRICS_INTERVAL_MS=<ms> turns the
// exporter on (and implies CADMC_METRICS=1 — a snapshot of a disabled
// registry would be empty), CADMC_METRICS_SNAPSHOT=<path> overrides the
// default output path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace cadmc::obs {

class SnapshotExporter {
 public:
  struct Options {
    std::string path = "cadmc_metrics_live.jsonl";
    int interval_ms = 1000;
    MetricsRegistry* registry = nullptr;  // global when null
  };

  /// Opens `options.path` for append and starts the exporter thread. The
  /// first snapshot is written after one interval.
  explicit SnapshotExporter(Options options);
  ~SnapshotExporter();
  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Stops and joins the exporter thread, writing one final snapshot so a
  /// short-lived process still leaves a record. Idempotent.
  void stop();

  /// Writes one snapshot block immediately (also what the thread calls each
  /// tick). Thread-safe. Returns false on I/O failure.
  bool write_snapshot_now();

  std::uint64_t snapshots_written() const {
    return snapshots_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return options_.path; }

  /// Builds an exporter from CADMC_METRICS_INTERVAL_MS /
  /// CADMC_METRICS_SNAPSHOT, enabling metrics collection as a side effect.
  /// Returns null when the interval variable is unset or not a positive
  /// integer.
  static std::unique_ptr<SnapshotExporter> from_env();

 private:
  void run();

  Options options_;
  std::ofstream out_;
  std::mutex io_mutex_;    // serializes write_snapshot_now vs the thread
  std::mutex wake_mutex_;  // condition variable plumbing for prompt stop
  std::condition_variable wake_;
  bool stopping_ = false;  // guarded by wake_mutex_
  std::atomic<std::uint64_t> snapshots_{0};
  std::thread thread_;
};

}  // namespace cadmc::obs
