#include "obs/span.h"

#include <unistd.h>

#include <chrono>
#include <vector>

#include "obs/trace_export.h"

namespace cadmc::obs {

namespace {
using Clock = std::chrono::steady_clock;

const Clock::time_point g_process_start = Clock::now();
std::atomic<std::uint64_t> g_next_span_id{1};

// Trace ids carry the pid in their upper bits so the edge and cloud
// processes of one field run never mint the same id; values stay below
// 2^48 so they survive JSON number round-trips.
std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{1};
  static const std::uint64_t pid_part =
      (static_cast<std::uint64_t>(::getpid()) & 0xFFFFu) << 32;
  return pid_part | (counter.fetch_add(1, std::memory_order_relaxed) &
                     0xFFFFFFFFu);
}

struct LiveSpan {
  MetricsRegistry* registry;
  std::uint64_t id;
  std::uint64_t trace_id;
  double clock_offset_ms;
};
// Innermost live spans of this thread; parentage is per (thread, registry)
// so spans recorded into an injected registry do not adopt parents from the
// global one.
thread_local std::vector<LiveSpan> t_span_stack;
thread_local RemoteContext t_remote_context;

const LiveSpan* innermost_in(const MetricsRegistry* registry) {
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it)
    if (it->registry == registry) return &*it;
  return nullptr;
}
}  // namespace

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(Clock::now() -
                                                   g_process_start)
      .count();
}

std::uint64_t record_external_span(const char* name, std::uint64_t trace_id,
                                   std::uint64_t parent_id, double start_ms,
                                   double wall_ms, MetricsRegistry* registry,
                                   int depth, FlightEventKind flight_kind) {
  const bool to_metrics = enabled();
  const bool to_flight = flight_recording();
  if (!to_metrics && !to_flight) return 0;
  SpanRecord record;
  record.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record.parent_id = parent_id;
  record.trace_id = trace_id;
  record.name = name == nullptr ? "?" : name;
  record.depth = depth;
  record.start_ms = start_ms;
  record.wall_ms = wall_ms;
  const std::uint64_t id = record.id;
  if (to_flight)
    FlightRecorder::global().record(flight_kind, record.name.c_str(), trace_id,
                                    id, parent_id, start_ms, wall_ms);
  if (to_metrics) {
    MetricsRegistry* target =
        registry != nullptr ? registry : &MetricsRegistry::global();
    target->record_span(std::move(record));
  }
  return id;
}

RemoteSpanScope::RemoteSpanScope(const RemoteContext& ctx)
    : previous_(t_remote_context) {
  if (ctx.trace_id != 0) t_remote_context = ctx;
}

RemoteSpanScope::~RemoteSpanScope() { t_remote_context = previous_; }

OutgoingContext outgoing_context() {
  if (t_span_stack.empty()) return {};
  const LiveSpan& innermost = t_span_stack.back();
  return {innermost.trace_id, innermost.id};
}

ScopedSpan::ScopedSpan(const char* name, MetricsRegistry* registry) {
  to_metrics_ = enabled();
  to_flight_ = flight_recording();
  if (!to_metrics_ && !to_flight_) return;
  active_ = true;
  registry_ = registry != nullptr ? registry : &MetricsRegistry::global();
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  int depth = 0;
  for (const LiveSpan& s : t_span_stack)
    if (s.registry == registry_) ++depth;
  depth_ = depth;
  if (const LiveSpan* parent = innermost_in(registry_)) {
    parent_id_ = parent->id;
    trace_id_ = parent->trace_id;
    clock_offset_ms_ = parent->clock_offset_ms;
  } else if (t_remote_context.trace_id != 0) {
    parent_id_ = t_remote_context.parent_span_id;
    trace_id_ = t_remote_context.trace_id;
    clock_offset_ms_ = t_remote_context.clock_offset_ms;
  } else {
    trace_id_ = next_trace_id();
  }
  t_span_stack.push_back({registry_, id_, trace_id_, clock_offset_ms_});
  start_ms_ = steady_now_ms();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_id_;
  record.trace_id = trace_id_;
  record.name = name_;
  record.depth = depth_;
  record.start_ms = start_ms_ + clock_offset_ms_;
  record.wall_ms = steady_now_ms() - start_ms_;
  record.modelled_ms = modelled_ms_;
  // Destruction order is LIFO within a thread, but be tolerant of exotic
  // lifetimes: pop the newest stack entry belonging to this span.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->id == id_) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  if (to_flight_)
    FlightRecorder::global().record_span(record);
  if (to_metrics_ && enabled()) registry_->record_span(std::move(record));
}

}  // namespace cadmc::obs
