#include "obs/span.h"

#include <chrono>
#include <vector>

namespace cadmc::obs {

namespace {
using Clock = std::chrono::steady_clock;

const Clock::time_point g_process_start = Clock::now();
std::atomic<std::uint64_t> g_next_span_id{1};

struct LiveSpan {
  MetricsRegistry* registry;
  std::uint64_t id;
};
// Innermost live spans of this thread; parentage is per (thread, registry)
// so spans recorded into an injected registry do not adopt parents from the
// global one.
thread_local std::vector<LiveSpan> t_span_stack;

std::uint64_t innermost_in(const MetricsRegistry* registry) {
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it)
    if (it->registry == registry) return it->id;
  return 0;
}
}  // namespace

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(Clock::now() -
                                                   g_process_start)
      .count();
}

ScopedSpan::ScopedSpan(std::string name, MetricsRegistry* registry) {
  if (!enabled()) return;
  active_ = true;
  registry_ = registry != nullptr ? registry : &MetricsRegistry::global();
  name_ = std::move(name);
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = innermost_in(registry_);
  int depth = 0;
  for (const LiveSpan& s : t_span_stack)
    if (s.registry == registry_) ++depth;
  depth_ = depth;
  t_span_stack.push_back({registry_, id_});
  start_ms_ = steady_now_ms();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_id_;
  record.name = std::move(name_);
  record.depth = depth_;
  record.start_ms = start_ms_;
  record.wall_ms = steady_now_ms() - start_ms_;
  record.modelled_ms = modelled_ms_;
  // Destruction order is LIFO within a thread, but be tolerant of exotic
  // lifetimes: pop the newest stack entry belonging to this span.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->id == id_) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  registry_->record_span(std::move(record));
}

}  // namespace cadmc::obs
