// Scoped tracing spans. A ScopedSpan measures the wall-clock time between
// its construction and destruction, nests under the innermost live span on
// the same thread (parent/child ids + depth), and can carry the analytic
// model's duration alongside the measured one (`set_modelled_ms`) — the
// hot paths report both so the Fig. 5 calibration gap is visible per stage.
//
// Distributed tracing: every span belongs to a trace (a causal tree).
// A root span (no live parent on its thread) opens a fresh trace; a
// RemoteSpanScope installs a parent received over the wire (see
// runtime/transport.h) so spans on the receiving side — typically the cloud
// half of a partitioned inference — join the sender's trace, parented under
// the sender's request span and time-shifted into the sender's clock.
//
// Spans are inert (no clock read, no allocation — the name parameter is a
// `const char*` precisely so no std::string is materialised) while both
// obs::enabled() and obs::flight_recording() are false, and the CADMC_SPAN
// macro compiles away under -DCADMC_OBS_DISABLED.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace cadmc::obs {

class ScopedSpan {
 public:
  /// Records into `registry` (the global registry when null) on destruction.
  /// `name` must outlive the span (string literals do).
  explicit ScopedSpan(const char* name, MetricsRegistry* registry = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when collection was enabled at construction time.
  bool active() const { return active_; }

  std::uint64_t id() const { return id_; }
  std::uint64_t trace_id() const { return trace_id_; }

  void set_modelled_ms(double ms) { modelled_ms_ = ms; }
  void add_modelled_ms(double ms) {
    modelled_ms_ = (modelled_ms_ < 0.0 ? 0.0 : modelled_ms_) + ms;
  }

 private:
  bool active_ = false;
  bool to_metrics_ = false;  // record into the registry on destruction
  bool to_flight_ = false;   // record into the flight recorder on destruction
  MetricsRegistry* registry_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t trace_id_ = 0;
  int depth_ = 0;
  double start_ms_ = 0.0;
  double clock_offset_ms_ = 0.0;  // added to start_ms when recording
  double modelled_ms_ = -1.0;
};

/// A parent span received from another process/thread over the wire.
/// `clock_offset_ms` is added to local steady_now_ms() readings to express
/// spans in the sender's timebase (sender_clock_at_send - local_clock_at_recv).
struct RemoteContext {
  std::uint64_t trace_id = 0;       // 0 = no remote parent (scope is a no-op)
  std::uint64_t parent_span_id = 0;
  double clock_offset_ms = 0.0;
};

/// Installs `ctx` as this thread's remote parent for the scope's lifetime:
/// spans opened with no live local parent adopt its trace id, parent span id
/// and clock offset. Restores the previous remote context on destruction.
class RemoteSpanScope {
 public:
  explicit RemoteSpanScope(const RemoteContext& ctx);
  ~RemoteSpanScope();
  RemoteSpanScope(const RemoteSpanScope&) = delete;
  RemoteSpanScope& operator=(const RemoteSpanScope&) = delete;

 private:
  RemoteContext previous_;
};

/// The innermost live span of the calling thread (any registry), as a
/// context to propagate over the wire. All-zero when no span is live.
struct OutgoingContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};
OutgoingContext outgoing_context();

/// Milliseconds on the steady clock since process start (span timebase).
double steady_now_ms();

/// Records a span for an interval that was measured outside ScopedSpan's
/// RAII reach — e.g. the gateway's admission-queue wait, whose start was
/// stamped by the reactor thread and whose end is observed by the worker
/// that dequeues the request. Allocates a fresh span id, parents the span
/// explicitly under (`trace_id`, `parent_id`), and records into `registry`
/// (global when null) and the flight recorder exactly like a closing
/// ScopedSpan. `start_ms` is in the recorded timebase (caller applies any
/// remote clock offset); `flight_kind` tags the flight-recorder copy (e.g.
/// FlightEventKind::kQueue for the gateway's queue-wait spans). No-op
/// returning 0 while both obs::enabled() and obs::flight_recording() are
/// off; otherwise returns the span id.
std::uint64_t record_external_span(
    const char* name, std::uint64_t trace_id, std::uint64_t parent_id,
    double start_ms, double wall_ms, MetricsRegistry* registry = nullptr,
    int depth = 0, FlightEventKind flight_kind = FlightEventKind::kSpan);

#ifndef CADMC_OBS_DISABLED
#define CADMC_SPAN_CONCAT2(a, b) a##b
#define CADMC_SPAN_CONCAT(a, b) CADMC_SPAN_CONCAT2(a, b)
/// Anonymous span covering the rest of the enclosing scope.
#define CADMC_SPAN(name) \
  ::cadmc::obs::ScopedSpan CADMC_SPAN_CONCAT(cadmc_span_, __LINE__)(name)
#else
#define CADMC_SPAN(name) ((void)0)
#endif

}  // namespace cadmc::obs
