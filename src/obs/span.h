// Scoped tracing spans. A ScopedSpan measures the wall-clock time between
// its construction and destruction, nests under the innermost live span on
// the same thread (parent/child ids + depth), and can carry the analytic
// model's duration alongside the measured one (`set_modelled_ms`) — the
// hot paths report both so the Fig. 5 calibration gap is visible per stage.
//
// Spans are inert (no clock read, no allocation) while obs::enabled() is
// false, and the CADMC_SPAN macro compiles away under -DCADMC_OBS_DISABLED.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace cadmc::obs {

class ScopedSpan {
 public:
  /// Records into `registry` (the global registry when null) on destruction.
  explicit ScopedSpan(std::string name, MetricsRegistry* registry = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when collection was enabled at construction time.
  bool active() const { return active_; }

  void set_modelled_ms(double ms) { modelled_ms_ = ms; }
  void add_modelled_ms(double ms) {
    modelled_ms_ = (modelled_ms_ < 0.0 ? 0.0 : modelled_ms_) + ms;
  }

 private:
  bool active_ = false;
  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  int depth_ = 0;
  double start_ms_ = 0.0;
  double modelled_ms_ = -1.0;
};

/// Milliseconds on the steady clock since process start (span timebase).
double steady_now_ms();

#ifndef CADMC_OBS_DISABLED
#define CADMC_SPAN_CONCAT2(a, b) a##b
#define CADMC_SPAN_CONCAT(a, b) CADMC_SPAN_CONCAT2(a, b)
/// Anonymous span covering the rest of the enclosing scope.
#define CADMC_SPAN(name) \
  ::cadmc::obs::ScopedSpan CADMC_SPAN_CONCAT(cadmc_span_, __LINE__)(name)
#else
#define CADMC_SPAN(name) ((void)0)
#endif

}  // namespace cadmc::obs
