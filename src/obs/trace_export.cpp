#include "obs/trace_export.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/export.h"
#include "obs/span.h"

namespace cadmc::obs {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_chrome_event(std::ostringstream& out, bool& first,
                         const std::string& name, std::uint64_t trace_id,
                         std::uint64_t id, std::uint64_t parent_id,
                         double start_ms, double wall_ms, double modelled_ms) {
  if (!first) out << ",\n";
  first = false;
  out << "{\"name\":\"" << json_escape(name)
      << "\",\"cat\":\"cadmc\",\"ph\":\"X\",\"ts\":" << num(start_ms * 1000.0)
      << ",\"dur\":" << num(wall_ms * 1000.0) << ",\"pid\":" << trace_id
      << ",\"tid\":1,\"args\":{\"id\":" << id << ",\"parent\":" << parent_id
      << ",\"modelled_ms\":" << num(modelled_ms) << "}}";
}

double event_double(const std::map<std::string, std::string>& event,
                    const std::string& key, double fallback = 0.0) {
  const auto it = event.find(key);
  if (it == event.end() || it->second.empty()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::uint64_t event_u64(const std::map<std::string, std::string>& event,
                        const std::string& key) {
  const auto it = event.find(key);
  if (it == event.end() || it->second.empty()) return 0;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    return 0;
  }
}

std::atomic<bool> g_flight_on{false};
std::mutex g_dump_mutex;           // guards the path string and dump writes
std::string g_dump_path;           // empty = not resolved yet
std::atomic<std::int64_t> g_last_dump_ms{-1'000'000};

const char* kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpan: return "span";
    case FlightEventKind::kFault: return "fault";
    case FlightEventKind::kBreaker: return "breaker";
    case FlightEventKind::kQueue: return "queue";
  }
  return "?";
}

}  // namespace

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const SpanRecord& s : spans)
    append_chrome_event(out, first, s.name, s.trace_id, s.id, s.parent_id,
                        s.start_ms, s.wall_ms, s.modelled_ms);
  out << "\n]}\n";
  return out.str();
}

std::string to_chrome_trace(const MetricsRegistry& registry) {
  return to_chrome_trace(registry.spans());
}

bool export_chrome_trace(const MetricsRegistry& registry,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace(registry);
  return static_cast<bool>(out);
}

std::string chrome_trace_from_events(
    const std::vector<std::map<std::string, std::string>>& events) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& event : events) {
    const auto type = event.find("type");
    if (type == event.end() || type->second != "span") continue;
    const auto name = event.find("name");
    append_chrome_event(out, first,
                        name != event.end() ? name->second : std::string("?"),
                        event_u64(event, "trace"), event_u64(event, "id"),
                        event_u64(event, "parent"),
                        event_double(event, "start_ms"),
                        event_double(event, "wall_ms"),
                        event_double(event, "modelled_ms", -1.0));
  }
  out << "\n]}\n";
  return out.str();
}

void set_flight_recording(bool on) {
  g_flight_on.store(on, std::memory_order_relaxed);
}

bool flight_recording() {
  return g_flight_on.load(std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::record(FlightEventKind kind, const char* name,
                            std::uint64_t trace_id, std::uint64_t span_id,
                            std::uint64_t parent_id, double t_ms,
                            double dur_ms) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  Event event;
  event.kind = kind;
  std::strncpy(event.name, name == nullptr ? "?" : name, kNameCapacity - 1);
  event.name[kNameCapacity - 1] = '\0';
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_id = parent_id;
  event.t_ms = t_ms;
  event.dur_ms = dur_ms;
  // Seqlock write: odd while in flight, 2*ticket+2 once published. A reader
  // that sees mismatched or odd sequence numbers discards the slot. The
  // payload goes through relaxed word atomics between the fences (see the
  // Slot comment in the header).
  std::uint64_t staged[kSlotWords] = {};
  std::memcpy(staged, &event, sizeof(event));
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < kSlotWords; ++w)
    slot.words[w].store(staged[w], std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

void FlightRecorder::record_span(const SpanRecord& span) {
  record(FlightEventKind::kSpan, span.name.c_str(), span.trace_id, span.id,
         span.parent_id, span.start_ms, span.wall_ms);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t count = head < capacity_ ? head : capacity_;
  std::vector<Event> events;
  events.reserve(count);
  for (std::uint64_t ticket = head - count; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket % capacity_];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != 2 * ticket + 2) continue;  // torn or already recycled
    std::uint64_t staged[kSlotWords];
    for (std::size_t w = 0; w < kSlotWords; ++w)
      staged[w] = slot.words[w].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
    Event copy;
    std::memcpy(&copy, staged, sizeof(copy));
    events.push_back(copy);
  }
  return events;
}

void FlightRecorder::clear() {
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].seq.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
}

bool FlightRecorder::dump_jsonl(const std::string& path,
                                const std::string& reason) const {
  const std::vector<Event> events = snapshot();
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"type\":\"flight_dump\",\"reason\":\"" << json_escape(reason)
      << "\",\"events\":" << events.size() << ",\"recorded\":" << recorded()
      << "}\n";
  for (const Event& e : events) {
    out << "{\"type\":\"flight\",\"kind\":\"" << kind_name(e.kind)
        << "\",\"name\":\"" << json_escape(e.name) << "\",\"trace\":"
        << e.trace_id << ",\"id\":" << e.span_id << ",\"parent\":"
        << e.parent_id << ",\"t_ms\":" << num(e.t_ms) << ",\"dur_ms\":"
        << num(e.dur_ms) << "}\n";
  }
  return static_cast<bool>(out);
}

void set_flight_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_dump_mutex);
  g_dump_path = path;
}

std::string flight_dump_path() {
  std::lock_guard<std::mutex> lock(g_dump_mutex);
  if (g_dump_path.empty()) {
    const char* env = std::getenv("CADMC_FLIGHT_DUMP");
    g_dump_path = env != nullptr && env[0] != '\0' ? env
                                                   : "cadmc_flight.jsonl";
  }
  return g_dump_path;
}

void flight_event(FlightEventKind kind, const char* name) {
  if (!flight_recording()) return;
  const OutgoingContext ctx = outgoing_context();
  FlightRecorder::global().record(kind, name, ctx.trace_id, 0, ctx.span_id,
                                  steady_now_ms(), 0.0);
}

void flight_fault(FlightEventKind kind, const char* name) {
  if (!flight_recording()) return;
  flight_event(kind, name);
  // Rate limit: a reconnect storm must not turn every failure into a file
  // write; the ring still holds the history for the dump that does land.
  // Breaker transitions bypass the limit — they are rare by construction
  // (one per outage) and usually follow within milliseconds of the fault
  // dump that would otherwise swallow them.
  const auto now = static_cast<std::int64_t>(steady_now_ms());
  if (kind != FlightEventKind::kBreaker) {
    std::int64_t last = g_last_dump_ms.load(std::memory_order_relaxed);
    if (now - last < 250) return;
    if (!g_last_dump_ms.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed))
      return;
  } else {
    g_last_dump_ms.store(now, std::memory_order_relaxed);
  }
  count("cadmc.obs.flight_dumps");
  FlightRecorder::global().dump_jsonl(flight_dump_path(), name);
}

}  // namespace cadmc::obs
