// Trace export + fault flight recorder.
//
// * Chrome trace-event / Perfetto export: renders a registry's span stream
//   (or span events parsed back from JSONL metric files of several
//   processes) as a `chrome://tracing`-loadable JSON document. Each trace id
//   becomes one process row; spans nest by time containment, so the causal
//   tree measure-bandwidth -> fork-select -> edge compute -> transfer ->
//   cloud compute -> reply reads as one flame chart even when the edge and
//   cloud halves ran in different processes.
//
// * FlightRecorder: a fixed-capacity, lock-free (per-slot seqlock) ring
//   buffer of the most recent spans and fault/breaker events. It is always
//   on in field mode and costs one relaxed atomic increment plus a bounded
//   memcpy per event; when something goes wrong (TransportError, deadline
//   miss, circuit-breaker open) the last N events are dumped to JSONL for
//   postmortems — the black box the aggregate fault counters cannot be.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace cadmc::obs {

// ---------------------------------------------------------------------------
// Chrome trace-event export.

/// Renders spans as a Chrome trace-event JSON document ("traceEvents" array
/// of complete "X" slices; ts/dur in microseconds). pid = trace id, so each
/// causal tree gets its own track group in Perfetto.
std::string to_chrome_trace(const std::vector<SpanRecord>& spans);
std::string to_chrome_trace(const MetricsRegistry& registry);

/// Writes to_chrome_trace() to `path`; returns false on I/O failure.
bool export_chrome_trace(const MetricsRegistry& registry,
                         const std::string& path);

/// Builds a Chrome trace from span events parsed out of one or more JSONL
/// metric streams (obs::parse_jsonl shape) — the merge path for the separate
/// edge/cloud processes of a field run, keyed by their shared trace ids.
std::string chrome_trace_from_events(
    const std::vector<std::map<std::string, std::string>>& events);

// ---------------------------------------------------------------------------
// Flight recorder.

enum class FlightEventKind { kSpan, kFault, kBreaker, kQueue };

/// Runtime switch for flight recording (independent of obs::enabled() —
/// field mode turns it on unconditionally). Off by default.
void set_flight_recording(bool on);
bool flight_recording();

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::size_t kNameCapacity = 48;

  struct Event {
    FlightEventKind kind = FlightEventKind::kSpan;
    char name[kNameCapacity] = {};
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    double t_ms = 0.0;    // span start / event time, steady ms
    double dur_ms = 0.0;  // span wall time; 0 for point events
  };

  /// Process-wide default instance (the one the runtime hooks feed).
  static FlightRecorder& global();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Lock-free: a relaxed ticket fetch_add plus a seqlock-guarded slot
  /// write. Safe to call from any thread, including while another thread
  /// snapshots; a reader skips slots it catches mid-write.
  void record(FlightEventKind kind, const char* name, std::uint64_t trace_id,
              std::uint64_t span_id, std::uint64_t parent_id, double t_ms,
              double dur_ms);
  void record_span(const SpanRecord& span);

  /// The retained events, oldest first. Torn slots (overwritten while being
  /// copied) are dropped rather than returned corrupt.
  std::vector<Event> snapshot() const;

  /// Writes a JSONL dump: one header line ({"type":"flight_dump", ...})
  /// followed by one line per event. Returns false on I/O failure.
  bool dump_jsonl(const std::string& path, const std::string& reason) const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  void clear();

 private:
  // Event payloads are staged through word-sized atomics (relaxed loads and
  // stores bracketed by the seqlock fences) rather than a plain struct copy:
  // a plain copy racing a writer is undefined behaviour in the C++ memory
  // model even though the seqlock discards the torn value, and TSan rightly
  // flags it. Relaxed word accesses compile to the same machine code.
  static constexpr std::size_t kSlotWords = (sizeof(Event) + 7) / 8;
  static_assert(std::is_trivially_copyable_v<Event>);

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 2*ticket+1 while writing, +2 done
    std::atomic<std::uint64_t> words[kSlotWords] = {};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Destination for automatic dumps. Defaults to "cadmc_flight.jsonl" in the
/// working directory; the CADMC_FLIGHT_DUMP environment variable overrides
/// the default the first time it is consulted.
void set_flight_dump_path(const std::string& path);
std::string flight_dump_path();

/// Records a fault/breaker event into the global recorder (no-op while
/// flight recording is off). The current thread's innermost span, if any,
/// provides the trace linkage.
void flight_event(FlightEventKind kind, const char* name);

/// flight_event + dump of the whole ring to flight_dump_path(). Dumps are
/// rate-limited (at most one per 250 ms) so a failure storm cannot turn the
/// hot path into file I/O. Counted under cadmc.obs.flight_dumps.
void flight_fault(FlightEventKind kind, const char* name);

}  // namespace cadmc::obs
