#include "partition/dag_expand.h"

#include <stdexcept>

#include "nn/composite.h"

namespace cadmc::partition {

namespace {
int add_node(DnnDag& dag, std::string name, double edge_ms, double cloud_ms,
             std::int64_t output_bytes) {
  DnnDag::Node node;
  node.name = std::move(name);
  node.edge_cost_ms = edge_ms;
  node.cloud_cost_ms = cloud_ms;
  node.output_bytes = output_bytes;
  dag.nodes.push_back(std::move(node));
  return static_cast<int>(dag.nodes.size()) - 1;
}

std::int64_t shape_bytes(const nn::Shape& s) {
  return tensor::shape_numel(s) * 4;
}
}  // namespace

DnnDag expand_residual_dag(const nn::Model& model,
                           const PartitionEvaluator& eval) {
  DnnDag dag;
  nn::Shape shape = model.input_shape();
  int tail = add_node(dag, "input", 0.0, 0.0, shape_bytes(shape));

  for (std::size_t i = 0; i < model.size(); ++i) {
    const nn::Layer& layer = model.layer(i);
    const auto* res = dynamic_cast<const nn::ResidualBlock*>(&layer);
    if (res == nullptr) {
      const int node = add_node(
          dag, layer.name(), eval.edge_model().layer_latency_ms(layer, shape),
          eval.cloud_model().layer_latency_ms(layer, shape),
          shape_bytes(layer.output_shape(shape)));
      dag.nodes[static_cast<std::size_t>(tail)].successors.push_back(node);
      tail = node;
      shape = layer.output_shape(shape);
      continue;
    }

    // Residual unit: expand both branches between `tail` (pre) and `merge`.
    const nn::Shape out_shape = res->output_shape(shape);
    const int pre = tail;

    // Main path.
    nn::Shape cursor = shape;
    int main_tail = pre;
    for (const auto& op : res->main_path()) {
      const int node = add_node(
          dag, res->name() + ":" + op->name(),
          eval.edge_model().layer_latency_ms(*op, cursor),
          eval.cloud_model().layer_latency_ms(*op, cursor),
          shape_bytes(op->output_shape(cursor)));
      dag.nodes[static_cast<std::size_t>(main_tail)].successors.push_back(node);
      main_tail = node;
      cursor = op->output_shape(cursor);
    }

    // Skip path: a projection conv or a zero-cost identity carrier.
    int skip_tail;
    if (const nn::Conv2d* proj = res->projection()) {
      skip_tail = add_node(
          dag, res->name() + ":proj",
          eval.edge_model().layer_latency_ms(*proj, shape),
          eval.cloud_model().layer_latency_ms(*proj, shape),
          shape_bytes(proj->output_shape(shape)));
    } else {
      skip_tail = add_node(dag, res->name() + ":skip", 0.0, 0.0,
                           shape_bytes(shape));
    }
    dag.nodes[static_cast<std::size_t>(pre)].successors.push_back(skip_tail);

    // Merge (element-wise add + ReLU): negligible compute, block output.
    const int merge =
        add_node(dag, res->name() + ":merge", 0.0, 0.0, shape_bytes(out_shape));
    dag.nodes[static_cast<std::size_t>(main_tail)].successors.push_back(merge);
    dag.nodes[static_cast<std::size_t>(skip_tail)].successors.push_back(merge);
    tail = merge;
    shape = out_shape;
  }
  return dag;
}

bool has_branches(const DnnDag& dag) {
  for (const auto& node : dag.nodes)
    if (node.successors.size() > 1) return true;
  return false;
}

}  // namespace cadmc::partition
