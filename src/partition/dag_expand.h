// DAG expansion of residual models. The DNN-surgery baseline exists because
// DNNs are DAGs, not chains (Hu et al. — the paper's reference [5]); our
// Model keeps residual units encapsulated as single chain layers, which
// hides the branch structure from the min-cut. This module expands every
// ResidualBlock into explicit DAG nodes — main-path operators, the skip /
// projection edge, and a zero-cost merge node — so surgery_min_cut can place
// the two branches independently (e.g. skip edge crossing to the cloud
// earlier than the main path).
#pragma once

#include "partition/surgery.h"

namespace cadmc::partition {

/// Expands `model` (a chain possibly containing nn::ResidualBlock layers)
/// into an operator-level DAG. Non-residual layers become single nodes as in
/// dag_from_model; each ResidualBlock becomes
///   pre -> [main op 1 -> ... -> main op n] -> merge
///   pre -> [projection | identity edge]    -> merge
/// where the merge node costs nothing and outputs the block's feature map.
DnnDag expand_residual_dag(const nn::Model& model,
                           const PartitionEvaluator& eval);

/// True if any node has more than one successor (a real DAG, not a chain).
bool has_branches(const DnnDag& dag);

}  // namespace cadmc::partition
