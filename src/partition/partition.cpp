#include "partition/partition.h"

#include <stdexcept>

namespace cadmc::partition {

PartitionEvaluator::PartitionEvaluator(latency::ComputeLatencyModel edge,
                                       latency::ComputeLatencyModel cloud,
                                       latency::TransferModel transfer)
    : edge_(std::move(edge)), cloud_(std::move(cloud)), transfer_(transfer) {}

LatencyBreakdown PartitionEvaluator::evaluate(
    const nn::Model& model, std::size_t cut,
    double bandwidth_bytes_per_ms) const {
  if (cut > model.size()) throw std::out_of_range("PartitionEvaluator: bad cut");
  LatencyBreakdown breakdown;
  breakdown.edge_ms = edge_.range_latency_ms(model, 0, cut);
  breakdown.cloud_ms = cloud_.range_latency_ms(model, cut, model.size());
  if (cut < model.size()) {
    // The paper ignores the (tiny) result download — Eqn. (3) note.
    const std::int64_t bytes = model.boundary_bytes()[cut];
    breakdown.transfer_ms = transfer_.latency_ms(bytes, bandwidth_bytes_per_ms);
  }
  return breakdown;
}

std::size_t PartitionEvaluator::best_cut(const nn::Model& model,
                                         double bandwidth_bytes_per_ms) const {
  std::size_t best = 0;
  double best_ms = evaluate(model, 0, bandwidth_bytes_per_ms).total_ms();
  for (std::size_t cut = 1; cut <= model.size(); ++cut) {
    const double ms = evaluate(model, cut, bandwidth_bytes_per_ms).total_ms();
    if (ms < best_ms) {
      best_ms = ms;
      best = cut;
    }
  }
  return best;
}

}  // namespace cadmc::partition
