// DNN partitioning across the edge and the cloud. A partition point `cut`
// places layers [0, cut) on the edge and [cut, size) on the cloud; the
// feature tensor at boundary `cut` crosses the network (Eqn. 3:
// T = Te + Tt + Tc). cut == size runs everything on the edge (no transfer);
// cut == 0 ships the raw input to the cloud.
#pragma once

#include "latency/compute_model.h"
#include "latency/transfer_model.h"
#include "nn/model.h"

namespace cadmc::partition {

struct LatencyBreakdown {
  double edge_ms = 0.0;
  double transfer_ms = 0.0;
  double cloud_ms = 0.0;
  double total_ms() const { return edge_ms + transfer_ms + cloud_ms; }
};

class PartitionEvaluator {
 public:
  PartitionEvaluator(latency::ComputeLatencyModel edge,
                     latency::ComputeLatencyModel cloud,
                     latency::TransferModel transfer);

  const latency::ComputeLatencyModel& edge_model() const { return edge_; }
  const latency::ComputeLatencyModel& cloud_model() const { return cloud_; }
  const latency::TransferModel& transfer_model() const { return transfer_; }

  /// Eqn. (3) latency of running `model` with the given cut and bandwidth.
  LatencyBreakdown evaluate(const nn::Model& model, std::size_t cut,
                            double bandwidth_bytes_per_ms) const;

  /// Exhaustive best single cut — optimal for chain models.
  std::size_t best_cut(const nn::Model& model,
                       double bandwidth_bytes_per_ms) const;

 private:
  latency::ComputeLatencyModel edge_;
  latency::ComputeLatencyModel cloud_;
  latency::TransferModel transfer_;
};

}  // namespace cadmc::partition
