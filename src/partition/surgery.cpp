#include "partition/surgery.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace cadmc::partition {

DnnDag dag_from_model(const nn::Model& model, const PartitionEvaluator& eval) {
  DnnDag dag;
  const auto bytes = model.boundary_bytes();
  nn::Shape s = model.input_shape();
  // Node 0 is a zero-cost input node (its output is the raw input tensor),
  // so "cut before layer 0" — offloading the raw input — is representable.
  DnnDag::Node input;
  input.name = "input";
  input.output_bytes = bytes[0];
  if (!model.empty()) input.successors = {1};
  dag.nodes.push_back(input);
  for (std::size_t i = 0; i < model.size(); ++i) {
    DnnDag::Node node;
    node.name = model.layer(i).name();
    node.edge_cost_ms = eval.edge_model().layer_latency_ms(model.layer(i), s);
    node.cloud_cost_ms = eval.cloud_model().layer_latency_ms(model.layer(i), s);
    node.output_bytes = bytes[i + 1];
    if (i + 1 < model.size())
      node.successors = {static_cast<int>(i) + 2};
    s = model.layer(i).output_shape(s);
    dag.nodes.push_back(node);
  }
  return dag;
}

SurgeryResult surgery_min_cut(const DnnDag& dag,
                              const latency::TransferModel& transfer,
                              double bandwidth_bytes_per_ms) {
  const int n = static_cast<int>(dag.nodes.size());
  // Graph nodes: 0 = source (edge), 1..n = operators, n+1 = sink (cloud).
  MaxFlow flow(n + 2);
  const int source = 0, sink = n + 1;
  const double inf = 1e15;  // effectively infinite, kept finite for the flow arithmetic
  for (int i = 0; i < n; ++i) {
    const auto& node = dag.nodes[static_cast<std::size_t>(i)];
    // Input node must stay on the edge (cutting s->input is infinitely bad).
    flow.add_edge(source, i + 1, i == 0 ? inf : node.cloud_cost_ms);
    flow.add_edge(i + 1, sink, node.edge_cost_ms);
    for (int succ : node.successors) {
      const double t =
          transfer.latency_ms(node.output_bytes, bandwidth_bytes_per_ms);
      flow.add_edge(i + 1, succ + 1, t);
      // Reverse dependency with infinite capacity forbids placements where a
      // cloud node feeds an edge node (we never download features back).
      flow.add_edge(succ + 1, i + 1, inf);
    }
  }
  SurgeryResult result;
  result.total_latency_ms = flow.solve(source, sink);
  const std::vector<bool> side = flow.min_cut_side(source);
  result.on_edge.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    result.on_edge[static_cast<std::size_t>(i)] = side[static_cast<std::size_t>(i + 1)];
  return result;
}

std::size_t surgery_cut_for_chain(const nn::Model& model,
                                  const PartitionEvaluator& eval,
                                  double bandwidth_bytes_per_ms) {
  const DnnDag dag = dag_from_model(model, eval);
  const SurgeryResult result =
      surgery_min_cut(dag, eval.transfer_model(), bandwidth_bytes_per_ms);
  // Node 0 is the input pseudo-node; layer i is node i+1. The cut is the
  // first layer on the cloud.
  for (std::size_t i = 0; i < model.size(); ++i)
    if (!result.on_edge[i + 1]) return i;
  return model.size();
}

MaxFlow::MaxFlow(int node_count)
    : graph_(static_cast<std::size_t>(node_count)) {
  if (node_count <= 1) throw std::invalid_argument("MaxFlow: too few nodes");
}

void MaxFlow::add_edge(int from, int to, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("MaxFlow: negative capacity");
  Edge fwd{to, capacity, static_cast<int>(graph_[static_cast<std::size_t>(to)].size())};
  Edge rev{from, 0.0, static_cast<int>(graph_[static_cast<std::size_t>(from)].size())};
  graph_[static_cast<std::size_t>(from)].push_back(fwd);
  graph_[static_cast<std::size_t>(to)].push_back(rev);
}

bool MaxFlow::bfs(int source, int sink) {
  level_.assign(graph_.size(), -1);
  std::queue<int> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(v)]) {
      if (e.cap > 1e-12 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] = level_[static_cast<std::size_t>(v)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

double MaxFlow::dfs(int v, int sink, double pushed) {
  if (v == sink) return pushed;
  for (int& i = iter_[static_cast<std::size_t>(v)];
       i < static_cast<int>(graph_[static_cast<std::size_t>(v)].size()); ++i) {
    Edge& e = graph_[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)];
    if (e.cap <= 1e-12 ||
        level_[static_cast<std::size_t>(e.to)] != level_[static_cast<std::size_t>(v)] + 1)
      continue;
    const double flow = dfs(e.to, sink, std::min(pushed, e.cap));
    if (flow > 1e-12) {
      e.cap -= flow;
      graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)].cap += flow;
      return flow;
    }
  }
  return 0.0;
}

double MaxFlow::solve(int source, int sink) {
  double total = 0.0;
  const double inf = 1e15;  // effectively infinite, kept finite for the flow arithmetic
  while (bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const double flow = dfs(source, sink, inf);
      if (flow <= 1e-12) break;
      total += flow;
    }
  }
  return total;
}

std::vector<bool> MaxFlow::min_cut_side(int source) const {
  std::vector<bool> reachable(graph_.size(), false);
  std::queue<int> queue;
  reachable[static_cast<std::size_t>(source)] = true;
  queue.push(source);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(v)]) {
      if (e.cap > 1e-12 && !reachable[static_cast<std::size_t>(e.to)]) {
        reachable[static_cast<std::size_t>(e.to)] = true;
        queue.push(e.to);
      }
    }
  }
  return reachable;
}

}  // namespace cadmc::partition
