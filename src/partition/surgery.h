// Dynamic DNN Surgery baseline (Hu et al., INFOCOM'19): the optimal
// edge/cloud partition of a DAG-shaped DNN under a constant network state is
// found as a minimum s-t cut. Construction: source s = edge, sink t = cloud;
// for every operator v, capacity(s -> v) = cloud compute cost of v and
// capacity(v -> t) = edge compute cost of v; for every data edge u -> v,
// capacity(u -> v) = transfer cost of u's output. Any finite s-t cut then
// prices a placement (nodes on the s side run on the edge), and the min cut
// is the latency-optimal placement. We solve max-flow with Dinic's algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "partition/partition.h"

namespace cadmc::partition {

/// A DAG of DNN operators with per-node costs.
struct DnnDag {
  struct Node {
    std::string name;
    double edge_cost_ms = 0.0;
    double cloud_cost_ms = 0.0;
    std::int64_t output_bytes = 0;       // feature size produced by this node
    std::vector<int> successors;         // data-dependency edges
  };
  std::vector<Node> nodes;  // topologically ordered
};

/// Flattens a chain model into a DnnDag using the evaluator's cost models.
DnnDag dag_from_model(const nn::Model& model, const PartitionEvaluator& eval);

struct SurgeryResult {
  std::vector<bool> on_edge;  // per node: true = runs on the edge
  double total_latency_ms = 0.0;
};

/// Minimum-cut placement of `dag` at the given bandwidth.
SurgeryResult surgery_min_cut(const DnnDag& dag,
                              const latency::TransferModel& transfer,
                              double bandwidth_bytes_per_ms);

/// Convenience: runs surgery on a chain model and converts the placement to
/// a single cut index (the first layer placed on the cloud).
std::size_t surgery_cut_for_chain(const nn::Model& model,
                                  const PartitionEvaluator& eval,
                                  double bandwidth_bytes_per_ms);

/// Dinic max-flow solver over a small directed graph, exposed for testing.
class MaxFlow {
 public:
  explicit MaxFlow(int node_count);
  void add_edge(int from, int to, double capacity);
  double solve(int source, int sink);
  /// After solve(): nodes reachable from `source` in the residual graph.
  std::vector<bool> min_cut_side(int source) const;

 private:
  struct Edge {
    int to;
    double cap;
    int rev;  // index of the reverse edge in graph_[to]
  };
  bool bfs(int source, int sink);
  double dfs(int v, int sink, double pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_, iter_;
};

}  // namespace cadmc::partition
