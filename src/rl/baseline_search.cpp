#include "rl/baseline_search.h"

#include <stdexcept>

#include "util/thread_pool.h"

namespace cadmc::rl {

std::vector<int> StrategySpace::random_genome(util::Rng& rng) const {
  std::vector<int> genome;
  genome.reserve(cardinalities.size());
  for (int card : cardinalities) {
    if (card <= 0) throw std::logic_error("StrategySpace: bad cardinality");
    genome.push_back(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(card))));
  }
  return genome;
}

std::vector<int> StrategySpace::mutate(const std::vector<int>& genome,
                                       util::Rng& rng) const {
  if (genome.size() != cardinalities.size())
    throw std::invalid_argument("StrategySpace::mutate: genome size mismatch");
  std::vector<int> out = genome;
  const std::size_t gene = rng.uniform_index(genome.size());
  out[gene] = static_cast<int>(
      rng.uniform_index(static_cast<std::uint64_t>(cardinalities[gene])));
  return out;
}

SearchOutcome random_search(const StrategySpace& space,
                            const GenomeEvaluator& evaluate, int episodes,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  // The population is independent of the rewards, so draw every genome
  // up front (same RNG sequence as the serial loop), evaluate the
  // population in parallel, and scan for the incumbent serially — the
  // outcome is identical to the sequential algorithm for any thread count.
  std::vector<std::vector<int>> genomes;
  genomes.reserve(static_cast<std::size_t>(std::max(episodes, 0)));
  for (int e = 0; e < episodes; ++e)
    genomes.push_back(space.random_genome(rng));
  std::vector<double> rewards(genomes.size(), 0.0);
  util::parallel_for(genomes.size(),
                     [&](std::size_t i) { rewards[i] = evaluate(genomes[i]); });
  SearchOutcome outcome;
  for (std::size_t e = 0; e < genomes.size(); ++e) {
    outcome.log.record(rewards[e]);
    if (e == 0 || rewards[e] > outcome.best_reward) {
      outcome.best_reward = rewards[e];
      outcome.best_genome = genomes[e];
    }
  }
  return outcome;
}

SearchOutcome epsilon_greedy_search(const StrategySpace& space,
                                    const GenomeEvaluator& evaluate,
                                    int episodes, double epsilon_start,
                                    double epsilon_end, std::uint64_t seed) {
  util::Rng rng(seed);
  SearchOutcome outcome;
  for (int e = 0; e < episodes; ++e) {
    const double frac = episodes > 1 ? static_cast<double>(e) / (episodes - 1) : 0.0;
    const double epsilon = epsilon_start + (epsilon_end - epsilon_start) * frac;
    std::vector<int> genome;
    if (outcome.best_genome.empty() || rng.bernoulli(epsilon)) {
      genome = space.random_genome(rng);
    } else {
      genome = space.mutate(outcome.best_genome, rng);
    }
    const double reward = evaluate(genome);
    outcome.log.record(reward);
    if (e == 0 || reward > outcome.best_reward) {
      outcome.best_reward = reward;
      outcome.best_genome = genome;
    }
  }
  return outcome;
}

}  // namespace cadmc::rl
