// Search-method baselines for Fig. 7: random search and epsilon-greedy
// search over a generic discrete strategy space (a genome of categorical
// genes). The RL decision engine is compared against these because an
// exhaustive search over the joint partition x compression space is
// unaffordable (Sec. VII).
#pragma once

#include <functional>
#include <vector>

#include "rl/reinforce.h"
#include "util/rng.h"

namespace cadmc::rl {

/// A strategy genome: gene i takes values in [0, cardinality[i]).
struct StrategySpace {
  std::vector<int> cardinalities;

  std::vector<int> random_genome(util::Rng& rng) const;
  /// Re-draws exactly one gene (used by epsilon-greedy exploitation).
  std::vector<int> mutate(const std::vector<int>& genome, util::Rng& rng) const;
};

using GenomeEvaluator = std::function<double(const std::vector<int>&)>;

struct SearchOutcome {
  std::vector<int> best_genome;
  double best_reward = 0.0;
  EpisodeLog log;
};

/// Uniform random sampling of the space, `episodes` evaluations. The
/// population is drawn up front and evaluated via util::parallel_for, so
/// `evaluate` must be safe to call concurrently (StrategyEvaluator-backed
/// objectives are); the outcome is identical to the sequential scan for any
/// thread count.
SearchOutcome random_search(const StrategySpace& space,
                            const GenomeEvaluator& evaluate, int episodes,
                            std::uint64_t seed);

/// Epsilon-greedy: with probability epsilon sample uniformly, otherwise
/// mutate the incumbent best genome by one gene. Epsilon decays linearly.
SearchOutcome epsilon_greedy_search(const StrategySpace& space,
                                    const GenomeEvaluator& evaluate,
                                    int episodes, double epsilon_start,
                                    double epsilon_end, std::uint64_t seed);

}  // namespace cadmc::rl
