#include "rl/reinforce.h"

namespace cadmc::rl {

std::vector<double> EpisodeLog::best_so_far() const {
  std::vector<double> out;
  out.reserve(rewards_.size());
  double best = 0.0;
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    best = i == 0 ? rewards_[i] : std::max(best, rewards_[i]);
    out.push_back(best);
  }
  return out;
}

}  // namespace cadmc::rl
