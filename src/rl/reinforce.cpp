#include "rl/reinforce.h"

#include <algorithm>

namespace cadmc::rl {

std::vector<double> EpisodeLog::best_so_far() const {
  std::vector<double> out;
  out.reserve(rewards_.size());
  double best = 0.0;
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    best = i == 0 ? rewards_[i] : std::max(best, rewards_[i]);
    out.push_back(best);
  }
  return out;
}

double EpisodeLog::mean_last(std::size_t n) const {
  n = std::min(n, rewards_.size());
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = rewards_.size() - n; i < rewards_.size(); ++i)
    sum += rewards_[i];
  return sum / static_cast<double>(n);
}

}  // namespace cadmc::rl
