// Monte-Carlo policy gradient scaffolding (Sec. VI-D). The controllers own
// their parameters and gradient accumulation; this module provides the
// exponential-moving-average reward baseline b of Eqn. (10) and an episode
// recorder for diagnostics (reward curves in Fig. 7).
#pragma once

#include <limits>
#include <vector>

#include "util/stats.h"

namespace cadmc::rl {

/// REINFORCE baseline: b = EMA of previous episode returns. advantage()
/// subtracts the baseline *before* folding the new return in, so the
/// estimate stays unbiased.
class RewardBaseline {
 public:
  explicit RewardBaseline(double alpha = 0.2) : ema_(alpha) {}

  double advantage(double episode_return) {
    const double b = ema_.initialized() ? ema_.value() : episode_return;
    ema_.update(episode_return);
    return episode_return - b;
  }

  double value() const { return ema_.initialized() ? ema_.value() : 0.0; }

 private:
  util::Ema ema_;
};

/// Tracks the per-episode reward curve and the best reward so far.
class EpisodeLog {
 public:
  void record(double reward) {
    rewards_.push_back(reward);
    if (reward > best_) best_ = reward;
  }
  const std::vector<double>& rewards() const { return rewards_; }
  /// -inf until the first record, so all-negative reward scales work too.
  double best() const { return best_; }
  /// Running best at each episode (monotone curve for Fig. 7).
  std::vector<double> best_so_far() const;
  /// Mean of the most recent min(n, episodes()) rewards (smoothed Fig. 7
  /// curves); 0 when empty or n == 0.
  double mean_last(std::size_t n) const;
  std::size_t episodes() const { return rewards_.size(); }

 private:
  std::vector<double> rewards_;
  double best_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cadmc::rl
