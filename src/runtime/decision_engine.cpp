#include "runtime/decision_engine.h"

#include <stdexcept>

#include "latency/device_profile.h"
#include "nn/factory.h"
#include "obs/span.h"

namespace cadmc::runtime {

DecisionEngine::DecisionEngine(nn::Model base, EngineConfig config)
    : base_(std::move(base)),
      config_(std::move(config)),
      breaker_(config_.breaker, config_.metrics) {
  if (config_.num_forks < 1)
    throw std::invalid_argument("DecisionEngine: num_forks < 1");
  trace_ = net::generate_trace(config_.scene.trace, config_.trace_duration_ms,
                               config_.trace_seed);
  boundaries_ = nn::block_boundaries(base_, config_.num_blocks);

  // K bandwidth types from the trace quantiles; K = 2 uses the lower and
  // upper quartiles for 'poor' and 'good' (Sec. VII setup).
  if (config_.num_forks == 2) {
    fork_bandwidths_ = {trace_.quantile(0.25), trace_.quantile(0.75)};
  } else {
    for (int k = 0; k < config_.num_forks; ++k)
      fork_bandwidths_.push_back(
          trace_.quantile((k + 0.5) / config_.num_forks));
  }
  for (std::size_t i = 1; i < fork_bandwidths_.size(); ++i)
    if (fork_bandwidths_[i] <= fork_bandwidths_[i - 1])
      fork_bandwidths_[i] = fork_bandwidths_[i - 1] * 1.01;

  latency::TransferModel transfer;
  transfer.rtt_ms = config_.scene.rtt_ms;
  partition::PartitionEvaluator pe(
      latency::ComputeLatencyModel(
          latency::profile_by_name(config_.edge_device)),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  evaluator_ = std::make_unique<engine::StrategyEvaluator>(
      base_, std::move(pe),
      engine::AccuracyModel(config_.base_accuracy, base_.size(),
                            config_.trace_seed ^ 0xACC),
      config_.reward_config);
}

void DecisionEngine::train_offline() {
  // Seed both searches with the DNN-surgery solution (it lies inside the
  // strategy space), so the engine never ships anything worse than the
  // fixed-partition baseline.
  engine::Strategy surgery;
  surgery.plan.assign(base_.size(), compress::TechniqueId::kNone);
  surgery.cut = partition::surgery_cut_for_chain(
      base_, evaluator_->partition_eval(), trace_.quantile(0.5));
  tree::TreeSearchConfig tree_config = config_.tree_config;
  tree_config.branch_config.seed_strategies.push_back(surgery);
  tree_config.extra_boost_strategies.push_back(surgery);

  tree::TreeSearch search(*evaluator_, boundaries_, fork_bandwidths_,
                          tree_config);
  search_result_ = search.run();
}

const tree::ModelTree& DecisionEngine::tree() const {
  return search_result().tree;
}

const tree::TreeSearchResult& DecisionEngine::search_result() const {
  if (!search_result_)
    throw std::logic_error("DecisionEngine: train_offline() not run");
  return *search_result_;
}

obs::MetricsRegistry& DecisionEngine::metrics() const {
  return config_.metrics != nullptr ? *config_.metrics
                                    : obs::MetricsRegistry::global();
}

DecisionEngine::InferenceOutcome DecisionEngine::infer(
    const tensor::Tensor& input, double t_ms) {
  const tree::ModelTree& model_tree = tree();
  obs::MetricsRegistry& reg = metrics();
  obs::ScopedSpan infer_span("infer", &reg);
  net::BandwidthEstimator estimator(trace_, /*staleness_ms=*/200.0,
                                    /*alpha=*/0.6);
  // Alg. 2: one bandwidth measurement before each block. Inference time
  // advances as blocks execute, so later measurements see later link state.
  double t_cursor = t_ms;
  InferenceOutcome outcome;
  tree::ModelTree::Composition composition;
  {
    obs::ScopedSpan compose_span("compose", &reg);
    composition = model_tree.compose_online([&](std::size_t block) {
      obs::ScopedSpan estimate_span("estimate", &reg);
      const double bw = estimator.estimate_at(t_cursor);
      t_cursor += 5.0 + 10.0 * static_cast<double>(block);  // measurement cadence
      return bw;
    });
  }
  outcome.strategy = composition.strategy;
  outcome.forks = composition.forks;

  // Graceful degradation: if the composed path offloads but the link is
  // effectively dead (estimate pinned at the floor, or a blackout at the
  // moment of transfer) or the cloud breaker is open, take the all-edge
  // branch instead — the cut moves to the end and the suffix stays
  // uncompressed, exactly the uncompressed-prefix fork the tree keeps.
  if (outcome.strategy.cut < base_.size()) {
    const bool link_dead =
        (!composition.observed_bandwidths.empty() &&
         composition.observed_bandwidths.back() <= config_.dead_link_bandwidth) ||
        trace_.at(t_ms) <= 0.0;
    if (link_dead || !breaker_.allow_request()) {
      outcome.strategy.cut = base_.size();
      outcome.degraded = true;
      if (obs::enabled()) {
        reg.counter("cadmc.runtime.fault.edge_fallbacks").add(1);
        if (link_dead) reg.counter("cadmc.runtime.fault.dead_link_detected").add(1);
      }
    }
  }

  engine::RealizedStrategy realized = [&] {
    obs::ScopedSpan realize_span("realize", &reg);
    return engine::realize_strategy(base_, outcome.strategy,
                                    faithful_registry_, realize_rng_);
  }();

  // The modelled per-stage costs (edge device, uplink, cloud) price the
  // strategy; the host wall-clock of each stage rides on the same spans.
  const auto eval = evaluator_->evaluate(outcome.strategy, trace_.at(t_ms));
  tensor::Tensor features;
  {
    obs::ScopedSpan edge_span("edge_exec", &reg);
    edge_span.set_modelled_ms(eval.breakdown.edge_ms);
    features = realized.model.forward_range(input, 0, realized.cut, false);
  }
  {
    obs::ScopedSpan transfer_span("transfer", &reg);
    transfer_span.set_modelled_ms(eval.breakdown.transfer_ms);
    // Local run: the feature tensor crosses no real socket; the modelled
    // uplink cost is the whole story (field.cpp pays a real transfer).
  }
  {
    obs::ScopedSpan cloud_span("cloud_exec", &reg);
    cloud_span.set_modelled_ms(eval.breakdown.cloud_ms);
    outcome.logits =
        realized.cut < realized.model.size()
            ? realized.model.forward_range(features, realized.cut,
                                           realized.model.size(), false)
            : features;
  }
  outcome.latency_ms = eval.latency_ms;
  if (obs::enabled()) {
    reg.counter("cadmc.runtime.inferences").add(1);
    if (outcome.strategy.cut < base_.size())
      reg.counter("cadmc.runtime.offloads").add(1);
    reg.histogram("cadmc.runtime.latency_ms").observe(outcome.latency_ms);
    reg.gauge("cadmc.runtime.last_bandwidth").set(trace_.at(t_ms));
  }
  return outcome;
}

InferenceRunner DecisionEngine::make_runner(RunnerConfig runner_config) const {
  return InferenceRunner(*evaluator_, trace_, boundaries_, runner_config);
}

}  // namespace cadmc::runtime
