// DecisionEngine — the library's top-level facade (Fig. 2). Offline, it
// generates the scene's bandwidth trace, derives the K bandwidth types from
// its quartiles, trains the RL controllers and produces the context-aware
// model tree. Online, it composes a DNN from the tree per Alg. 2 at each
// inference, optionally running the composed model on real tensors.
#pragma once

#include <memory>
#include <optional>

#include "net/scenes.h"
#include "runtime/emulator.h"
#include "runtime/fault.h"
#include "tree/tree_search.h"

namespace cadmc::obs {
class MetricsRegistry;
}

namespace cadmc::runtime {

struct EngineConfig {
  std::string edge_device = "phone";       // "phone" or "tx2"
  net::Scene scene;                        // network context to train for
  double base_accuracy = 0.9201;           // accuracy of the base DNN
  std::size_t num_blocks = 3;              // N
  int num_forks = 2;                       // K
  double trace_duration_ms = 60'000.0;
  std::uint64_t trace_seed = 0x7A2CE;
  tree::TreeSearchConfig tree_config;
  engine::RewardConfig reward_config;
  // Observability sink for this engine's spans and runtime counters
  // (cadmc.runtime.*); null means the global registry. Offline-search
  // metrics (cadmc.search.*) always go to the global registry.
  obs::MetricsRegistry* metrics = nullptr;
  // Fault tolerance: when the composed strategy offloads but the estimated
  // bandwidth at the cut is at/below this threshold (bytes/ms — the
  // estimator floor means "link effectively dead"), or the cloud breaker is
  // open, infer() degrades to the all-edge branch of the tree (cut moved to
  // the end; the suffix fork is uncompressed by construction).
  double dead_link_bandwidth = net::BandwidthEstimator::kMinBandwidth;
  CircuitBreakerConfig breaker;
};

class DecisionEngine {
 public:
  /// Takes ownership of the base model.
  DecisionEngine(nn::Model base, EngineConfig config);

  // Internal components point at the owned base model, so the engine is
  // pinned in place.
  DecisionEngine(const DecisionEngine&) = delete;
  DecisionEngine& operator=(const DecisionEngine&) = delete;
  DecisionEngine(DecisionEngine&&) = delete;
  DecisionEngine& operator=(DecisionEngine&&) = delete;

  /// Offline phase (Fig. 2, top): trains controllers and builds the tree.
  /// Must be called before tree()/infer().
  void train_offline();
  bool trained() const { return search_result_.has_value(); }

  const nn::Model& base() const { return base_; }
  const engine::StrategyEvaluator& evaluator() const { return *evaluator_; }
  const net::BandwidthTrace& trace() const { return trace_; }
  const std::vector<std::size_t>& boundaries() const { return boundaries_; }
  const std::vector<double>& fork_bandwidths() const { return fork_bandwidths_; }
  const tree::ModelTree& tree() const;
  const tree::TreeSearchResult& search_result() const;

  /// Online phase: composes a strategy from the tree per Alg. 2 using the
  /// estimator's bandwidth readings starting at `t_ms`, realizes it with
  /// faithful weights, runs the forward pass, and reports the modelled
  /// latency on the configured devices.
  struct InferenceOutcome {
    tensor::Tensor logits;
    engine::Strategy strategy;
    std::vector<int> forks;
    double latency_ms = 0.0;
    bool degraded = false;  // edge-only fallback (dead link / open breaker)
  };
  InferenceOutcome infer(const tensor::Tensor& input, double t_ms);

  /// Cloud circuit breaker honored by infer(). The engine itself runs
  /// locally, so cloud outcomes are recorded by whoever owns the transport
  /// (e.g. a field loop calling breaker().record_failure() on deadline
  /// misses); once open, infer() composes the all-edge branch until a probe
  /// is due.
  CircuitBreaker& breaker() { return breaker_; }

  /// Metrics registry this engine records into (EngineConfig::metrics or the
  /// global default). Collection only happens while obs::enabled().
  obs::MetricsRegistry& metrics() const;

  /// An InferenceRunner over this engine's context (for emulation/field
  /// sweeps with this configuration).
  InferenceRunner make_runner(RunnerConfig runner_config) const;

 private:
  nn::Model base_;
  EngineConfig config_;
  net::BandwidthTrace trace_;
  std::vector<std::size_t> boundaries_;
  std::vector<double> fork_bandwidths_;
  std::unique_ptr<engine::StrategyEvaluator> evaluator_;
  std::optional<tree::TreeSearchResult> search_result_;
  compress::TechniqueRegistry faithful_registry_;
  util::Rng realize_rng_{0xFA17};
  CircuitBreaker breaker_;
};

}  // namespace cadmc::runtime
