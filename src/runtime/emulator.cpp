#include "runtime/emulator.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/span.h"
#include "obs/trace_export.h"
#include "runtime/shaper.h"
#include "util/stats.h"

namespace cadmc::runtime {

using engine::Strategy;

InferenceRunner::InferenceRunner(const engine::StrategyEvaluator& evaluator,
                                 net::BandwidthTrace trace,
                                 std::vector<std::size_t> boundaries,
                                 RunnerConfig config)
    : evaluator_(&evaluator),
      trace_(std::move(trace)),
      boundaries_(std::move(boundaries)),
      config_(config) {
  if (config_.inferences <= 0)
    throw std::invalid_argument("InferenceRunner: inferences <= 0");
}

double InferenceRunner::start_time(int inference_index) const {
  // Spread inferences across the middle 80% of the trace.
  const double usable = trace_.duration_ms() * 0.8;
  const double offset = trace_.duration_ms() * 0.1;
  return offset + usable * inference_index / config_.inferences;
}

double InferenceRunner::block_compute_ms(Timeline& tl, const Strategy& strategy,
                                         std::size_t begin,
                                         std::size_t end) const {
  double ms = evaluator_->edge_slice_latency_ms(strategy, begin, end);
  if (config_.mode == TimingMode::kField) {
    // Device-side variance: the latency model is only an estimate of the
    // real hardware (Sec. VII-B3).
    ms *= std::exp(tl.rng.normal(0.0, config_.field_compute_noise));
  }
  if (config_.injector != nullptr)
    ms *= config_.injector->next_straggler_factor();
  return ms;
}

double InferenceRunner::transfer_ms(Timeline& tl, std::int64_t bytes) const {
  const auto& tm = evaluator_->partition_eval().transfer_model();
  if (config_.mode == TimingMode::kEstimated) {
    // Emulation: transfer priced at the true instantaneous bandwidth when
    // the offload starts. A blackout sample means the payload cannot move.
    const double bw = trace_.at(tl.t_ms);
    if (bw <= 0.0) return std::numeric_limits<double>::infinity();
    return tm.latency_ms(bytes, bw);
  }
  // Field: the payload drains through every fluctuation the link has while
  // it is in flight (+inf when the trace ends in a dead link).
  return shaped_transfer_ms(trace_, tl.t_ms, bytes, tm.rtt_ms, tm.size_coeff);
}

InferenceRunner::FaultState InferenceRunner::make_fault_state() const {
  return FaultState{CircuitBreaker(config_.breaker), 0, 0, 0};
}

void InferenceRunner::offload_tail(Timeline& tl, const Strategy& strategy,
                                   FaultState& fs) const {
  const nn::Model& base = evaluator_->base();
  if (strategy.cut >= base.size()) return;
  const std::int64_t bytes = base.boundary_bytes()[strategy.cut];
  const double deadline = config_.cloud_deadline_ms;
  bool served_by_cloud = false;
  if (deadline <= 0.0 || fs.breaker.allow_request()) {
    obs::ScopedSpan transfer_span("transfer");
    const double transfer = transfer_ms(tl, bytes);
    transfer_span.set_modelled_ms(transfer);
    obs::ScopedSpan cloud_span("cloud_compute");
    const double cloud = evaluator_->cloud_suffix_latency_ms(strategy.cut);
    cloud_span.set_modelled_ms(cloud);
    const double cloud_total = transfer + cloud;
    if (deadline > 0.0 &&
        (!std::isfinite(cloud_total) || cloud_total > deadline)) {
      // The miss is only detected when the deadline fires; that wait is the
      // price of the failed attempt.
      fs.breaker.record_failure();
      ++fs.deadline_misses;
      obs::flight_fault(obs::FlightEventKind::kFault, "deadline_miss");
      tl.t_ms += deadline;
    } else {
      if (deadline > 0.0) fs.breaker.record_success();
      tl.t_ms += cloud_total;
      served_by_cloud = true;
    }
  }
  if (served_by_cloud) return;
  if (config_.edge_fallback) {
    // Run the uncompressed suffix locally (the tree's all-edge fork): the
    // same logits arrive, later and at edge-device prices.
    ++fs.edge_fallbacks;
    obs::ScopedSpan fallback_span("edge_fallback");
    const double ms = block_compute_ms(tl, strategy, strategy.cut, base.size());
    fallback_span.set_modelled_ms(ms);
    tl.t_ms += ms;
  } else {
    ++fs.failures;
  }
}

double InferenceRunner::execute(Timeline& tl, const Strategy& strategy,
                                FaultState& fs) const {
  const nn::Model& base = evaluator_->base();
  std::vector<std::size_t> edges{0};
  for (std::size_t b : boundaries_) edges.push_back(b);
  edges.push_back(base.size());

  const double t_start = tl.t_ms;
  {
    obs::ScopedSpan edge_span("edge_compute");
    for (std::size_t j = 0; j + 1 < edges.size(); ++j) {
      const std::size_t begin = edges[j], end = edges[j + 1];
      if (begin >= strategy.cut) break;
      const double ms =
          block_compute_ms(tl, strategy, begin, std::min(end, strategy.cut));
      edge_span.add_modelled_ms(ms);
      tl.t_ms += ms;
      if (strategy.cut <= end) break;
    }
  }
  offload_tail(tl, strategy, fs);
  return tl.t_ms - t_start;
}

RunStats InferenceRunner::summarize(const std::vector<Strategy>& strategies,
                                    const std::vector<double>& latencies,
                                    const FaultState& fs) const {
  RunStats stats;
  stats.inferences = static_cast<int>(latencies.size());
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    const double acc = evaluator_->accuracy_model().estimate(strategies[i].plan);
    stats.mean_latency_ms += latencies[i];
    stats.mean_accuracy += acc;
    stats.mean_reward += evaluator_->reward_config().reward(acc, latencies[i]);
  }
  if (stats.inferences > 0) {
    stats.mean_latency_ms /= stats.inferences;
    stats.mean_accuracy /= stats.inferences;
    stats.mean_reward /= stats.inferences;
    stats.p99_latency_ms = util::quantile(latencies, 0.99);
  }
  stats.deadline_misses = fs.deadline_misses;
  stats.edge_fallbacks = fs.edge_fallbacks;
  stats.failures = fs.failures;
  stats.availability =
      stats.inferences > 0
          ? 1.0 - static_cast<double>(fs.failures) / stats.inferences
          : 1.0;
  return stats;
}

RunStats InferenceRunner::run_surgery() const {
  const nn::Model& base = evaluator_->base();
  std::vector<Strategy> strategies;
  std::vector<double> latencies;
  FaultState fs = make_fault_state();
  // Policy-level root span: every frame of the run nests under it, so one
  // emulator run profiles as a single trace (`cadmc profile`).
  obs::ScopedSpan policy_span("run_surgery");
  for (int i = 0; i < config_.inferences; ++i) {
    const double staleness =
        config_.estimator_staleness_ms +
        (config_.mode == TimingMode::kField ? config_.field_staleness_extra_ms : 0.0);
    Timeline tl{start_time(i),
                net::BandwidthEstimator(trace_, staleness, config_.estimator_alpha),
                util::Rng(config_.seed ^ (0x5u + static_cast<unsigned>(i)))};
    obs::ScopedSpan frame_span("frame");
    double bw_est;
    {
      obs::ScopedSpan measure_span("measure_bandwidth");
      bw_est = tl.estimator.estimate_at(tl.t_ms);
    }
    Strategy s;
    s.plan.assign(base.size(), compress::TechniqueId::kNone);
    s.cut = partition::surgery_cut_for_chain(base, evaluator_->partition_eval(),
                                             bw_est);
    latencies.push_back(execute(tl, s, fs));
    frame_span.set_modelled_ms(latencies.back());
    strategies.push_back(std::move(s));
  }
  return summarize(strategies, latencies, fs);
}

RunStats InferenceRunner::run_branch(const Strategy& strategy) const {
  std::vector<Strategy> strategies;
  std::vector<double> latencies;
  FaultState fs = make_fault_state();
  obs::ScopedSpan policy_span("run_branch");
  for (int i = 0; i < config_.inferences; ++i) {
    Timeline tl{start_time(i),
                net::BandwidthEstimator(trace_, config_.estimator_staleness_ms,
                                        config_.estimator_alpha),
                util::Rng(config_.seed ^ (0xB00u + static_cast<unsigned>(i)))};
    obs::ScopedSpan frame_span("frame");
    latencies.push_back(execute(tl, strategy, fs));
    frame_span.set_modelled_ms(latencies.back());
    strategies.push_back(strategy);
  }
  return summarize(strategies, latencies, fs);
}

RunStats InferenceRunner::run_tree(const tree::ModelTree& tree) const {
  std::vector<Strategy> strategies;
  std::vector<double> latencies;
  FaultState fs = make_fault_state();
  obs::ScopedSpan policy_span("run_tree");
  for (int i = 0; i < config_.inferences; ++i) {
    const double staleness =
        config_.estimator_staleness_ms +
        (config_.mode == TimingMode::kField ? config_.field_staleness_extra_ms : 0.0);
    Timeline tl{start_time(i),
                net::BandwidthEstimator(trace_, staleness, config_.estimator_alpha),
                util::Rng(config_.seed ^ (0x7EEu + static_cast<unsigned>(i)))};
    // Alg. 2: walk the tree, measuring (an estimate of) the bandwidth before
    // each block at the *current* simulated time, paying for each block as
    // it executes.
    const nn::Model& base = evaluator_->base();
    Strategy s;
    s.plan.assign(base.size(), compress::TechniqueId::kNone);
    s.cut = base.size();
    const tree::TreeNode* node = &tree.root();
    const double t_start = tl.t_ms;
    obs::ScopedSpan frame_span("frame");
    for (std::size_t level = 0; level < tree.num_blocks(); ++level) {
      double bw_est;
      {
        obs::ScopedSpan measure_span("measure_bandwidth");
        bw_est = tl.estimator.estimate_at(tl.t_ms);
      }
      int fork;
      {
        obs::ScopedSpan fork_span("fork_select");
        fork = tree.classify(bw_est);
      }
      const tree::TreeNode* next = nullptr;
      for (const tree::TreeNode& c : node->children)
        if (c.fork == fork) next = &c;
      if (next == nullptr) break;
      node = next;
      const std::size_t begin = tree.block_begin(level);
      for (std::size_t x = 0; x < node->block_plan.size(); ++x)
        s.plan[begin + x] = node->block_plan[x];
      const std::size_t edge_end = begin + node->cut_local;
      {
        obs::ScopedSpan edge_span("edge_compute");
        const double ms = block_compute_ms(tl, s, begin, edge_end);
        edge_span.set_modelled_ms(ms);
        tl.t_ms += ms;
      }
      if (node->partitions(tree.block_len(level))) {
        s.cut = edge_end;
        break;
      }
    }
    offload_tail(tl, s, fs);
    frame_span.set_modelled_ms(tl.t_ms - t_start);
    latencies.push_back(tl.t_ms - t_start);
    strategies.push_back(std::move(s));
  }
  return summarize(strategies, latencies, fs);
}

}  // namespace cadmc::runtime
