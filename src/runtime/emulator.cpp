#include "runtime/emulator.h"

#include <cmath>
#include <stdexcept>

#include "runtime/shaper.h"

namespace cadmc::runtime {

using engine::Strategy;

InferenceRunner::InferenceRunner(const engine::StrategyEvaluator& evaluator,
                                 net::BandwidthTrace trace,
                                 std::vector<std::size_t> boundaries,
                                 RunnerConfig config)
    : evaluator_(&evaluator),
      trace_(std::move(trace)),
      boundaries_(std::move(boundaries)),
      config_(config) {
  if (config_.inferences <= 0)
    throw std::invalid_argument("InferenceRunner: inferences <= 0");
}

double InferenceRunner::start_time(int inference_index) const {
  // Spread inferences across the middle 80% of the trace.
  const double usable = trace_.duration_ms() * 0.8;
  const double offset = trace_.duration_ms() * 0.1;
  return offset + usable * inference_index / config_.inferences;
}

double InferenceRunner::block_compute_ms(Timeline& tl, const Strategy& strategy,
                                         std::size_t begin,
                                         std::size_t end) const {
  double ms = evaluator_->edge_slice_latency_ms(strategy, begin, end);
  if (config_.mode == TimingMode::kField) {
    // Device-side variance: the latency model is only an estimate of the
    // real hardware (Sec. VII-B3).
    ms *= std::exp(tl.rng.normal(0.0, config_.field_compute_noise));
  }
  return ms;
}

double InferenceRunner::transfer_ms(Timeline& tl, std::int64_t bytes) const {
  const auto& tm = evaluator_->partition_eval().transfer_model();
  if (config_.mode == TimingMode::kEstimated) {
    // Emulation: transfer priced at the true instantaneous bandwidth when
    // the offload starts.
    return tm.latency_ms(bytes, trace_.at(tl.t_ms));
  }
  // Field: the payload drains through every fluctuation the link has while
  // it is in flight.
  return shaped_transfer_ms(trace_, tl.t_ms, bytes, tm.rtt_ms, tm.size_coeff);
}

double InferenceRunner::execute(Timeline& tl, const Strategy& strategy) const {
  const nn::Model& base = evaluator_->base();
  std::vector<std::size_t> edges{0};
  for (std::size_t b : boundaries_) edges.push_back(b);
  edges.push_back(base.size());

  const double t_start = tl.t_ms;
  for (std::size_t j = 0; j + 1 < edges.size(); ++j) {
    const std::size_t begin = edges[j], end = edges[j + 1];
    if (begin >= strategy.cut) break;
    tl.t_ms += block_compute_ms(tl, strategy, begin, std::min(end, strategy.cut));
    if (strategy.cut <= end) break;
  }
  if (strategy.cut < base.size()) {
    tl.t_ms += transfer_ms(tl, base.boundary_bytes()[strategy.cut]);
    tl.t_ms += evaluator_->cloud_suffix_latency_ms(strategy.cut);
  }
  return tl.t_ms - t_start;
}

RunStats InferenceRunner::summarize(const std::vector<Strategy>& strategies,
                                    const std::vector<double>& latencies) const {
  RunStats stats;
  stats.inferences = static_cast<int>(latencies.size());
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    const double acc = evaluator_->accuracy_model().estimate(strategies[i].plan);
    stats.mean_latency_ms += latencies[i];
    stats.mean_accuracy += acc;
    stats.mean_reward += evaluator_->reward_config().reward(acc, latencies[i]);
  }
  if (stats.inferences > 0) {
    stats.mean_latency_ms /= stats.inferences;
    stats.mean_accuracy /= stats.inferences;
    stats.mean_reward /= stats.inferences;
  }
  return stats;
}

RunStats InferenceRunner::run_surgery() const {
  const nn::Model& base = evaluator_->base();
  std::vector<Strategy> strategies;
  std::vector<double> latencies;
  for (int i = 0; i < config_.inferences; ++i) {
    const double staleness =
        config_.estimator_staleness_ms +
        (config_.mode == TimingMode::kField ? config_.field_staleness_extra_ms : 0.0);
    Timeline tl{start_time(i),
                net::BandwidthEstimator(trace_, staleness, config_.estimator_alpha),
                util::Rng(config_.seed ^ (0x5u + static_cast<unsigned>(i)))};
    const double bw_est = tl.estimator.estimate_at(tl.t_ms);
    Strategy s;
    s.plan.assign(base.size(), compress::TechniqueId::kNone);
    s.cut = partition::surgery_cut_for_chain(base, evaluator_->partition_eval(),
                                             bw_est);
    latencies.push_back(execute(tl, s));
    strategies.push_back(std::move(s));
  }
  return summarize(strategies, latencies);
}

RunStats InferenceRunner::run_branch(const Strategy& strategy) const {
  std::vector<Strategy> strategies;
  std::vector<double> latencies;
  for (int i = 0; i < config_.inferences; ++i) {
    Timeline tl{start_time(i),
                net::BandwidthEstimator(trace_, config_.estimator_staleness_ms,
                                        config_.estimator_alpha),
                util::Rng(config_.seed ^ (0xB00u + static_cast<unsigned>(i)))};
    latencies.push_back(execute(tl, strategy));
    strategies.push_back(strategy);
  }
  return summarize(strategies, latencies);
}

RunStats InferenceRunner::run_tree(const tree::ModelTree& tree) const {
  std::vector<Strategy> strategies;
  std::vector<double> latencies;
  for (int i = 0; i < config_.inferences; ++i) {
    const double staleness =
        config_.estimator_staleness_ms +
        (config_.mode == TimingMode::kField ? config_.field_staleness_extra_ms : 0.0);
    Timeline tl{start_time(i),
                net::BandwidthEstimator(trace_, staleness, config_.estimator_alpha),
                util::Rng(config_.seed ^ (0x7EEu + static_cast<unsigned>(i)))};
    // Alg. 2: walk the tree, measuring (an estimate of) the bandwidth before
    // each block at the *current* simulated time, paying for each block as
    // it executes.
    const nn::Model& base = evaluator_->base();
    Strategy s;
    s.plan.assign(base.size(), compress::TechniqueId::kNone);
    s.cut = base.size();
    const tree::TreeNode* node = &tree.root();
    const double t_start = tl.t_ms;
    for (std::size_t level = 0; level < tree.num_blocks(); ++level) {
      const double bw_est = tl.estimator.estimate_at(tl.t_ms);
      const int fork = tree.classify(bw_est);
      const tree::TreeNode* next = nullptr;
      for (const tree::TreeNode& c : node->children)
        if (c.fork == fork) next = &c;
      if (next == nullptr) break;
      node = next;
      const std::size_t begin = tree.block_begin(level);
      for (std::size_t x = 0; x < node->block_plan.size(); ++x)
        s.plan[begin + x] = node->block_plan[x];
      const std::size_t edge_end = begin + node->cut_local;
      tl.t_ms += block_compute_ms(tl, s, begin, edge_end);
      if (node->partitions(tree.block_len(level))) {
        s.cut = edge_end;
        break;
      }
    }
    if (s.cut < base.size()) {
      tl.t_ms += transfer_ms(tl, base.boundary_bytes()[s.cut]);
      tl.t_ms += evaluator_->cloud_suffix_latency_ms(s.cut);
    }
    latencies.push_back(tl.t_ms - t_start);
    strategies.push_back(std::move(s));
  }
  return summarize(strategies, latencies);
}

}  // namespace cadmc::runtime
