// Emulation and field-test harness (Tables IV and V). An InferenceRunner
// replays DNN inferences along a bandwidth trace under one of three
// policies — Dynamic DNN Surgery, the optimal-branch model, or the
// context-aware model tree — and in one of two timing modes:
//  * kEstimated (Table IV): decisions use the runtime bandwidth estimate and
//    outcomes are priced by the latency models at the true trace value at
//    the moment of transfer ("real-world traces + estimated latencies");
//  * kField (Table V): outcomes additionally pay for reality — per-block
//    device-compute noise and a transfer that integrates the true trace
//    across the whole transmission (shaped_transfer_ms), so mid-transfer
//    fades land on the bill. The decision inputs stay estimated/stale —
//    this gap is exactly the paper's emulation-vs-field gap.
#pragma once

#include "engine/strategy.h"
#include "net/estimator.h"
#include "net/scenes.h"
#include "partition/surgery.h"
#include "runtime/fault.h"
#include "tree/model_tree.h"

namespace cadmc::runtime {

enum class TimingMode { kEstimated, kField };

struct RunStats {
  double mean_latency_ms = 0.0;
  double mean_accuracy = 0.0;
  double mean_reward = 0.0;
  int inferences = 0;
  // Fault accounting (all zero when no cloud deadline is configured).
  double p99_latency_ms = 0.0;
  int deadline_misses = 0;   // cloud path abandoned at the deadline
  int edge_fallbacks = 0;    // inferences served by the local suffix
  int failures = 0;          // unserved inferences (fallback disabled)
  double availability = 1.0; // served / total
};

struct RunnerConfig {
  TimingMode mode = TimingMode::kEstimated;
  int inferences = 40;              // runs spread along the trace
  double estimator_staleness_ms = 200.0;
  double estimator_alpha = 0.6;
  double field_compute_noise = 0.10;   // lognormal sigma on block compute (field)
  double field_staleness_extra_ms = 300.0;  // extra estimate staleness (field)
  std::uint64_t seed = 0xF1E1D;
  // Fault tolerance. A positive deadline bounds the cloud leg
  // (transfer + cloud compute) of each inference: a miss costs the deadline
  // wait, trips the breaker, and — when `edge_fallback` — the uncompressed
  // suffix runs on the edge instead (the model-tree all-edge fork). With
  // fallback disabled a miss is a failed inference and availability drops.
  double cloud_deadline_ms = 0.0;   // 0 = unbounded (legacy behaviour)
  bool edge_fallback = true;
  CircuitBreakerConfig breaker;
  // Optional chaos source (not owned): compute stragglers inflate block
  // latency on top of the field-mode lognormal noise.
  FaultInjector* injector = nullptr;
};

class InferenceRunner {
 public:
  /// `evaluator` supplies the latency/accuracy/reward models; `trace` is the
  /// scene's bandwidth time series; `boundaries` the block boundaries.
  InferenceRunner(const engine::StrategyEvaluator& evaluator,
                  net::BandwidthTrace trace,
                  std::vector<std::size_t> boundaries, RunnerConfig config);

  /// Dynamic DNN Surgery: one min-cut decision per inference from the
  /// estimate at its start; no compression.
  RunStats run_surgery() const;

  /// Fixed optimal-branch strategy, executed as-is.
  RunStats run_branch(const engine::Strategy& strategy) const;

  /// Context-aware model tree: fork chosen per block from the running
  /// estimate (Alg. 2).
  RunStats run_tree(const tree::ModelTree& tree) const;

  const net::BandwidthTrace& trace() const { return trace_; }

 private:
  struct Timeline {
    double t_ms;
    net::BandwidthEstimator estimator;
    util::Rng rng;
  };
  /// Mutable fault state threaded through one run_* sweep: the breaker
  /// persists across the sweep's inferences, mirroring a long-lived session.
  struct FaultState {
    CircuitBreaker breaker;
    int deadline_misses = 0;
    int edge_fallbacks = 0;
    int failures = 0;
  };
  FaultState make_fault_state() const;
  /// Executes `strategy` starting at `tl.t_ms`, walking blocks and paying
  /// compute/transfer per the timing mode. Returns total latency.
  double execute(Timeline& tl, const engine::Strategy& strategy,
                 FaultState& fs) const;
  /// Pays for the cloud leg at `strategy.cut` (deadline-aware), or the edge
  /// fallback / failure when the cloud is unreachable.
  void offload_tail(Timeline& tl, const engine::Strategy& strategy,
                    FaultState& fs) const;
  double block_compute_ms(Timeline& tl, const engine::Strategy& strategy,
                          std::size_t begin, std::size_t end) const;
  double transfer_ms(Timeline& tl, std::int64_t bytes) const;
  RunStats summarize(const std::vector<engine::Strategy>& strategies,
                     const std::vector<double>& latencies,
                     const FaultState& fs) const;
  double start_time(int inference_index) const;

  const engine::StrategyEvaluator* evaluator_;
  net::BandwidthTrace trace_;
  std::vector<std::size_t> boundaries_;
  RunnerConfig config_;
};

}  // namespace cadmc::runtime
