#include "runtime/executor.h"

#include <chrono>
#include <thread>

#include "obs/span.h"
#include "runtime/fault.h"
#include "tensor/serialize.h"

namespace cadmc::runtime {

ExecutionResult execute_range(nn::Model& model, const tensor::Tensor& input,
                              std::size_t begin, std::size_t end,
                              const latency::ComputeLatencyModel& device) {
  obs::ScopedSpan span("exec_range");
  ExecutionResult result;
  result.device_ms = device.range_latency_ms(model, begin, end);
  span.set_modelled_ms(result.device_ms);
  result.output = model.forward_range(input, begin, end, /*training=*/false);
  return result;
}

CloudExecutor::CloudExecutor(nn::Model cloud_half,
                             latency::ComputeLatencyModel device,
                             GatewayConfig config)
    : device_(std::move(device)),
      default_model_(std::make_shared<SessionModel>(std::move(cloud_half))),
      gateway_([this](const GatewayRequest& request) { return handle(request); },
               config) {}

CloudExecutor::~CloudExecutor() { stop(); }

std::uint16_t CloudExecutor::start() { return gateway_.start(); }
void CloudExecutor::stop() { gateway_.stop(); }

void CloudExecutor::register_session(std::uint64_t session_id,
                                     nn::Model cloud_half) {
  auto sm = std::make_shared<SessionModel>(std::move(cloud_half));
  std::lock_guard<std::mutex> lock(registry_mutex_);
  models_[session_id] = std::move(sm);
}

void CloudExecutor::unregister_session(std::uint64_t session_id) {
  std::shared_ptr<SessionModel> doomed;  // destroyed outside the lock
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto it = models_.find(session_id);
  if (it != models_.end()) {
    doomed = std::move(it->second);
    models_.erase(it);
  }
}

void CloudExecutor::set_straggler_injector(FaultInjector* injector,
                                           double base_ms) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  straggler_injector_ = injector;
  straggler_base_ms_ = base_ms;
}

Blob CloudExecutor::handle(const GatewayRequest& request) {
  obs::ScopedSpan span("cloud_handle");
  std::shared_ptr<SessionModel> sm;
  double straggle_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = models_.find(request.session_id);
    sm = it != models_.end() ? it->second : default_model_;
    if (straggler_injector_ != nullptr) {
      // The injector's RNG streams are not thread-safe; draw under the lock.
      const double factor = straggler_injector_->next_straggler_factor();
      if (factor > 1.0) straggle_ms = (factor - 1.0) * straggler_base_ms_;
    }
  }
  if (straggle_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(straggle_ms));
  std::size_t offset = 0;
  const tensor::Tensor features = tensor::decode_tensor(request.payload, offset);
  ExecutionResult result;
  {
    // Forward passes mutate layer caches: one request per model at a time,
    // but distinct sessions (distinct models) execute in parallel.
    std::lock_guard<std::mutex> lock(sm->mutex);
    result = execute_range(sm->model, features, 0, sm->model.size(), device_);
  }
  span.set_modelled_ms(result.device_ms);
  Blob response = tensor::encode_tensor(result.output);
  tensor::Tensor ms({1});
  ms(0) = static_cast<float>(result.device_ms);
  tensor::encode_tensor(ms, response);
  if (obs::enabled()) {
    obs::count("cadmc.cloud.requests");
    obs::count("cadmc.cloud.bytes_rx",
               static_cast<std::int64_t>(request.payload.size()));
    obs::count("cadmc.cloud.bytes_tx",
               static_cast<std::int64_t>(response.size()));
  }
  return response;
}

RemoteResult call_cloud(TcpClient& client, const tensor::Tensor& features) {
  obs::ScopedSpan span("cloud_call");
  const Blob request = tensor::encode_tensor(features);
  const Blob response = client.call(request);
  std::size_t offset = 0;
  RemoteResult result;
  result.logits = tensor::decode_tensor(response, offset);
  const tensor::Tensor ms = tensor::decode_tensor(response, offset);
  result.cloud_ms = ms(0);
  span.set_modelled_ms(result.cloud_ms);
  if (obs::enabled()) {
    obs::count("cadmc.cloud.calls");
    obs::count("cadmc.cloud.bytes_tx",
               static_cast<std::int64_t>(request.size()));
    obs::count("cadmc.cloud.bytes_rx",
               static_cast<std::int64_t>(response.size()));
  }
  return result;
}

}  // namespace cadmc::runtime
