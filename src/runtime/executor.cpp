#include "runtime/executor.h"

#include "obs/span.h"
#include "tensor/serialize.h"

namespace cadmc::runtime {

ExecutionResult execute_range(nn::Model& model, const tensor::Tensor& input,
                              std::size_t begin, std::size_t end,
                              const latency::ComputeLatencyModel& device) {
  obs::ScopedSpan span("exec_range");
  ExecutionResult result;
  result.device_ms = device.range_latency_ms(model, begin, end);
  span.set_modelled_ms(result.device_ms);
  result.output = model.forward_range(input, begin, end, /*training=*/false);
  return result;
}

CloudExecutor::CloudExecutor(nn::Model cloud_half,
                             latency::ComputeLatencyModel device)
    : model_(std::move(cloud_half)),
      device_(std::move(device)),
      server_([this](const Blob& request) { return handle(request); }) {}

CloudExecutor::~CloudExecutor() { stop(); }

std::uint16_t CloudExecutor::start() { return server_.start(); }
void CloudExecutor::stop() { server_.stop(); }

Blob CloudExecutor::handle(const Blob& request) {
  obs::ScopedSpan span("cloud_handle");
  std::size_t offset = 0;
  const tensor::Tensor features = tensor::decode_tensor(request, offset);
  const ExecutionResult result =
      execute_range(model_, features, 0, model_.size(), device_);
  span.set_modelled_ms(result.device_ms);
  Blob response = tensor::encode_tensor(result.output);
  tensor::Tensor ms({1});
  ms(0) = static_cast<float>(result.device_ms);
  tensor::encode_tensor(ms, response);
  if (obs::enabled()) {
    obs::count("cadmc.cloud.requests");
    obs::count("cadmc.cloud.bytes_rx",
               static_cast<std::int64_t>(request.size()));
    obs::count("cadmc.cloud.bytes_tx",
               static_cast<std::int64_t>(response.size()));
  }
  return response;
}

RemoteResult call_cloud(TcpClient& client, const tensor::Tensor& features) {
  obs::ScopedSpan span("cloud_call");
  const Blob request = tensor::encode_tensor(features);
  const Blob response = client.call(request);
  std::size_t offset = 0;
  RemoteResult result;
  result.logits = tensor::decode_tensor(response, offset);
  const tensor::Tensor ms = tensor::decode_tensor(response, offset);
  result.cloud_ms = ms(0);
  span.set_modelled_ms(result.cloud_ms);
  if (obs::enabled()) {
    obs::count("cadmc.cloud.calls");
    obs::count("cadmc.cloud.bytes_tx",
               static_cast<std::int64_t>(request.size()));
    obs::count("cadmc.cloud.bytes_rx",
               static_cast<std::int64_t>(response.size()));
  }
  return result;
}

}  // namespace cadmc::runtime
