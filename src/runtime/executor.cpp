#include "runtime/executor.h"

#include "tensor/serialize.h"

namespace cadmc::runtime {

ExecutionResult execute_range(nn::Model& model, const tensor::Tensor& input,
                              std::size_t begin, std::size_t end,
                              const latency::ComputeLatencyModel& device) {
  ExecutionResult result;
  result.device_ms = device.range_latency_ms(model, begin, end);
  result.output = model.forward_range(input, begin, end, /*training=*/false);
  return result;
}

CloudExecutor::CloudExecutor(nn::Model cloud_half,
                             latency::ComputeLatencyModel device)
    : model_(std::move(cloud_half)),
      device_(std::move(device)),
      server_([this](const Blob& request) { return handle(request); }) {}

CloudExecutor::~CloudExecutor() { stop(); }

std::uint16_t CloudExecutor::start() { return server_.start(); }
void CloudExecutor::stop() { server_.stop(); }

Blob CloudExecutor::handle(const Blob& request) {
  std::size_t offset = 0;
  const tensor::Tensor features = tensor::decode_tensor(request, offset);
  const ExecutionResult result =
      execute_range(model_, features, 0, model_.size(), device_);
  Blob response = tensor::encode_tensor(result.output);
  tensor::Tensor ms({1});
  ms(0) = static_cast<float>(result.device_ms);
  tensor::encode_tensor(ms, response);
  return response;
}

RemoteResult call_cloud(TcpClient& client, const tensor::Tensor& features) {
  const Blob response = client.call(tensor::encode_tensor(features));
  std::size_t offset = 0;
  RemoteResult result;
  result.logits = tensor::decode_tensor(response, offset);
  const tensor::Tensor ms = tensor::decode_tensor(response, offset);
  result.cloud_ms = ms(0);
  return result;
}

}  // namespace cadmc::runtime
