// Block execution: runs real tensors through model layer ranges while
// reporting latency from the device's analytic model (the host CPU is not
// the phone/TX2/cloud being modelled). The cloud executor wraps a TcpServer
// so features can cross a real socket in the field demo.
#pragma once

#include "latency/compute_model.h"
#include "nn/model.h"
#include "runtime/transport.h"

namespace cadmc::runtime {

struct ExecutionResult {
  tensor::Tensor output;
  double device_ms = 0.0;  // modelled latency on the profiled device
};

/// Runs layers [begin, end) of `model` on `input`.
ExecutionResult execute_range(nn::Model& model, const tensor::Tensor& input,
                              std::size_t begin, std::size_t end,
                              const latency::ComputeLatencyModel& device);

/// Cloud-side executor: owns the cloud half of a model behind a TcpServer.
/// Protocol: request = encoded feature tensor, response = encoded logits
/// followed by an encoded 1-element tensor holding the modelled cloud ms.
class CloudExecutor {
 public:
  CloudExecutor(nn::Model cloud_half, latency::ComputeLatencyModel device);
  ~CloudExecutor();

  std::uint16_t start();
  void stop();

 private:
  Blob handle(const Blob& request);

  nn::Model model_;
  latency::ComputeLatencyModel device_;
  TcpServer server_;
};

/// Edge-side remote call: sends features, returns logits + modelled cloud ms.
struct RemoteResult {
  tensor::Tensor logits;
  double cloud_ms = 0.0;
};
RemoteResult call_cloud(TcpClient& client, const tensor::Tensor& features);

}  // namespace cadmc::runtime
