// Block execution: runs real tensors through model layer ranges while
// reporting latency from the device's analytic model (the host CPU is not
// the phone/TX2/cloud being modelled). The cloud executor owns the cloud
// halves of one or more partitioned models behind a concurrent Gateway so
// features can cross a real socket in the field demo — in multi-session
// mode N FieldSessions share one executor, each with its own registered
// cloud half keyed by session id.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "latency/compute_model.h"
#include "nn/model.h"
#include "runtime/gateway.h"
#include "runtime/transport.h"

namespace cadmc::runtime {

class FaultInjector;

struct ExecutionResult {
  tensor::Tensor output;
  double device_ms = 0.0;  // modelled latency on the profiled device
};

/// Runs layers [begin, end) of `model` on `input`.
ExecutionResult execute_range(nn::Model& model, const tensor::Tensor& input,
                              std::size_t begin, std::size_t end,
                              const latency::ComputeLatencyModel& device);

/// Cloud-side executor: serves cloud halves behind a concurrent Gateway.
/// Protocol: request = encoded feature tensor, response = encoded logits
/// followed by an encoded 1-element tensor holding the modelled cloud ms.
///
/// Session routing: requests stamped with a registered session id execute
/// that session's model; anonymous (id 0) or unknown ids fall back to the
/// default model from the constructor. Gateway workers execute requests
/// concurrently, so every model is guarded by its own mutex (forward passes
/// mutate layer caches) while distinct sessions run genuinely in parallel.
class CloudExecutor {
 public:
  CloudExecutor(nn::Model cloud_half, latency::ComputeLatencyModel device,
                GatewayConfig config = {});
  ~CloudExecutor();

  std::uint16_t start();
  void stop();
  bool running() const { return gateway_.running(); }
  /// Last bound port; a restarted executor re-binds it when possible, so
  /// sessions that cached the address reconnect without rediscovery.
  std::uint16_t port() const { return gateway_.port(); }

  /// Multi-session mode: requests stamped with `session_id` run this model.
  /// Safe while serving; replaces any previous registration for the id.
  void register_session(std::uint64_t session_id, nn::Model cloud_half);
  /// Safe while serving: a request mid-execution finishes on the (kept
  /// alive) old model; later requests fall back to the default model.
  void unregister_session(std::uint64_t session_id);

  /// Chaos hook: each handled request draws a straggler factor f >= 1 from
  /// `injector` and sleeps (f - 1) * base_ms before computing — server-side
  /// compute stragglers, as opposed to the client-side frame faults. Not
  /// owned; pass nullptr to disable.
  void set_straggler_injector(FaultInjector* injector, double base_ms = 20.0);

 private:
  // shared_ptr so unregister/replace while a worker is mid-forward keeps the
  // old model (and its mutex) alive until that worker finishes.
  struct SessionModel {
    explicit SessionModel(nn::Model m) : model(std::move(m)) {}
    nn::Model model;
    std::mutex mutex;  // forward passes mutate layer caches
  };

  Blob handle(const GatewayRequest& request);

  latency::ComputeLatencyModel device_;
  std::shared_ptr<SessionModel> default_model_;
  mutable std::mutex registry_mutex_;  // guards models_ + injector fields
  std::map<std::uint64_t, std::shared_ptr<SessionModel>> models_;
  FaultInjector* straggler_injector_ = nullptr;
  double straggler_base_ms_ = 20.0;
  Gateway gateway_;
};

/// Edge-side remote call: sends features, returns logits + modelled cloud ms.
struct RemoteResult {
  tensor::Tensor logits;
  double cloud_ms = 0.0;
};
RemoteResult call_cloud(TcpClient& client, const tensor::Tensor& features);

}  // namespace cadmc::runtime
