#include "runtime/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace_export.h"

namespace cadmc::runtime {

namespace {
void validate_prob(double p, const char* what) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " outside [0,1]");
}
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, obs::MetricsRegistry* metrics)
    : plan_(std::move(plan)),
      metrics_(metrics),
      frame_rng_(plan_.seed ^ 0xF4A3E5ULL),
      crash_rng_(plan_.seed ^ 0xC4A54ULL),
      straggler_rng_(plan_.seed ^ 0x57A66ULL) {
  validate_prob(plan_.frame_drop_prob, "frame_drop_prob");
  validate_prob(plan_.frame_corrupt_prob, "frame_corrupt_prob");
  validate_prob(plan_.frame_truncate_prob, "frame_truncate_prob");
  validate_prob(plan_.cloud_crash_prob, "cloud_crash_prob");
  validate_prob(plan_.straggler_prob, "straggler_prob");
  if (plan_.frame_drop_prob + plan_.frame_corrupt_prob +
          plan_.frame_truncate_prob >
      1.0)
    throw std::invalid_argument("FaultPlan: frame fault probs sum > 1");
  if (plan_.outage_rate_per_s < 0.0)
    throw std::invalid_argument("FaultPlan: negative outage rate");
  if (plan_.outage_mean_ms <= 0.0)
    throw std::invalid_argument("FaultPlan: non-positive outage mean");
}

obs::MetricsRegistry& FaultInjector::metrics() const {
  return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::global();
}

net::BandwidthTrace FaultInjector::degrade_trace(
    const net::BandwidthTrace& trace) const {
  std::vector<double> samples = trace.samples();
  const double dt = trace.dt_ms();
  std::vector<BlackoutWindow> windows = plan_.blackouts;

  // Sample outage starts per trace interval; an interval of dt ms sees a
  // start with probability rate * dt / 1000 (rate is per second).
  if (plan_.outage_rate_per_s > 0.0) {
    util::Rng rng(plan_.seed ^ 0xB1AC0ULL);
    const double p_start =
        std::min(1.0, plan_.outage_rate_per_s * dt / 1000.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (!rng.bernoulli(p_start)) continue;
      // Exponential duration with mean outage_mean_ms.
      const double u = std::max(rng.uniform(), 1e-12);
      windows.push_back({dt * static_cast<double>(i),
                         -plan_.outage_mean_ms * std::log(u)});
    }
  }

  std::size_t zeroed_windows = 0;
  for (const BlackoutWindow& w : windows) {
    if (w.duration_ms <= 0.0) continue;
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::floor(w.start_ms / dt)));
    const auto last = static_cast<std::size_t>(
        std::max(0.0, std::ceil((w.start_ms + w.duration_ms) / dt)));
    if (first >= samples.size()) continue;
    ++zeroed_windows;
    for (std::size_t i = first; i < std::min(last, samples.size()); ++i)
      samples[i] = 0.0;
  }
  if (obs::enabled() && zeroed_windows > 0)
    metrics()
        .counter("cadmc.runtime.fault.blackout_windows")
        .add(static_cast<std::int64_t>(zeroed_windows));
  return net::BandwidthTrace(dt, std::move(samples));
}

FrameFault FaultInjector::next_frame_fault() {
  if (schedule_pos_ < plan_.frame_schedule.size()) {
    const FrameFault fault = plan_.frame_schedule[schedule_pos_++];
    if (fault != FrameFault::kNone && obs::enabled())
      metrics().counter("cadmc.runtime.fault.scheduled_frame_faults").add(1);
    return fault;
  }
  const double u = frame_rng_.uniform();
  if (u < plan_.frame_drop_prob) {
    if (obs::enabled()) metrics().counter("cadmc.runtime.fault.frame_drops").add(1);
    return FrameFault::kDrop;
  }
  if (u < plan_.frame_drop_prob + plan_.frame_corrupt_prob) {
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.frame_corruptions").add(1);
    return FrameFault::kCorrupt;
  }
  if (u < plan_.frame_drop_prob + plan_.frame_corrupt_prob +
              plan_.frame_truncate_prob) {
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.frame_truncations").add(1);
    return FrameFault::kTruncate;
  }
  return FrameFault::kNone;
}

bool FaultInjector::next_cloud_crash() {
  const bool crash = crash_rng_.bernoulli(plan_.cloud_crash_prob);
  if (crash && obs::enabled())
    metrics().counter("cadmc.runtime.fault.cloud_crashes").add(1);
  return crash;
}

double FaultInjector::next_straggler_factor() {
  if (!straggler_rng_.bernoulli(plan_.straggler_prob)) return 1.0;
  if (obs::enabled()) metrics().counter("cadmc.runtime.fault.stragglers").add(1);
  return std::exp(std::abs(straggler_rng_.normal(0.0, plan_.straggler_sigma)));
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config,
                               obs::MetricsRegistry* metrics)
    : config_(config), metrics_(metrics) {
  if (config_.failure_threshold < 1)
    throw std::invalid_argument("CircuitBreaker: failure_threshold < 1");
  if (config_.probe_interval < 1)
    throw std::invalid_argument("CircuitBreaker: probe_interval < 1");
}

obs::MetricsRegistry& CircuitBreaker::metrics() const {
  return metrics_ != nullptr ? *metrics_ : obs::MetricsRegistry::global();
}

bool CircuitBreaker::allow_request() {
  if (state_ == State::kClosed) return true;
  // While open, every probe_interval-th request half-opens the breaker.
  ++open_requests_;
  if (open_requests_ % config_.probe_interval == 0) {
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.breaker_probes").add(1);
    return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  if (state_ == State::kOpen) {
    state_ = State::kClosed;
    open_requests_ = 0;
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.breaker_closes").add(1);
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    open_requests_ = 0;
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.breaker_opens").add(1);
    // A breaker opening is the postmortem moment: flush the flight recorder
    // so the dump holds the spans and faults that led here.
    obs::flight_fault(obs::FlightEventKind::kBreaker, "breaker_open");
  }
}

}  // namespace cadmc::runtime
