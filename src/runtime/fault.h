// Fault model for the edge-cloud runtime. The paper's field tests
// (Sec. VII-B3) show the emulation-vs-field gap comes from reality
// misbehaving: links fade to nothing, packets die in flight, the cloud peer
// disappears, and compute occasionally straggles. This header gives the
// runtime a deterministic, seeded vocabulary for those events:
//
//  * FaultPlan / FaultInjector — declarative fault schedule. Link blackouts
//    are spliced into a BandwidthTrace as zero-bandwidth windows (the rest of
//    the stack already prices transfers off the trace, so a blackout is just
//    a trace the transfer integral cannot cross). Frame drops/corruption/
//    truncation are decided per transport frame, cloud crashes per call, and
//    compute stragglers as lognormal multipliers per block.
//  * CircuitBreaker — consecutive-failure breaker with periodic half-open
//    probes, shared by FieldSession, InferenceRunner and DecisionEngine to
//    decide when to stop waiting on the cloud and run the all-edge branch.
//
// Every decision consumes an independent deterministic RNG stream, so a
// fault schedule is reproducible bit-for-bit for a given seed. All events
// are counted under cadmc.runtime.fault.* while obs::enabled().
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace cadmc::runtime {

/// A link outage: bandwidth is zero for [start_ms, start_ms + duration_ms).
struct BlackoutWindow {
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

/// Per-frame transport fault (at most one per frame).
enum class FrameFault { kNone, kDrop, kCorrupt, kTruncate };

struct FaultPlan {
  // Link faults: explicit windows plus randomly sampled outages at
  // `outage_rate_per_s` starts/second with exponential durations of mean
  // `outage_mean_ms`.
  std::vector<BlackoutWindow> blackouts;
  double outage_rate_per_s = 0.0;
  double outage_mean_ms = 800.0;

  // Transport-frame faults. The explicit schedule is consumed first (one
  // entry per frame, in order — exact scripting for tests); once exhausted,
  // faults are drawn per frame from the probabilities below.
  std::vector<FrameFault> frame_schedule;
  double frame_drop_prob = 0.0;
  double frame_corrupt_prob = 0.0;
  double frame_truncate_prob = 0.0;

  // Cloud-process crash probability per call (the peer dies and must be
  // restarted by the harness).
  double cloud_crash_prob = 0.0;

  // Compute stragglers: with `straggler_prob` a block's compute is inflated
  // by exp(|N(0, straggler_sigma)|) (lognormal tail, always >= 1).
  double straggler_prob = 0.0;
  double straggler_sigma = 0.6;

  std::uint64_t seed = 0xFA017;
};

/// Draws fault decisions from a FaultPlan. Each fault family consumes its
/// own RNG stream so, e.g., adding frame faults does not shift the blackout
/// schedule.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         obs::MetricsRegistry* metrics = nullptr);

  const FaultPlan& plan() const { return plan_; }

  /// Returns `trace` with the plan's blackout windows (explicit + sampled)
  /// zeroed out. Deterministic for a given plan; does not consume the
  /// per-frame/per-call streams.
  net::BandwidthTrace degrade_trace(const net::BandwidthTrace& trace) const;

  /// Fault decision for the next transport frame.
  FrameFault next_frame_fault();

  /// True if the cloud process crashes before serving the next call.
  bool next_cloud_crash();

  /// Multiplicative compute inflation for the next block (>= 1.0).
  double next_straggler_factor();

 private:
  obs::MetricsRegistry& metrics() const;

  FaultPlan plan_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t schedule_pos_ = 0;
  util::Rng frame_rng_;
  util::Rng crash_rng_;
  util::Rng straggler_rng_;
};

struct CircuitBreakerConfig {
  int failure_threshold = 3;  // consecutive failures that open the breaker
  int probe_interval = 4;     // while open, 1 of every N requests half-opens
};

/// Consecutive-failure circuit breaker. Closed: every request goes to the
/// cloud. After `failure_threshold` consecutive failures it opens: requests
/// are answered locally except a periodic probe (every `probe_interval`-th
/// request) that is allowed through so a recovered cloud can close the
/// breaker again. Transitions are counted under cadmc.runtime.fault.*.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {},
                          obs::MetricsRegistry* metrics = nullptr);

  /// Should this request try the cloud? Always true while closed; while open
  /// true only for the periodic probe.
  bool allow_request();
  void record_success();
  void record_failure();

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  obs::MetricsRegistry& metrics() const;

  CircuitBreakerConfig config_;
  obs::MetricsRegistry* metrics_ = nullptr;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int open_requests_ = 0;  // requests seen since the breaker opened
};

}  // namespace cadmc::runtime
