#include "runtime/field.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "obs/span.h"
#include "obs/trace_export.h"

namespace cadmc::runtime {

FieldSession::FieldSession(engine::RealizedStrategy realized,
                           latency::ComputeLatencyModel edge_device,
                           latency::ComputeLatencyModel cloud_device,
                           net::BandwidthTrace trace, double rtt_ms,
                           double time_scale, FieldFaultConfig faults)
    : cut_(realized.cut),
      model_size_(realized.model.size()),
      edge_model_(realized.model.slice(0, realized.cut)),
      fallback_model_(realized.model.slice(realized.cut, realized.model.size())),
      edge_device_(std::move(edge_device)),
      trace_(std::move(trace)),
      rtt_ms_(rtt_ms),
      time_scale_(time_scale),
      faults_(faults),
      breaker_(faults.breaker, faults.metrics) {
  // Field mode is where the link misbehaves: the flight recorder is always
  // on so a fault dump exists even when metrics collection is off.
  obs::set_flight_recording(true);
  if (offloads()) {
    std::uint16_t port = 0;
    if (faults_.shared_cloud != nullptr) {
      // Multi-session mode: this session's cloud half rides the shared
      // gateway, keyed by session id. start() is idempotent.
      faults_.shared_cloud->register_session(
          faults_.session_id,
          realized.model.slice(realized.cut, realized.model.size()));
      port = faults_.shared_cloud->start();
    } else {
      cloud_ = std::make_unique<CloudExecutor>(
          realized.model.slice(realized.cut, realized.model.size()),
          std::move(cloud_device));
      port = cloud_->start();
    }
    cloud_up_ = true;
    client_.connect(port, client_config());
    client_.set_fault_injector(faults_.injector);
  }
}

TcpClientConfig FieldSession::client_config() const {
  TcpClientConfig config;
  config.timeout_ms = faults_.cloud_deadline_ms;
  config.max_retries = faults_.max_retries;
  config.backoff_ms = faults_.backoff_ms;
  config.session_id = faults_.session_id;
  return config;
}

FieldSession::~FieldSession() {
  client_.close();
  if (cloud_) cloud_->stop();
  if (faults_.shared_cloud != nullptr && offloads())
    faults_.shared_cloud->unregister_session(faults_.session_id);
}

obs::MetricsRegistry& FieldSession::metrics() const {
  return faults_.metrics != nullptr ? *faults_.metrics
                                    : obs::MetricsRegistry::global();
}

CloudExecutor* FieldSession::executor() const {
  return faults_.shared_cloud != nullptr ? faults_.shared_cloud : cloud_.get();
}

void FieldSession::kill_cloud() {
  CloudExecutor* exec = executor();
  if (exec == nullptr || !cloud_up_) return;
  // Close the client first so no reply is pending on a connection the
  // draining gateway is about to shed.
  client_.close();
  if (exec->running()) exec->stop();
  cloud_up_ = false;
}

void FieldSession::restart_cloud() {
  CloudExecutor* exec = executor();
  if (exec == nullptr || cloud_up_) return;
  // Port-stable restart: a shared gateway re-binds its old port, so the
  // *other* sessions riding it reconnect inside their own retry loops
  // without being told the address again.
  const std::uint16_t port = exec->running() ? exec->port() : exec->start();
  cloud_up_ = true;
  client_.connect(port, client_config());
  client_.set_fault_injector(faults_.injector);
  if (obs::enabled())
    metrics().counter("cadmc.runtime.fault.cloud_restarts").add(1);
}

FieldOutcome FieldSession::degrade_locally(FieldOutcome outcome,
                                           const tensor::Tensor& features) {
  outcome.degraded = true;
  const ExecutionResult local = execute_range(
      fallback_model_, features, 0, fallback_model_.size(), edge_device_);
  outcome.logits = local.output;
  outcome.cloud_ms = local.device_ms;  // the suffix pays edge-device prices
  if (obs::enabled())
    metrics().counter("cadmc.runtime.fault.edge_fallbacks").add(1);
  return outcome;
}

FieldOutcome FieldSession::infer(const tensor::Tensor& input,
                                 double t_virtual_ms) {
  // Root of the per-frame causal tree: edge compute -> transfer ->
  // cloud compute (server-side spans join via the frame's trace context).
  obs::ScopedSpan frame_span("field_frame", faults_.metrics);
  FieldOutcome outcome;
  tensor::Tensor features = input;
  if (cut_ > 0) {
    const ExecutionResult edge =
        execute_range(edge_model_, input, 0, edge_model_.size(), edge_device_);
    outcome.edge_ms = edge.device_ms;
    features = edge.output;
  }
  if (!offloads()) {
    outcome.logits = features;
    frame_span.set_modelled_ms(outcome.total_ms());
    return outcome;
  }
  if (faults_.injector != nullptr && faults_.injector->next_cloud_crash())
    kill_cloud();
  if (!breaker_.allow_request()) return degrade_locally(outcome, features);

  const double transfer = shaped_transfer_ms(
      trace_, t_virtual_ms + outcome.edge_ms, features.byte_size(), rtt_ms_);
  if (!std::isfinite(transfer)) {
    // Dead link: the payload would never arrive. Treat it as a deadline
    // miss without sleeping on it.
    breaker_.record_failure();
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.deadline_misses").add(1);
    obs::flight_fault(obs::FlightEventKind::kFault, "deadline_miss");
    outcome.transfer_ms = faults_.cloud_deadline_ms;
    return degrade_locally(outcome, features);
  }
  outcome.transfer_ms = transfer;
  {
    obs::ScopedSpan transfer_span("transfer", faults_.metrics);
    transfer_span.set_modelled_ms(outcome.transfer_ms);
    if (time_scale_ > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          outcome.transfer_ms * time_scale_));
    }
  }
  try {
    const RemoteResult remote = call_cloud(client_, features);
    breaker_.record_success();
    outcome.logits = remote.logits;
    outcome.cloud_ms = remote.cloud_ms;
    frame_span.set_modelled_ms(outcome.total_ms());
    return outcome;
  } catch (const TransportError&) {
    breaker_.record_failure();
    if (obs::enabled())
      metrics().counter("cadmc.runtime.fault.deadline_misses").add(1);
    obs::flight_fault(obs::FlightEventKind::kFault, "deadline_miss");
    // The wait until the deadline fired is what the failed attempt cost.
    outcome.transfer_ms = faults_.cloud_deadline_ms;
    return degrade_locally(outcome, features);
  }
}

}  // namespace cadmc::runtime
