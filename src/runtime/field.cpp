#include "runtime/field.h"

#include <chrono>
#include <thread>

namespace cadmc::runtime {

FieldSession::FieldSession(engine::RealizedStrategy realized,
                           latency::ComputeLatencyModel edge_device,
                           latency::ComputeLatencyModel cloud_device,
                           net::BandwidthTrace trace, double rtt_ms,
                           double time_scale)
    : cut_(realized.cut),
      model_size_(realized.model.size()),
      edge_model_(realized.model.slice(0, realized.cut)),
      edge_device_(std::move(edge_device)),
      trace_(std::move(trace)),
      rtt_ms_(rtt_ms),
      time_scale_(time_scale) {
  if (offloads()) {
    cloud_ = std::make_unique<CloudExecutor>(
        realized.model.slice(realized.cut, realized.model.size()),
        std::move(cloud_device));
    const std::uint16_t port = cloud_->start();
    client_.connect(port);
  }
}

FieldSession::~FieldSession() {
  client_.close();
  if (cloud_) cloud_->stop();
}

FieldOutcome FieldSession::infer(const tensor::Tensor& input,
                                 double t_virtual_ms) {
  FieldOutcome outcome;
  tensor::Tensor features = input;
  if (cut_ > 0) {
    const ExecutionResult edge =
        execute_range(edge_model_, input, 0, edge_model_.size(), edge_device_);
    outcome.edge_ms = edge.device_ms;
    features = edge.output;
  }
  if (!offloads()) {
    outcome.logits = features;
    return outcome;
  }
  outcome.transfer_ms = shaped_transfer_ms(
      trace_, t_virtual_ms + outcome.edge_ms, features.byte_size(), rtt_ms_);
  if (time_scale_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        outcome.transfer_ms * time_scale_));
  }
  const RemoteResult remote = call_cloud(client_, features);
  outcome.logits = remote.logits;
  outcome.cloud_ms = remote.cloud_ms;
  return outcome;
}

}  // namespace cadmc::runtime
