// Field session: end-to-end inference with *real* tensors over a *real*
// loopback TCP socket, paced by a bandwidth trace. The compute/transfer
// latencies reported are virtual (modelled device + shaped trace time) while
// the data path is genuine: edge forward pass -> encode features -> socket
// -> cloud forward pass -> logits back. Used by the field-demo example and
// integration tests to prove the composed models the engine ships actually
// run and agree with local execution.
//
// Fault tolerance (Sec. VII-B3: the field is where the link misbehaves):
// cloud calls run under a deadline with bounded retry; a circuit breaker
// counts consecutive cloud failures and, once open, answers inferences by
// running the model suffix locally on the edge device (the uncompressed
// suffix is exactly the all-edge fork the model tree keeps for dead links),
// letting a periodic probe close the breaker when the cloud returns. A
// FaultInjector can kill the cloud process or perturb transport frames.
#pragma once

#include <memory>

#include "engine/strategy.h"
#include "net/trace.h"
#include "runtime/executor.h"
#include "runtime/fault.h"
#include "runtime/shaper.h"

namespace cadmc::runtime {

struct FieldOutcome {
  tensor::Tensor logits;
  double edge_ms = 0.0;      // modelled edge compute
  double transfer_ms = 0.0;  // shaped transfer (virtual)
  double cloud_ms = 0.0;     // modelled cloud (or local-fallback) compute
  bool degraded = false;     // served by the edge-only fallback path
  double total_ms() const { return edge_ms + transfer_ms + cloud_ms; }
};

/// Fault-tolerance knobs for a FieldSession. Defaults reproduce the legacy
/// behaviour (no deadline, never degrade) except that a dead link (infinite
/// shaped transfer) always falls back instead of hanging.
struct FieldFaultConfig {
  double cloud_deadline_ms = 0.0;  // socket deadline per call; 0 = blocking
  int max_retries = 1;             // transport-level retries per call
  double backoff_ms = 5.0;
  CircuitBreakerConfig breaker;
  FaultInjector* injector = nullptr;        // optional chaos (not owned)
  obs::MetricsRegistry* metrics = nullptr;  // null = global registry

  // Multi-session mode: instead of owning a private CloudExecutor, the
  // session registers its cloud half (keyed by session_id) with this shared
  // one — N sessions then multiplex one gateway. Not owned; must outlive
  // the session. session_id must be unique per session and non-zero for
  // duplicate-detection and per-session state to apply.
  CloudExecutor* shared_cloud = nullptr;
  std::uint64_t session_id = 0;
};

class FieldSession {
 public:
  /// Takes a weight-faithful realized strategy; the cloud half is moved
  /// behind a TcpServer. `time_scale` compresses real sleeping (0 disables
  /// pacing entirely — transfer time is still computed, just not slept).
  FieldSession(engine::RealizedStrategy realized,
               latency::ComputeLatencyModel edge_device,
               latency::ComputeLatencyModel cloud_device,
               net::BandwidthTrace trace, double rtt_ms,
               double time_scale = 0.0, FieldFaultConfig faults = {});
  ~FieldSession();

  /// Runs one inference starting at virtual time `t_virtual_ms`. Never
  /// hangs or throws on cloud failure: if the cloud is unreachable (deadline
  /// misses, crash, open breaker, dead link) the suffix runs locally and the
  /// outcome is marked `degraded`.
  FieldOutcome infer(const tensor::Tensor& input, double t_virtual_ms);

  bool offloads() const { return cut_ < model_size_; }

  /// Simulates a cloud-process crash: the executor stops serving and
  /// in-flight/future calls fail until restart_cloud(). In shared-cloud
  /// mode this stops the shared gateway — every session riding it degrades,
  /// which is exactly what a cloud-process death looks like.
  void kill_cloud();
  /// Restarts the cloud executor (port-stable when possible) and reconnects
  /// the client. The breaker stays open until a probe call succeeds.
  void restart_cloud();

  CircuitBreaker::State breaker_state() const { return breaker_.state(); }

 private:
  FieldOutcome degrade_locally(FieldOutcome outcome,
                               const tensor::Tensor& features);
  obs::MetricsRegistry& metrics() const;
  TcpClientConfig client_config() const;
  /// The executor this session's cloud half lives on (shared or owned).
  CloudExecutor* executor() const;

  std::size_t cut_, model_size_;
  nn::Model edge_model_;
  nn::Model fallback_model_;  // uncompressed suffix, runnable on the edge
  latency::ComputeLatencyModel edge_device_;
  net::BandwidthTrace trace_;
  double rtt_ms_, time_scale_;
  FieldFaultConfig faults_;
  CircuitBreaker breaker_;
  std::unique_ptr<CloudExecutor> cloud_;
  TcpClient client_;
  bool cloud_up_ = false;
};

}  // namespace cadmc::runtime
