// Field session: end-to-end inference with *real* tensors over a *real*
// loopback TCP socket, paced by a bandwidth trace. The compute/transfer
// latencies reported are virtual (modelled device + shaped trace time) while
// the data path is genuine: edge forward pass -> encode features -> socket
// -> cloud forward pass -> logits back. Used by the field-demo example and
// integration tests to prove the composed models the engine ships actually
// run and agree with local execution.
#pragma once

#include <memory>

#include "engine/strategy.h"
#include "net/trace.h"
#include "runtime/executor.h"
#include "runtime/shaper.h"

namespace cadmc::runtime {

struct FieldOutcome {
  tensor::Tensor logits;
  double edge_ms = 0.0;      // modelled edge compute
  double transfer_ms = 0.0;  // shaped transfer (virtual)
  double cloud_ms = 0.0;     // modelled cloud compute
  double total_ms() const { return edge_ms + transfer_ms + cloud_ms; }
};

class FieldSession {
 public:
  /// Takes a weight-faithful realized strategy; the cloud half is moved
  /// behind a TcpServer. `time_scale` compresses real sleeping (0 disables
  /// pacing entirely — transfer time is still computed, just not slept).
  FieldSession(engine::RealizedStrategy realized,
               latency::ComputeLatencyModel edge_device,
               latency::ComputeLatencyModel cloud_device,
               net::BandwidthTrace trace, double rtt_ms,
               double time_scale = 0.0);
  ~FieldSession();

  /// Runs one inference starting at virtual time `t_virtual_ms`.
  FieldOutcome infer(const tensor::Tensor& input, double t_virtual_ms);

  bool offloads() const { return cut_ < model_size_; }

 private:
  std::size_t cut_, model_size_;
  nn::Model edge_model_;
  latency::ComputeLatencyModel edge_device_;
  net::BandwidthTrace trace_;
  double rtt_ms_, time_scale_;
  std::unique_ptr<CloudExecutor> cloud_;
  TcpClient client_;
};

}  // namespace cadmc::runtime
