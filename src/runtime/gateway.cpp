#include "runtime/gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/span.h"
#include "obs/trace_export.h"

namespace cadmc::runtime {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// One accepted socket. The fd is closed only in the destructor — workers
/// may still hold a reply reference after the reactor dropped the
/// connection, and closing early would let the kernel recycle the fd number
/// under them (a write to a stranger's socket). `dead` makes late replies
/// cheap no-ops; `write_mutex` serializes reactor-free response writes from
/// concurrent workers.
struct Gateway::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  Blob rx;  // unparsed bytes received so far
  std::mutex write_mutex;
  std::atomic<bool> dead{false};
};

/// Per-session gateway state (keyed by FrameMeta::session_id != 0).
struct Gateway::Session {
  explicit Session(const CircuitBreakerConfig& config,
                   obs::MetricsRegistry* metrics)
      : breaker(config, metrics) {}

  double last_active_ms = 0.0;
  // Duplicate short-circuit: the reply target of each inflight sequence
  // (a retry re-points it at the new connection), plus the last completed
  // response so a retry that lost the original reply is served from cache.
  std::map<std::uint64_t, std::shared_ptr<Connection>> inflight;
  std::uint64_t cached_sequence = 0;
  bool has_cached = false;
  FrameKind cached_kind = FrameKind::kResponse;
  Blob cached_payload;
  CircuitBreaker breaker;
};

/// One admitted, not-yet-executed request.
struct Gateway::Work {
  Blob payload;
  TraceContext trace;
  std::uint64_t session_id = 0;
  std::uint64_t sequence = 0;
  double budget_ms = 0.0;
  double deadline_abs_ms = std::numeric_limits<double>::infinity();
  double enqueue_ms = 0.0;
  double recv_obs_ms = 0.0;  // obs::steady_now_ms() at admission — anchors
                             // the gateway_queue span and the remote clock
                             // offset at receive time, not execution time
  // Reply target for anonymous requests; session requests resolve the live
  // target through Session::inflight at completion (it may have been
  // re-pointed by a duplicate), falling back to this one.
  std::shared_ptr<Connection> conn;
};

Gateway::Gateway(GatewayHandler handler, GatewayConfig config)
    : handler_(std::move(handler)), config_(config) {
  if (config_.worker_threads < 1) config_.worker_threads = 1;
  if (config_.max_queue < 1) config_.max_queue = 1;
  if (config_.max_inflight_per_session < 1) config_.max_inflight_per_session = 1;
}

Gateway::~Gateway() { stop(); }

obs::MetricsRegistry& Gateway::metrics() const {
  return config_.metrics != nullptr ? *config_.metrics
                                    : obs::MetricsRegistry::global();
}

std::size_t Gateway::session_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

GatewayStats Gateway::stats() const {
  GatewayStats s;
  s.running = running_.load(std::memory_order_acquire);
  s.draining = draining_.load(std::memory_order_acquire);
  s.accepted = n_accepted_.load(std::memory_order_relaxed);
  s.accept_overflow = n_accept_overflow_.load(std::memory_order_relaxed);
  s.admitted = n_admitted_.load(std::memory_order_relaxed);
  s.shed = n_shed_.load(std::memory_order_relaxed);
  s.expired = n_expired_.load(std::memory_order_relaxed);
  s.duplicates = n_duplicates_.load(std::memory_order_relaxed);
  s.completed = n_completed_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  const double now = now_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  s.queue_depth = queue_.size();
  s.executing = executing_;
  s.connections = connections_.size();
  s.sessions.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    GatewaySessionStats gs;
    gs.session_id = id;
    gs.inflight = static_cast<int>(session.inflight.size());
    gs.breaker_open = session.breaker.state() == CircuitBreaker::State::kOpen;
    gs.consecutive_failures = session.breaker.consecutive_failures();
    gs.has_cached_response = session.has_cached;
    gs.idle_ms = now - session.last_active_ms;
    s.sessions.push_back(gs);
  }
  return s;
}

std::uint16_t Gateway::start() {
  if (running_.load(std::memory_order_acquire)) return port_;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("Gateway: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // A restarted gateway tries its previous port first so sessions that
  // cached the address reconnect without rediscovery; fall back to an
  // ephemeral port if something claimed it in the meantime.
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("Gateway: bind() failed");
    }
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0 ||
      !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Gateway: listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Gateway: epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_workers_ = false;
  }
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (int i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  reactor_thread_ = std::thread([this] { reactor(); });
  return port_;
}

void Gateway::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Phase 1: drain. The reactor notices running_ == false within one poll
  // tick and stops accepting/reading; workers keep consuming the queue.
  draining_.store(true, std::memory_order_release);
  struct Pending {
    std::shared_ptr<Connection> conn;
    FrameKind kind;
    Blob payload;
    std::uint64_t session_id;
    std::uint64_t sequence;
  };
  std::vector<Pending> replies;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(config_.drain_ms),
        [this] { return queue_.empty() && executing_ == 0; });
    // Phase 2: the drain budget is spent — shed what is left with BUSY so no
    // client is left hanging on a request the gateway will never run.
    for (Work& w : queue_) {
      std::shared_ptr<Connection> target = std::move(w.conn);
      auto session = sessions_.find(w.session_id);
      if (session != sessions_.end()) {
        auto inflight = session->second.inflight.find(w.sequence);
        if (inflight != session->second.inflight.end()) {
          if (inflight->second != nullptr) target = inflight->second;
          session->second.inflight.erase(inflight);
        }
      }
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) metrics().counter("cadmc.gateway.shed").add(1);
      replies.push_back(
          {std::move(target), FrameKind::kBusy, {}, w.session_id, w.sequence});
    }
    queue_.clear();
    stop_workers_ = true;
    update_gauges_locked();
  }
  work_cv_.notify_all();
  for (Pending& r : replies)
    respond(r.conn, r.kind, r.payload, r.session_id, r.sequence);
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [fd, conn] : connections_)
      conn->dead.store(true, std::memory_order_release);
    connections_.clear();  // destructors close the fds
    sessions_.clear();
    update_gauges_locked();
  }
  draining_.store(false, std::memory_order_release);
}

void Gateway::reactor() {
  std::array<epoll_event, 64> events;
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (!running_.load(std::memory_order_acquire)) break;
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        // Accept everything the backlog delivered this tick.
        for (;;) {
          const int client = ::accept(listen_fd_, nullptr, nullptr);
          if (client < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN (drained) or a transient error
          }
          bool over_capacity;
          {
            std::lock_guard<std::mutex> lock(mutex_);
            over_capacity = static_cast<int>(connections_.size()) >=
                            config_.max_connections;
          }
          if (over_capacity || !set_nonblocking(client)) {
            // Out of connection budget: shed at the door, visibly. (The
            // kernel-level variant of this — SYN-queue overflow on the old
            // backlog-4 listener — was invisible; this one is counted.)
            n_accept_overflow_.fetch_add(1, std::memory_order_relaxed);
            if (obs::enabled())
              metrics().counter("cadmc.gateway.accept_overflow").add(1);
            ::close(client);
            continue;
          }
          auto conn = std::make_shared<Connection>(client);
          epoll_event cev{};
          cev.events = EPOLLIN | EPOLLRDHUP;
          cev.data.fd = client;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &cev) != 0)
            continue;  // conn destructor closes the fd
          {
            std::lock_guard<std::mutex> lock(mutex_);
            connections_[client] = std::move(conn);
          }
          n_accepted_.fetch_add(1, std::memory_order_relaxed);
          if (obs::enabled())
            metrics().counter("cadmc.gateway.accepted").add(1);
        }
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = connections_.find(fd);
        if (it != connections_.end()) conn = it->second;
      }
      if (conn == nullptr) continue;  // already dropped this tick
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        drop_connection(conn);
        continue;
      }
      on_readable(conn);
    }
    reap_idle_sessions();
  }
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Gateway::drop_connection(const std::shared_ptr<Connection>& conn) {
  conn->dead.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::shutdown(conn->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(conn->fd);  // fd closes once the last worker ref drops
}

void Gateway::on_readable(const std::shared_ptr<Connection>& conn) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {  // peer closed or hard error
      drop_connection(conn);
      return;
    }
    conn->rx.insert(conn->rx.end(), buf, buf + n);
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;
  }
  // Peel off every complete frame the buffer now holds. parse_frame never
  // over-reads and flags poisoned framing (bad length / payload CRC) as
  // kBad, at which point the stream is untrustworthy and the connection is
  // dropped — the client's own checksum/retry machinery takes it from there.
  std::size_t offset = 0;
  for (;;) {
    Blob payload;
    TraceContext trace;
    FrameMeta meta;
    std::size_t consumed = 0;
    const ParseResult result = parse_frame(
        conn->rx.data() + offset, conn->rx.size() - offset, &consumed, payload,
        &trace, &meta, config_.max_frame_bytes);
    if (result == ParseResult::kBad) {
      drop_connection(conn);
      return;
    }
    if (result == ParseResult::kNeedMore) break;
    offset += consumed;
    admit(conn, std::move(payload), trace, meta);
  }
  if (offset > 0)
    conn->rx.erase(conn->rx.begin(),
                   conn->rx.begin() + static_cast<std::ptrdiff_t>(offset));
}

void Gateway::admit(const std::shared_ptr<Connection>& conn, Blob payload,
                    const TraceContext& trace, const FrameMeta& meta) {
  const double now = now_ms();
  const double recv_obs = obs::steady_now_ms();
  FrameKind reject = FrameKind::kRequest;  // kRequest = admitted
  const char* shed_cause = nullptr;
  Blob cached;
  bool reply_cached = false;
  std::vector<Work> expired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Session* session = nullptr;
    if (meta.session_id != 0) {
      auto it = sessions_.find(meta.session_id);
      if (it == sessions_.end())
        it = sessions_
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(meta.session_id),
                          std::forward_as_tuple(config_.breaker,
                                                config_.metrics))
                 .first;
      session = &it->second;
      session->last_active_ms = now;
    }
    // Duplicate short-circuit: the same (session, sequence) is a retry of a
    // call we already have. Inflight → re-point the reply at the retry's
    // connection (the original's is usually dead); completed → answer from
    // the cache. Either way the handler does NOT run twice.
    if (session != nullptr && meta.sequence != 0) {
      auto inflight = session->inflight.find(meta.sequence);
      if (inflight != session->inflight.end()) {
        inflight->second = conn;
        n_duplicates_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
          metrics().counter("cadmc.gateway.duplicates").add(1);
        return;
      }
      if (session->has_cached && session->cached_sequence == meta.sequence) {
        reply_cached = true;
        reject = session->cached_kind;
        cached = session->cached_payload;
        n_duplicates_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
          metrics().counter("cadmc.gateway.duplicates").add(1);
      }
    }
    if (!reply_cached) {
      if (draining_.load(std::memory_order_acquire) || stop_workers_) {
        reject = FrameKind::kBusy;
        shed_cause = "shed_draining";
      } else if (session != nullptr && !session->breaker.allow_request()) {
        // This session's handler calls keep failing; shed until a probe
        // gets through and succeeds.
        reject = FrameKind::kBusy;
        shed_cause = "shed_breaker";
      } else if (session != nullptr &&
                 static_cast<int>(session->inflight.size()) >=
                     config_.max_inflight_per_session) {
        reject = FrameKind::kBusy;  // one stalled session can't own the queue
        shed_cause = "shed_inflight_cap";
      } else if (queue_.size() >= config_.max_queue) {
        // Full: make room by shedding already-expired entries back-to-front
        // (the newest queued work is the least likely to make its deadline).
        expired = shed_expired_locked(now);
        if (queue_.size() >= config_.max_queue) {
          reject = FrameKind::kBusy;
          shed_cause = "shed_queue_full";
        }
      }
    }
    if (reject == FrameKind::kRequest) {
      Work w;
      w.payload = std::move(payload);
      w.trace = trace;
      w.session_id = meta.session_id;
      w.sequence = meta.sequence;
      w.budget_ms = meta.deadline_ms;
      if (meta.deadline_ms > 0.0) w.deadline_abs_ms = now + meta.deadline_ms;
      w.enqueue_ms = now;
      w.recv_obs_ms = recv_obs;
      w.conn = conn;
      if (session != nullptr && meta.sequence != 0)
        session->inflight[meta.sequence] = conn;
      queue_.push_back(std::move(w));
      n_admitted_.fetch_add(1, std::memory_order_relaxed);
      update_gauges_locked();
    } else if (reject == FrameKind::kBusy) {
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) metrics().counter("cadmc.gateway.shed").add(1);
    }
  }
  if (shed_cause != nullptr && obs::flight_recording()) {
    // A flight dump after a BUSY storm must say *why* requests were shed.
    // Queue-full is the storm signature worth a postmortem dump (rate
    // limited); the targeted sheds are point events with the caller's trace
    // linkage so the refused request is identifiable.
    if (std::strcmp(shed_cause, "shed_queue_full") == 0) {
      obs::flight_fault(obs::FlightEventKind::kQueue, shed_cause);
    } else {
      obs::FlightRecorder::global().record(obs::FlightEventKind::kQueue,
                                           shed_cause, trace.trace_id, 0,
                                           trace.span_id, recv_obs, 0.0);
    }
  }
  for (const Work& w : expired)
    respond(w.conn, FrameKind::kExpired, {}, w.session_id, w.sequence);
  if (reject == FrameKind::kRequest) {
    work_cv_.notify_one();
    return;
  }
  respond(conn, reject, cached, meta.session_id, meta.sequence);
}

std::vector<Gateway::Work> Gateway::shed_expired_locked(double now) {
  std::vector<Work> shed;
  for (auto it = queue_.rbegin(); it != queue_.rend();) {
    if (now > it->deadline_abs_ms) {
      shed.push_back(std::move(*it));
      it = std::make_reverse_iterator(
          queue_.erase(std::next(it).base()));
    } else {
      ++it;
    }
  }
  // Resolve each shed entry's live reply target here (under the lock) so
  // the caller can answer EXPIRED outside it.
  for (Work& w : shed) {
    std::shared_ptr<Connection> target = std::move(w.conn);
    auto session = sessions_.find(w.session_id);
    if (session != sessions_.end()) {
      auto inflight = session->second.inflight.find(w.sequence);
      if (inflight != session->second.inflight.end()) {
        if (inflight->second != nullptr) target = inflight->second;
        session->second.inflight.erase(inflight);
      }
    }
    n_expired_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) metrics().counter("cadmc.gateway.expired").add(1);
    w.conn = std::move(target);
  }
  if (!shed.empty()) update_gauges_locked();
  return shed;
}

void Gateway::reap_idle_sessions() {
  const double now = now_ms();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    // Never reap a session with inflight work — its dedup state is exactly
    // what prevents a duplicate execution of those requests.
    if (it->second.inflight.empty() &&
        now - it->second.last_active_ms > config_.idle_session_ms) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  update_gauges_locked();
}

void Gateway::worker_loop() {
  for (;;) {
    Work w;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      w = std::move(queue_.front());
      queue_.pop_front();
      const double now = now_ms();
      if (now > w.deadline_abs_ms) {
        // The budget died while queued. Answer EXPIRED and do NOT cache it
        // as completed — the handler never ran, so a retry with a fresh
        // budget is a legitimate re-execution, not a duplicate.
        std::shared_ptr<Connection> target = std::move(w.conn);
        auto session = sessions_.find(w.session_id);
        if (session != sessions_.end()) {
          auto inflight = session->second.inflight.find(w.sequence);
          if (inflight != session->second.inflight.end()) {
            if (inflight->second != nullptr) target = inflight->second;
            session->second.inflight.erase(inflight);
          }
        }
        n_expired_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled()) metrics().counter("cadmc.gateway.expired").add(1);
        update_gauges_locked();
        if (queue_.empty() && executing_ == 0) drained_cv_.notify_all();
        lock.unlock();
        respond(target, FrameKind::kExpired, {}, w.session_id, w.sequence);
        continue;
      }
      ++executing_;
      if (obs::enabled())
        metrics()
            .histogram("cadmc.gateway.queue_ms")
            .observe(now - w.enqueue_ms);
      update_gauges_locked();
    }
    // The remote clock offset is anchored at *receive* time, so the queue
    // wait lands inside the sender's timeline instead of being silently
    // absorbed: gateway_queue ends exactly where transport_serve begins and
    // the reactor→queue→worker handoff shows up on the critical path.
    const double clock_offset =
        w.trace.trace_id != 0 ? w.trace.clock_ms - w.recv_obs_ms : 0.0;
    if (w.trace.trace_id != 0) {
      const double wait_obs_ms = obs::steady_now_ms() - w.recv_obs_ms;
      obs::record_external_span("gateway_queue", w.trace.trace_id,
                                w.trace.span_id, w.trace.clock_ms, wait_obs_ms,
                                &metrics(), /*depth=*/0,
                                obs::FlightEventKind::kQueue);
    }
    Blob out;
    bool ok = true;
    {
      // Join the sender's trace: spans the handler opens are parented under
      // the edge's transport_call span, time-shifted into its clock.
      obs::RemoteSpanScope remote(obs::RemoteContext{
          w.trace.trace_id, w.trace.span_id, clock_offset});
      CADMC_SPAN("transport_serve");
      try {
        out = handler_(
            GatewayRequest{std::move(w.payload), w.session_id, w.sequence,
                           w.budget_ms});
      } catch (...) {
        ok = false;
      }
    }
    std::shared_ptr<Connection> target;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --executing_;
      target = std::move(w.conn);
      auto session = sessions_.find(w.session_id);
      if (session != sessions_.end()) {
        Session& s = session->second;
        s.last_active_ms = now_ms();
        ok ? s.breaker.record_success() : s.breaker.record_failure();
        auto inflight = s.inflight.find(w.sequence);
        if (inflight != s.inflight.end()) {
          if (inflight->second != nullptr) target = inflight->second;
          s.inflight.erase(inflight);
        }
        if (w.sequence != 0) {
          s.cached_sequence = w.sequence;
          s.has_cached = true;
          s.cached_kind = ok ? FrameKind::kResponse : FrameKind::kError;
          s.cached_payload = ok ? out : Blob{};
        }
      }
      (ok ? n_completed_ : n_errors_).fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled())
        metrics()
            .counter(ok ? "cadmc.gateway.completed" : "cadmc.gateway.errors")
            .add(1);
      update_gauges_locked();
      if (queue_.empty() && executing_ == 0) drained_cv_.notify_all();
    }
    respond(target, ok ? FrameKind::kResponse : FrameKind::kError,
            ok ? out : Blob{}, w.session_id, w.sequence);
  }
}

void Gateway::respond(const std::shared_ptr<Connection>& conn, FrameKind kind,
                      const Blob& payload, std::uint64_t session_id,
                      std::uint64_t sequence) {
  if (conn == nullptr || conn->dead.load(std::memory_order_acquire)) return;
  FrameMeta meta;
  meta.session_id = session_id;
  meta.sequence = sequence;
  meta.kind = kind;
  const Blob frame = encode_frame(payload, {}, meta);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  const std::uint8_t* data = frame.data();
  std::size_t len = frame.size();
  int stalls = 0;
  while (len > 0) {
    const ssize_t n = ::send(conn->fd, data, len, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The socket buffer is full (a slow or stalled reader). Wait briefly
      // for drainage, but bound it: a worker must not be parked forever
      // behind one dead-but-not-closed peer.
      if (++stalls > 40) break;  // ~2 s total
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    break;  // peer gone; the reactor will reap the connection
  }
  if (len > 0) conn->dead.store(true, std::memory_order_release);
}

void Gateway::update_gauges_locked() {
  if (!obs::enabled()) return;
  metrics()
      .gauge("cadmc.gateway.queue_depth")
      .set(static_cast<double>(queue_.size()));
  metrics()
      .gauge("cadmc.gateway.inflight")
      .set(static_cast<double>(queue_.size()) + executing_);
  metrics()
      .gauge("cadmc.gateway.sessions")
      .set(static_cast<double>(sessions_.size()));
}

}  // namespace cadmc::runtime
