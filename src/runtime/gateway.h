// Concurrent serving gateway — the cloud side of the edge/cloud runtime,
// rebuilt for production traffic. Where the original TcpServer accepted one
// connection at a time on a blocking loop (backlog 4, a second session
// simply queued behind the first until the kernel dropped it), the Gateway
// multiplexes many simultaneous edge sessions on an epoll reactor and
// executes requests on a worker pool.
//
// Robustness is the design headline: the gateway must degrade under
// pressure instead of failing.
//
//  * Bounded admission queue with explicit load shedding. When the queue is
//    full, already-expired entries are shed back-to-front first; if no room
//    opens, the incoming request is answered with a typed BUSY frame the
//    edge treats as an immediate local-fallback signal. Every shed request
//    is answered — overload is never a silent hang.
//  * Deadline propagation. The edge stamps its remaining budget into the
//    frame header; the gateway computes an absolute deadline on arrival and
//    drops already-expired work (typed EXPIRED response) before wasting
//    compute on an answer nobody is waiting for. Expired work is NOT cached
//    as completed, so a retry with a fresh budget re-executes legitimately.
//  * Per-session state: inflight caps (one stalled session cannot occupy
//    the whole queue), a CircuitBreaker over handler failures (a session
//    whose requests keep throwing is answered BUSY until a probe succeeds),
//    and duplicate detection — requests are keyed by (session id, sequence);
//    a retry racing the still-executing original re-points the reply to the
//    new connection instead of executing twice, and a retry of a completed
//    request is answered from the per-session response cache.
//  * Idle-session reaping and graceful drain on stop(): stop accepting,
//    finish (or shed, after the drain budget) queued work, then close.
//
// Everything is observable under cadmc.gateway.*: accepted, shed, expired,
// duplicates, completed, errors, inflight/sessions/queue-depth gauges and a
// queue-wait histogram.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/fault.h"
#include "runtime/transport.h"

namespace cadmc::runtime {

/// One admitted request as the handler sees it.
struct GatewayRequest {
  Blob payload;
  std::uint64_t session_id = 0;  // 0 = anonymous (no session state)
  std::uint64_t sequence = 0;
  double budget_ms = 0.0;  // remaining deadline budget at send time; 0 = none
};

using GatewayHandler = std::function<Blob(const GatewayRequest&)>;

/// Point-in-time view of one session's gateway-side state.
struct GatewaySessionStats {
  std::uint64_t session_id = 0;
  int inflight = 0;                // admitted, not yet answered
  bool breaker_open = false;
  int consecutive_failures = 0;
  bool has_cached_response = false;
  double idle_ms = 0.0;            // since the session's last frame
};

/// Live introspection snapshot (Gateway::stats()). The counters are
/// always-on relaxed atomics, independent of obs::enabled(), so an operator
/// can inspect a production gateway that runs with metrics off.
struct GatewayStats {
  bool running = false;
  bool draining = false;
  std::size_t queue_depth = 0;
  int executing = 0;               // requests currently inside the handler
  std::size_t connections = 0;
  std::uint64_t accepted = 0;         // connections accepted
  std::uint64_t accept_overflow = 0;  // connections shed at the door
  std::uint64_t admitted = 0;         // requests enqueued
  std::uint64_t shed = 0;             // BUSY answers (any cause)
  std::uint64_t expired = 0;          // EXPIRED answers
  std::uint64_t duplicates = 0;       // retries short-circuited
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::vector<GatewaySessionStats> sessions;  // sorted by session id
};

struct GatewayConfig {
  int worker_threads = 2;
  int listen_backlog = 64;
  int max_connections = 512;      // beyond this, accepts are counted + closed
  std::size_t max_queue = 64;     // admission-queue bound
  int max_inflight_per_session = 4;
  std::size_t max_frame_bytes = std::size_t{1} << 31;
  double idle_session_ms = 30'000.0;  // reap session state after this idle
  double drain_ms = 1'000.0;          // graceful-drain budget in stop()
  CircuitBreakerConfig breaker;       // per-session handler breaker
  obs::MetricsRegistry* metrics = nullptr;  // null = global registry
};

class Gateway {
 public:
  explicit Gateway(GatewayHandler handler, GatewayConfig config = {});
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds 127.0.0.1, starts the reactor and worker pool, and returns the
  /// port. A restarted gateway re-binds its previous port when possible
  /// (ephemeral fallback), so reconnecting sessions find it again without
  /// rediscovery. Throws std::runtime_error on socket failure.
  std::uint16_t start();

  /// Graceful drain: stop accepting, wait up to config.drain_ms for queued
  /// work to finish, shed the rest with BUSY responses, then join the
  /// workers and close every connection. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  /// Live (un-reaped) session-state entries — for tests and gauges.
  std::size_t session_count() const;

  /// Snapshot of the gateway's live state: queue depth, executing count,
  /// lifetime counters and per-session inflight/breaker/cache state.
  /// Thread-safe; callable at any time, including while stopped.
  GatewayStats stats() const;

 private:
  struct Connection;
  struct Session;
  struct Work;

  void reactor();
  void worker_loop();
  void on_readable(const std::shared_ptr<Connection>& conn);
  /// Reactor-side: deregister from epoll, mark dead, drop the map entry.
  /// The fd closes when the last worker reference goes away.
  void drop_connection(const std::shared_ptr<Connection>& conn);
  void reap_idle_sessions();
  /// Admission control; called with the gateway lock NOT held.
  void admit(const std::shared_ptr<Connection>& conn, Blob payload,
             const TraceContext& trace, const FrameMeta& meta);
  void respond(const std::shared_ptr<Connection>& conn, FrameKind kind,
               const Blob& payload, std::uint64_t session_id,
               std::uint64_t sequence);
  /// Sheds expired queue entries back-to-front. Requires lock held; returns
  /// the shed work items for the caller to answer outside the lock.
  std::vector<Work> shed_expired_locked(double now_ms);
  void update_gauges_locked();
  obs::MetricsRegistry& metrics() const;

  GatewayHandler handler_;
  GatewayConfig config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread reactor_thread_;
  std::vector<std::thread> workers_;

  // One lock covers the queue, the session table, and the connection map:
  // admission, completion, dedup and reaping all mutate overlapping state,
  // and the handler itself always runs outside the lock.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     // queue non-empty or stopping
  std::condition_variable drained_cv_;  // queue emptied (for stop())
  bool stop_workers_ = false;
  std::deque<Work> queue_;
  std::map<std::uint64_t, Session> sessions_;
  std::map<int, std::shared_ptr<Connection>> connections_;
  int executing_ = 0;  // requests currently inside the handler

  // Lifetime counters behind stats() — always on (relaxed increments are
  // nearly free), unlike the cadmc.gateway.* metrics which obs::enabled()
  // gates.
  std::atomic<std::uint64_t> n_accepted_{0};
  std::atomic<std::uint64_t> n_accept_overflow_{0};
  std::atomic<std::uint64_t> n_admitted_{0};
  std::atomic<std::uint64_t> n_shed_{0};
  std::atomic<std::uint64_t> n_expired_{0};
  std::atomic<std::uint64_t> n_duplicates_{0};
  std::atomic<std::uint64_t> n_completed_{0};
  std::atomic<std::uint64_t> n_errors_{0};
};

}  // namespace cadmc::runtime
