#include "runtime/shaper.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

namespace cadmc::runtime {

double shaped_transfer_ms(const net::BandwidthTrace& trace, double t_start_ms,
                          std::int64_t bytes, double rtt_ms,
                          double size_coeff) {
  if (bytes <= 0) return 0.0;
  double remaining = (1.0 + size_coeff) * static_cast<double>(bytes);
  double t = t_start_ms + rtt_ms;
  const double dt = trace.dt_ms();
  const double trace_end = trace.duration_ms();
  // Drain interval by interval (O(1) per trace sample, blackout samples
  // included); the partial interval that finishes the payload is solved
  // exactly.
  while (t < trace_end) {
    const double bw = trace.at(t);  // bytes/ms; zero during a blackout
    const double interval_end =
        std::min(trace_end, (std::floor(t / dt) + 1.0) * dt);
    if (bw > 0.0) {
      const double drained = bw * (interval_end - t);
      if (drained >= remaining) return t + remaining / bw - t_start_ms;
      remaining -= drained;
    }
    t = interval_end;
  }
  // Past the end the final sample holds indefinitely. A dead tail means the
  // payload never arrives: report +inf so callers can time out / degrade
  // instead of spinning.
  const double bw = trace.at(trace_end);
  if (bw <= 0.0) return std::numeric_limits<double>::infinity();
  return std::max(t, t_start_ms + rtt_ms) + remaining / bw - t_start_ms;
}

TokenBucketPacer::TokenBucketPacer(const net::BandwidthTrace& trace,
                                   double time_scale)
    : trace_(&trace), time_scale_(time_scale) {
  if (time_scale <= 0.0)
    throw std::invalid_argument("TokenBucketPacer: non-positive time scale");
}

double TokenBucketPacer::pace(std::int64_t bytes, double t_virtual_ms,
                              double rtt_ms) {
  const double duration =
      shaped_transfer_ms(*trace_, t_virtual_ms, bytes, rtt_ms);
  if (!std::isfinite(duration))
    throw std::runtime_error("TokenBucketPacer: link is dead (infinite transfer)");
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      duration * time_scale_));
  return duration;
}

}  // namespace cadmc::runtime
