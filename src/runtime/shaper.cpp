#include "runtime/shaper.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace cadmc::runtime {

double shaped_transfer_ms(const net::BandwidthTrace& trace, double t_start_ms,
                          std::int64_t bytes, double rtt_ms,
                          double size_coeff) {
  if (bytes <= 0) return 0.0;
  double remaining = (1.0 + size_coeff) * static_cast<double>(bytes);
  double t = t_start_ms + rtt_ms;
  const double dt = trace.dt_ms();
  // Drain sample by sample; partial last interval solved exactly.
  for (int guard = 0; guard < 10'000'000; ++guard) {
    const double bw = trace.at(t);  // bytes/ms, holds last sample at the end
    const double drained = bw * dt;
    if (drained >= remaining) return t + remaining / bw - t_start_ms;
    remaining -= drained;
    t += dt;
  }
  throw std::runtime_error("shaped_transfer_ms: transfer did not converge");
}

TokenBucketPacer::TokenBucketPacer(const net::BandwidthTrace& trace,
                                   double time_scale)
    : trace_(&trace), time_scale_(time_scale) {
  if (time_scale <= 0.0)
    throw std::invalid_argument("TokenBucketPacer: non-positive time scale");
}

double TokenBucketPacer::pace(std::int64_t bytes, double t_virtual_ms,
                              double rtt_ms) {
  const double duration =
      shaped_transfer_ms(*trace_, t_virtual_ms, bytes, rtt_ms);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      duration * time_scale_));
  return duration;
}

}  // namespace cadmc::runtime
