// Bandwidth shaping. Two services:
//  * shaped_transfer_ms — virtual-time transfer: integrates a bandwidth
//    trace's instantaneous rate from the moment a payload starts sending
//    until every byte is delivered. This is what the field-test harness
//    (Table V) uses: the *decision* was made from an estimate, but the
//    *outcome* pays for every fade the link hits mid-transfer.
//  * TokenBucketPacer — real-time pacing for the loopback TCP transport, so
//    the field-demo example moves real bytes at trace-shaped rates.
#pragma once

#include <cstdint>

#include "net/trace.h"

namespace cadmc::runtime {

/// Time to deliver `bytes` starting at `t_start_ms`, paying `rtt_ms` of
/// propagation first and then draining the payload (inflated by
/// `size_coeff`, matching Eqn. 6's f(S|W)) at the trace's instantaneous
/// bandwidth. The trace's final sample extends indefinitely.
double shaped_transfer_ms(const net::BandwidthTrace& trace, double t_start_ms,
                          std::int64_t bytes, double rtt_ms,
                          double size_coeff = 0.18);

/// Wall-clock pacer: sleeps so that successive send() calls of a payload
/// drain at the trace bandwidth (scaled by `time_scale` to keep demos fast;
/// time_scale = 0.1 replays the trace 10x faster).
class TokenBucketPacer {
 public:
  TokenBucketPacer(const net::BandwidthTrace& trace, double time_scale = 1.0);

  /// Blocks (sleeps) for the shaped duration of `bytes` at virtual time
  /// `t_virtual_ms`; returns the virtual duration in ms.
  double pace(std::int64_t bytes, double t_virtual_ms, double rtt_ms);

 private:
  const net::BandwidthTrace* trace_;
  double time_scale_;
};

}  // namespace cadmc::runtime
