#include "runtime/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "runtime/fault.h"
#include "runtime/gateway.h"

namespace cadmc::runtime {

namespace {

constexpr std::size_t kLengthBytes = 8;
constexpr std::size_t kCrcBytes = 4;
constexpr std::size_t kHeaderBytes = kFrameHeaderBytes;
static_assert(kFrameTraceOffset == kLengthBytes + kCrcBytes);
static_assert(kFrameMetaOffset == kFrameTraceOffset + kFrameTraceBytes + kCrcBytes);
static_assert(kFrameHeaderBytes == kFrameMetaOffset + kFrameMetaBytes + kCrcBytes);

// Byte-wise little-endian codec — the wire format is LE on every host.
void store_le(std::uint8_t* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

std::uint64_t load_le(const std::uint8_t* in, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // interrupted, not dead
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0 && errno == EINTR) continue;  // interrupted, not dead
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void set_socket_deadline(int fd, double timeout_ms) {
  if (timeout_ms <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - 1000.0 * static_cast<double>(tv.tv_sec)) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;  // sub-ms floor
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

/// Whole frame (header + payload) in one buffer so a single send covers it,
/// fault hooks can mutate specific bytes before it hits the wire, and the
/// gateway can push it through a nonblocking fd.
Blob encode_frame(const Blob& payload, const TraceContext& trace,
                  const FrameMeta& meta) {
  Blob frame(kHeaderBytes + payload.size());
  store_le(frame.data(), payload.size(), kLengthBytes);
  store_le(frame.data() + kLengthBytes, crc32(payload.data(), payload.size()),
           kCrcBytes);
  std::uint8_t* t = frame.data() + kFrameTraceOffset;
  store_le(t, trace.trace_id, 8);
  store_le(t + 8, trace.span_id, 8);
  store_le(t + 16, double_bits(trace.clock_ms), 8);
  store_le(t + kFrameTraceBytes, crc32(t, kFrameTraceBytes), kCrcBytes);
  std::uint8_t* m = frame.data() + kFrameMetaOffset;
  store_le(m, meta.session_id, 8);
  store_le(m + 8, meta.sequence, 8);
  store_le(m + 16, double_bits(meta.deadline_ms), 8);
  store_le(m + 24, static_cast<std::uint32_t>(meta.kind), 4);
  store_le(m + kFrameMetaBytes, crc32(m, kFrameMetaBytes), kCrcBytes);
  std::copy(payload.begin(), payload.end(), frame.begin() + kHeaderBytes);
  return frame;
}

namespace {

/// Decodes the fixed header (caller guarantees kHeaderBytes available).
/// Trace/meta sections each degrade independently on CRC mismatch.
void decode_header_sections(const std::uint8_t* header, TraceContext* trace,
                            FrameMeta* meta) {
  const std::uint8_t* t = header + kFrameTraceOffset;
  if (trace != nullptr &&
      static_cast<std::uint32_t>(load_le(t + kFrameTraceBytes, kCrcBytes)) ==
          crc32(t, kFrameTraceBytes)) {
    trace->trace_id = load_le(t, 8);
    trace->span_id = load_le(t + 8, 8);
    trace->clock_ms = bits_double(load_le(t + 16, 8));
  }
  const std::uint8_t* m = header + kFrameMetaOffset;
  if (meta != nullptr &&
      static_cast<std::uint32_t>(load_le(m + kFrameMetaBytes, kCrcBytes)) ==
          crc32(m, kFrameMetaBytes)) {
    meta->session_id = load_le(m, 8);
    meta->sequence = load_le(m + 8, 8);
    meta->deadline_ms = bits_double(load_le(m + 16, 8));
    const std::uint64_t kind = load_le(m + 24, 4);
    meta->kind = kind <= static_cast<std::uint64_t>(FrameKind::kError)
                     ? static_cast<FrameKind>(kind)
                     : FrameKind::kRequest;
  }
}

}  // namespace

ParseResult parse_frame(const std::uint8_t* data, std::size_t len,
                        std::size_t* consumed, Blob& payload,
                        TraceContext* trace, FrameMeta* meta,
                        std::size_t max_payload) {
  *consumed = 0;
  if (trace != nullptr) *trace = {};
  if (meta != nullptr) *meta = {};
  if (len < kHeaderBytes) return ParseResult::kNeedMore;
  const std::uint64_t size = load_le(data, kLengthBytes);
  if (size > max_payload) return ParseResult::kBad;  // oversized length field
  if (len < kHeaderBytes + size) return ParseResult::kNeedMore;
  const auto expected_crc =
      static_cast<std::uint32_t>(load_le(data + kLengthBytes, kCrcBytes));
  if (crc32(data + kHeaderBytes, size) != expected_crc) {
    obs::count("cadmc.runtime.fault.corrupt_rejected");
    return ParseResult::kBad;
  }
  decode_header_sections(data, trace, meta);
  payload.assign(data + kHeaderBytes, data + kHeaderBytes + size);
  *consumed = kHeaderBytes + static_cast<std::size_t>(size);
  return ParseResult::kFrame;
}

bool write_frame(int fd, const Blob& payload, const TraceContext& trace,
                 const FrameMeta& meta) {
  const Blob frame = encode_frame(payload, trace, meta);
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, Blob& payload, TraceContext* trace, FrameMeta* meta) {
  if (trace != nullptr) *trace = {};
  if (meta != nullptr) *meta = {};
  std::uint8_t header[kHeaderBytes];
  if (!read_all(fd, header, kHeaderBytes)) return false;
  const std::uint64_t size = load_le(header, kLengthBytes);
  const auto expected_crc =
      static_cast<std::uint32_t>(load_le(header + kLengthBytes, kCrcBytes));
  if (size > (1ULL << 31)) return false;  // sanity cap: 2 GiB frames
  // The trace/meta sections carry their own CRCs: a corrupt section must
  // degrade (fresh root trace / anonymous request), never cost the frame
  // (the payload has its own checksum).
  decode_header_sections(header, trace, meta);
  payload.resize(size);
  if (size > 0 && !read_all(fd, payload.data(), payload.size())) return false;
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    obs::count("cadmc.runtime.fault.corrupt_rejected");
    return false;
  }
  return true;
}

double next_decorrelated_backoff_ms(util::Rng& rng, double prev_ms,
                                    double base_ms, double cap_ms) {
  if (base_ms <= 0.0) return 0.0;
  const double hi = std::max(base_ms, std::min(prev_ms * 3.0, cap_ms));
  return rng.uniform(base_ms, hi);
}

TcpServer::TcpServer(RequestHandler handler, TcpServerConfig config) {
  GatewayConfig gc;
  gc.listen_backlog = config.listen_backlog;
  gc.worker_threads = config.worker_threads;
  gc.max_queue = config.max_queue;
  RequestHandler h = std::move(handler);
  gateway_ = std::make_unique<Gateway>(
      [h = std::move(h)](const GatewayRequest& request) {
        return h(request.payload);
      },
      gc);
}

TcpServer::~TcpServer() = default;

std::uint16_t TcpServer::start() { return gateway_->start(); }
void TcpServer::stop() { gateway_->stop(); }

TcpClient::~TcpClient() { close(); }

void TcpClient::connect(std::uint16_t port, TcpClientConfig config) {
  close();
  port_ = port;
  config_ = config;
  // Deterministic per-client jitter stream: an explicit seed wins; otherwise
  // derive from the session id so co-failing sessions de-synchronize.
  std::uint64_t seed = config.jitter_seed != 0
                           ? config.jitter_seed
                           : 0x9E3779B97F4A7C15ULL ^ (config.session_id + 1);
  jitter_rng_ = util::Rng(util::splitmix64(seed));
  if (!reconnect()) throw std::runtime_error("TcpClient: connect() failed");
}

bool TcpClient::reconnect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  set_socket_deadline(fd_, config_.timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpClient::send_request(const Blob& request, std::uint64_t sequence,
                             std::string& error) {
  const FrameFault fault =
      injector_ != nullptr ? injector_->next_frame_fault() : FrameFault::kNone;
  if (fault == FrameFault::kDrop) {
    // The frame is lost in flight. With a deadline we wait for the response
    // that never comes (the timeout fires); without one, fail fast rather
    // than blocking forever.
    if (config_.timeout_ms <= 0.0) {
      error = "frame dropped";
      return false;
    }
    return true;
  }
  // Stamp the caller's trace context (innermost live span) into the header
  // so the server's spans join this request's causal tree.
  const obs::OutgoingContext ctx = obs::outgoing_context();
  FrameMeta meta;
  meta.session_id = config_.session_id;
  meta.sequence = sequence;
  meta.deadline_ms = config_.deadline_budget_ms >= 0.0
                         ? config_.deadline_budget_ms
                         : config_.timeout_ms;
  meta.kind = FrameKind::kRequest;
  Blob frame = encode_frame(
      request, TraceContext{ctx.trace_id, ctx.span_id, obs::steady_now_ms()},
      meta);
  if (fault == FrameFault::kCorrupt)
    frame[frame.size() > kHeaderBytes ? kHeaderBytes : kLengthBytes] ^= 0xFF;
  if (fault == FrameFault::kTruncate)
    frame.resize(std::max<std::size_t>(1, frame.size() / 2));
  if (!write_all(fd_, frame.data(), frame.size())) {
    error = "send failed";
    return false;
  }
  if (fault == FrameFault::kTruncate) {
    error = "frame truncated";
    return false;
  }
  return true;
}

Blob TcpClient::call(const Blob& request) {
  if (fd_ < 0 && port_ == 0)
    throw TransportError("TcpClient: not connected");
  CADMC_SPAN("transport_call");
  const std::uint64_t sequence = ++next_sequence_;
  const int attempts = 1 + std::max(0, config_.max_retries);
  double backoff = 0.0;
  std::string error = "no attempt made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      obs::count("cadmc.runtime.fault.retries");
      backoff = next_decorrelated_backoff_ms(jitter_rng_, backoff,
                                             config_.backoff_ms,
                                             config_.backoff_max_ms);
      if (backoff > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
    }
    if (fd_ < 0) {
      if (!reconnect()) {
        error = "reconnect failed";
        continue;
      }
      obs::count("cadmc.runtime.fault.reconnects");
    }
    if (!send_request(request, sequence, error)) {
      close();
      continue;
    }
    Blob response;
    FrameMeta meta;
    errno = 0;
    if (read_frame(fd_, response, nullptr, &meta)) {
      switch (meta.kind) {
        case FrameKind::kResponse:
          return response;
        case FrameKind::kBusy:
          // The gateway is shedding load: fall back locally NOW. Retrying
          // against an overloaded server only deepens the overload.
          obs::count("cadmc.runtime.fault.busy_rejected");
          obs::flight_fault(obs::FlightEventKind::kFault, "gateway_busy");
          throw GatewayBusyError("TcpClient::call: gateway busy (shed)");
        case FrameKind::kExpired:
          // Deadline budget died in the gateway queue; a retry carries a
          // fresh budget (the gateway did not execute, so no duplicate).
          obs::count("cadmc.runtime.fault.expired_rejected");
          error = "deadline expired in gateway queue";
          continue;
        case FrameKind::kError:
          obs::flight_fault(obs::FlightEventKind::kFault, "gateway_error");
          throw TransportError("TcpClient::call: cloud handler failed");
        case FrameKind::kRequest:
          break;  // protocol violation; fall through to the drop below
      }
      error = "unexpected frame kind";
      close();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      error = "deadline exceeded";
      obs::count("cadmc.runtime.fault.call_timeouts");
    } else {
      error = "connection lost or frame rejected";
    }
    close();
  }
  obs::flight_fault(obs::FlightEventKind::kFault, "transport_error");
  throw TransportError("TcpClient::call: " + error + " after " +
                       std::to_string(attempts) + " attempt(s)");
}

}  // namespace cadmc::runtime
