#include "runtime/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace cadmc::runtime {

namespace {
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, 0);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}
}  // namespace

bool write_frame(int fd, const Blob& payload) {
  std::uint64_t size = payload.size();
  std::uint8_t header[8];
  std::memcpy(header, &size, 8);
  if (!write_all(fd, header, 8)) return false;
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, Blob& payload) {
  std::uint8_t header[8];
  if (!read_all(fd, header, 8)) return false;
  std::uint64_t size = 0;
  std::memcpy(&size, header, 8);
  if (size > (1ULL << 31)) return false;  // sanity cap: 2 GiB frames
  payload.resize(size);
  return size == 0 || read_all(fd, payload.data(), payload.size());
}

TcpServer::TcpServer(RequestHandler handler) : handler_(std::move(handler)) {}

TcpServer::~TcpServer() { stop(); }

std::uint16_t TcpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpServer: socket() failed");
  int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: listen() failed");
  }
  running_ = true;
  thread_ = std::thread([this] { serve(); });
  return port_;
}

void TcpServer::serve() {
  while (running_) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) break;  // listener closed
    Blob request;
    while (running_ && read_frame(conn, request)) {
      const Blob response = handler_(request);
      if (!write_frame(conn, response)) break;
    }
    ::close(conn);
  }
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

TcpClient::~TcpClient() { close(); }

void TcpClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("TcpClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("TcpClient: connect() failed");
  }
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Blob TcpClient::call(const Blob& request) {
  if (fd_ < 0) throw std::runtime_error("TcpClient: not connected");
  if (!write_frame(fd_, request))
    throw std::runtime_error("TcpClient: send failed");
  Blob response;
  if (!read_frame(fd_, response))
    throw std::runtime_error("TcpClient: receive failed");
  return response;
}

}  // namespace cadmc::runtime
