#include "runtime/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "runtime/fault.h"

namespace cadmc::runtime {

namespace {

constexpr std::size_t kLengthBytes = 8;
constexpr std::size_t kCrcBytes = 4;
constexpr std::size_t kHeaderBytes = kFrameHeaderBytes;
static_assert(kFrameTraceOffset == kLengthBytes + kCrcBytes);
static_assert(kFrameHeaderBytes ==
              kFrameTraceOffset + kFrameTraceBytes + kCrcBytes);

// Byte-wise little-endian codec — the wire format is LE on every host.
void store_le(std::uint8_t* out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i)
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
}

std::uint64_t load_le(const std::uint8_t* in, std::size_t bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // interrupted, not dead
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0 && errno == EINTR) continue;  // interrupted, not dead
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Whole frame (header + payload) in one buffer so a single send covers it
/// and fault hooks can mutate specific bytes before it hits the wire.
Blob encode_frame(const Blob& payload, const TraceContext& trace) {
  Blob frame(kHeaderBytes + payload.size());
  store_le(frame.data(), payload.size(), kLengthBytes);
  store_le(frame.data() + kLengthBytes, crc32(payload.data(), payload.size()),
           kCrcBytes);
  std::uint8_t* t = frame.data() + kFrameTraceOffset;
  store_le(t, trace.trace_id, 8);
  store_le(t + 8, trace.span_id, 8);
  store_le(t + 16, double_bits(trace.clock_ms), 8);
  store_le(t + kFrameTraceBytes, crc32(t, kFrameTraceBytes), kCrcBytes);
  std::copy(payload.begin(), payload.end(), frame.begin() + kHeaderBytes);
  return frame;
}

void set_socket_deadline(int fd, double timeout_ms) {
  if (timeout_ms <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - 1000.0 * static_cast<double>(tv.tv_sec)) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;  // sub-ms floor
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

bool write_frame(int fd, const Blob& payload, const TraceContext& trace) {
  const Blob frame = encode_frame(payload, trace);
  return write_all(fd, frame.data(), frame.size());
}

bool read_frame(int fd, Blob& payload, TraceContext* trace) {
  if (trace != nullptr) *trace = {};
  std::uint8_t header[kHeaderBytes];
  if (!read_all(fd, header, kHeaderBytes)) return false;
  const std::uint64_t size = load_le(header, kLengthBytes);
  const auto expected_crc =
      static_cast<std::uint32_t>(load_le(header + kLengthBytes, kCrcBytes));
  if (size > (1ULL << 31)) return false;  // sanity cap: 2 GiB frames
  // The trace section carries its own CRC: a corrupt context must degrade
  // to a fresh root trace, never cost the frame (the payload has its own).
  const std::uint8_t* t = header + kFrameTraceOffset;
  if (trace != nullptr &&
      static_cast<std::uint32_t>(load_le(t + kFrameTraceBytes, kCrcBytes)) ==
          crc32(t, kFrameTraceBytes)) {
    trace->trace_id = load_le(t, 8);
    trace->span_id = load_le(t + 8, 8);
    trace->clock_ms = bits_double(load_le(t + 16, 8));
  }
  payload.resize(size);
  if (size > 0 && !read_all(fd, payload.data(), payload.size())) return false;
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    obs::count("cadmc.runtime.fault.corrupt_rejected");
    return false;
  }
  return true;
}

TcpServer::TcpServer(RequestHandler handler) : handler_(std::move(handler)) {}

TcpServer::~TcpServer() { stop(); }

std::uint16_t TcpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpServer: socket() failed");
  int opt = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: listen() failed");
  }
  running_ = true;
  thread_ = std::thread([this] { serve(); });
  return port_;
}

void TcpServer::serve() {
  while (running_) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    Blob request;
    TraceContext trace;
    // A frame that fails the checksum poisons the stream framing, so the
    // connection is dropped; the client reconnects and retries.
    while (running_ && read_frame(conn, request, &trace)) {
      Blob response;
      {
        // Parent this request's spans under the sender's span and shift
        // them into the sender's clock (offset ~ includes the uplink time,
        // which is exactly where the frame sat).
        obs::RemoteSpanScope remote(obs::RemoteContext{
            trace.trace_id, trace.span_id,
            trace.trace_id != 0 ? trace.clock_ms - obs::steady_now_ms()
                                : 0.0});
        CADMC_SPAN("transport_serve");
        response = handler_(request);
      }
      if (!write_frame(conn, response)) break;
    }
    ::close(conn);
  }
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

TcpClient::~TcpClient() { close(); }

void TcpClient::connect(std::uint16_t port, TcpClientConfig config) {
  close();
  port_ = port;
  config_ = config;
  if (!reconnect()) throw std::runtime_error("TcpClient: connect() failed");
}

bool TcpClient::reconnect() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  set_socket_deadline(fd_, config_.timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpClient::send_request(const Blob& request, std::string& error) {
  const FrameFault fault =
      injector_ != nullptr ? injector_->next_frame_fault() : FrameFault::kNone;
  if (fault == FrameFault::kDrop) {
    // The frame is lost in flight. With a deadline we wait for the response
    // that never comes (the timeout fires); without one, fail fast rather
    // than blocking forever.
    if (config_.timeout_ms <= 0.0) {
      error = "frame dropped";
      return false;
    }
    return true;
  }
  // Stamp the caller's trace context (innermost live span) into the header
  // so the server's spans join this request's causal tree.
  const obs::OutgoingContext ctx = obs::outgoing_context();
  Blob frame = encode_frame(
      request, TraceContext{ctx.trace_id, ctx.span_id, obs::steady_now_ms()});
  if (fault == FrameFault::kCorrupt)
    frame[frame.size() > kHeaderBytes ? kHeaderBytes : kLengthBytes] ^= 0xFF;
  if (fault == FrameFault::kTruncate)
    frame.resize(std::max<std::size_t>(1, frame.size() / 2));
  if (!write_all(fd_, frame.data(), frame.size())) {
    error = "send failed";
    return false;
  }
  if (fault == FrameFault::kTruncate) {
    error = "frame truncated";
    return false;
  }
  return true;
}

Blob TcpClient::call(const Blob& request) {
  if (fd_ < 0 && port_ == 0)
    throw TransportError("TcpClient: not connected");
  CADMC_SPAN("transport_call");
  const int attempts = 1 + std::max(0, config_.max_retries);
  double backoff = config_.backoff_ms;
  std::string error = "no attempt made";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      obs::count("cadmc.runtime.fault.retries");
      if (backoff > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      backoff = std::min(backoff * 2.0, config_.backoff_max_ms);
    }
    if (fd_ < 0) {
      if (!reconnect()) {
        error = "reconnect failed";
        continue;
      }
      obs::count("cadmc.runtime.fault.reconnects");
    }
    if (!send_request(request, error)) {
      close();
      continue;
    }
    Blob response;
    errno = 0;
    if (read_frame(fd_, response)) return response;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      error = "deadline exceeded";
      obs::count("cadmc.runtime.fault.call_timeouts");
    } else {
      error = "connection lost or frame rejected";
    }
    close();
  }
  obs::flight_fault(obs::FlightEventKind::kFault, "transport_error");
  throw TransportError("TcpClient::call: " + error + " after " +
                       std::to_string(attempts) + " attempt(s)");
}

}  // namespace cadmc::runtime
