// Loopback TCP transport: length-prefixed binary messages between the edge
// process (client) and a cloud executor (server thread). Used by the field
// demo to move real feature tensors through a real socket; the request
// handler runs on the server thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace cadmc::runtime {

using Blob = std::vector<std::uint8_t>;
using RequestHandler = std::function<Blob(const Blob&)>;

class TcpServer {
 public:
  explicit TcpServer(RequestHandler handler);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1 on an ephemeral port, starts the accept thread, and
  /// returns the port. Throws std::runtime_error on socket failure.
  std::uint16_t start();
  void stop();

 private:
  void serve();

  RequestHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects to 127.0.0.1:port. Throws std::runtime_error on failure.
  void connect(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request and blocks for the response.
  Blob call(const Blob& request);

 private:
  int fd_ = -1;
};

/// Frame helpers (exposed for tests): 8-byte little-endian length prefix.
bool write_frame(int fd, const Blob& payload);
bool read_frame(int fd, Blob& payload);

}  // namespace cadmc::runtime
