// Loopback TCP transport: length-prefixed, CRC32-checksummed binary messages
// between the edge process (client) and the cloud gateway (see
// runtime/gateway.h for the serving side). Used by the field demo to move
// real feature tensors through a real socket.
//
// Fault tolerance: the client supports per-call deadlines (SO_RCVTIMEO /
// SO_SNDTIMEO), bounded retry with decorrelated-jitter backoff, and
// transparent reconnect. Frames that fail the checksum are rejected and the
// connection is dropped (stream framing can no longer be trusted). An
// optional FaultInjector perturbs outgoing frames for chaos testing.
//
// Distributed tracing: every request frame carries a TraceContext (trace id,
// parent span id, sender clock) in its header; the server installs it as the
// remote parent for the handler's spans, so one inference yields a single
// causal span tree across the edge/cloud partition boundary.
//
// Request metadata: frames additionally carry a FrameMeta section — the
// sender's session id, a per-call sequence number (stable across retries, so
// the gateway can short-circuit duplicate executions), the remaining
// deadline budget, and — on responses — a typed kind so overload shedding
// (BUSY) and deadline drops (EXPIRED) are explicit signals instead of
// silent hangs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace cadmc::runtime {

class FaultInjector;
class Gateway;

using Blob = std::vector<std::uint8_t>;
using RequestHandler = std::function<Blob(const Blob&)>;

/// Thrown by TcpClient::call after deadlines/retries are exhausted.
struct TransportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Typed BUSY response from the gateway: it is shedding load and this
/// request was rejected at admission. The edge must treat this as an
/// immediate local-fallback signal — retrying feeds the overload.
struct GatewayBusyError : TransportError {
  using TransportError::TransportError;
};

/// Response frame kinds (FrameMeta::kind). Requests are kRequest; every
/// admitted or rejected request is answered with exactly one typed response
/// — overload shedding is never a silent hang.
enum class FrameKind : std::uint32_t {
  kRequest = 0,
  kResponse = 1,  // handler output in the payload
  kBusy = 2,      // shed at admission (queue full, inflight cap, draining)
  kExpired = 3,   // deadline budget exhausted before the handler ran
  kError = 4,     // handler threw; payload empty
};

/// Request/response metadata carried in every frame header, guarded by its
/// own CRC (a corrupt section degrades to "anonymous request", it never
/// costs the frame). session_id == 0 means anonymous: no dedup, no
/// per-session state on the gateway.
struct FrameMeta {
  std::uint64_t session_id = 0;
  std::uint64_t sequence = 0;   // per-call, stable across retries
  double deadline_ms = 0.0;     // request: remaining budget; 0 = unbounded
  FrameKind kind = FrameKind::kRequest;
};

struct TcpServerConfig {
  int listen_backlog = 64;  // was a hardcoded 4: a burst of reconnecting
                            // sessions must not die in the kernel SYN queue
  int worker_threads = 2;
  std::size_t max_queue = 64;  // admission-queue bound (see gateway.h)
};

/// Thin compatibility wrapper over runtime::Gateway (the concurrent serving
/// reactor): same single-handler API as the original blocking server, but
/// requests from many simultaneous connections are multiplexed and executed
/// on a worker pool.
class TcpServer {
 public:
  explicit TcpServer(RequestHandler handler, TcpServerConfig config = {});
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1 on an ephemeral port, starts the reactor, and returns
  /// the port. Throws std::runtime_error on socket failure.
  std::uint16_t start();
  void stop();

 private:
  std::unique_ptr<Gateway> gateway_;
};

struct TcpClientConfig {
  double timeout_ms = 0.0;      // send/recv deadline per syscall; 0 = blocking
  int max_retries = 0;          // extra attempts after the first failed call
  double backoff_ms = 10.0;     // base retry backoff (decorrelated jitter)
  double backoff_max_ms = 500.0;
  std::uint64_t session_id = 0;    // stamped into every request frame
  std::uint64_t jitter_seed = 0;   // 0 = derived from session_id; fixing it
                                   // makes the backoff schedule reproducible
  double deadline_budget_ms = -1.0;  // budget stamped on requests;
                                     // < 0 = use timeout_ms
};

/// Decorrelated-jitter backoff (Exponential Backoff And Jitter, AWS
/// Architecture Blog): sleep ~ U[base, prev * 3], capped. Unlike doubled
/// fixed backoff, N clients that fail together do NOT retry together, so a
/// recovering gateway sees a spread of retries instead of a synchronized
/// storm. Pure function of the rng stream — exposed for tests.
double next_decorrelated_backoff_ms(util::Rng& rng, double prev_ms,
                                    double base_ms, double cap_ms);

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects to 127.0.0.1:port. Throws std::runtime_error on failure.
  /// The config's deadline is applied to every subsequent send/recv.
  void connect(std::uint16_t port, TcpClientConfig config = {});
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Chaos hook: outgoing request frames consult `injector` (may be null)
  /// for drop/corrupt/truncate decisions. Not owned; must outlive the client.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Sends one request and blocks for the response. Retries (with
  /// decorrelated-jitter backoff and reconnect) up to config.max_retries
  /// times on deadline misses, checksum rejections, EXPIRED responses, or
  /// connection loss; throws TransportError once attempts are exhausted.
  /// A typed BUSY response throws GatewayBusyError immediately (no retry:
  /// the gateway is load-shedding and the edge should fall back locally).
  /// Every attempt of one call carries the same sequence number, so the
  /// gateway can detect a resend racing its own execution of the original.
  Blob call(const Blob& request);

 private:
  bool reconnect();
  bool send_request(const Blob& request, std::uint64_t sequence,
                    std::string& error);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  TcpClientConfig config_;
  FaultInjector* injector_ = nullptr;
  std::uint64_t next_sequence_ = 0;
  util::Rng jitter_rng_{0x1077E4};
};

/// Trace context carried in every frame header so the receiving process can
/// parent its spans under the sender's request span (obs::RemoteSpanScope)
/// and align clocks. trace_id == 0 means "no context" — the receiver starts
/// a fresh root trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;   // sender's innermost live span
  double clock_ms = 0.0;       // sender's obs::steady_now_ms() at encode time
};

/// Frame header layout (exposed for tests). Wire format, little-endian
/// regardless of host byte order:
///   [0..7]   payload length (u64 LE)
///   [8..11]  CRC32 (IEEE) of the payload (u32 LE)
///   [12..19] trace_id (u64 LE)
///   [20..27] parent span_id (u64 LE)
///   [28..35] sender steady-clock ms (f64 bit pattern as u64 LE)
///   [36..39] CRC32 of bytes [12..35] (u32 LE) — guards the trace section
///            independently of the payload, so a corrupt context degrades to
///            a fresh root trace without losing the frame
///   [40..47] session id (u64 LE)
///   [48..55] sequence (u64 LE)
///   [56..63] deadline budget ms (f64 bit pattern as u64 LE)
///   [64..67] frame kind (u32 LE)
///   [68..71] CRC32 of bytes [40..67] (u32 LE) — guards the meta section;
///            a corrupt section degrades to an anonymous request
///   [72..]   payload
constexpr std::size_t kFrameTraceOffset = 12;
constexpr std::size_t kFrameTraceBytes = 24;
constexpr std::size_t kFrameMetaOffset = kFrameTraceOffset + kFrameTraceBytes + 4;
constexpr std::size_t kFrameMetaBytes = 28;
constexpr std::size_t kFrameHeaderBytes = kFrameMetaOffset + kFrameMetaBytes + 4;

/// Encodes header + payload into one contiguous buffer (what write_frame
/// sends; the gateway uses it to write through nonblocking fds).
Blob encode_frame(const Blob& payload, const TraceContext& trace = {},
                  const FrameMeta& meta = {});

bool write_frame(int fd, const Blob& payload, const TraceContext& trace = {},
                 const FrameMeta& meta = {});
/// Returns false on short read, oversized frame, or payload checksum
/// mismatch (the caller must drop the connection — framing is no longer
/// trustworthy). A trace/meta section that fails its own checksum clears
/// `trace`/`meta` (fresh root / anonymous request) but keeps the frame.
bool read_frame(int fd, Blob& payload, TraceContext* trace = nullptr,
                FrameMeta* meta = nullptr);

/// Incremental, buffer-based frame parser (what read_frame and the gateway
/// reactor are built on; directly fuzzable — it must never over-read past
/// `len`, never throw, and at worst reject the frame).
enum class ParseResult {
  kNeedMore,  // not enough bytes yet; *consumed == 0
  kFrame,     // one complete frame extracted; *consumed = its full size
  kBad,       // oversized length or payload CRC mismatch — the caller must
              // drop the connection (stream framing is poisoned)
};
ParseResult parse_frame(const std::uint8_t* data, std::size_t len,
                        std::size_t* consumed, Blob& payload,
                        TraceContext* trace = nullptr,
                        FrameMeta* meta = nullptr,
                        std::size_t max_payload = std::size_t{1} << 31);

/// IEEE 802.3 CRC32 (the zlib polynomial), exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

}  // namespace cadmc::runtime
