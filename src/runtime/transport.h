// Loopback TCP transport: length-prefixed, CRC32-checksummed binary messages
// between the edge process (client) and a cloud executor (server thread).
// Used by the field demo to move real feature tensors through a real socket;
// the request handler runs on the server thread.
//
// Fault tolerance: the client supports per-call deadlines (SO_RCVTIMEO /
// SO_SNDTIMEO), bounded retry with exponential backoff, and transparent
// reconnect. Frames that fail the checksum are rejected and the connection
// is dropped (stream framing can no longer be trusted). An optional
// FaultInjector perturbs outgoing frames for chaos testing.
//
// Distributed tracing: every request frame carries a TraceContext (trace id,
// parent span id, sender clock) in its header; the server installs it as the
// remote parent for the handler's spans, so one inference yields a single
// causal span tree across the edge/cloud partition boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cadmc::runtime {

class FaultInjector;

using Blob = std::vector<std::uint8_t>;
using RequestHandler = std::function<Blob(const Blob&)>;

/// Thrown by TcpClient::call after deadlines/retries are exhausted.
struct TransportError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class TcpServer {
 public:
  explicit TcpServer(RequestHandler handler);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1 on an ephemeral port, starts the accept thread, and
  /// returns the port. Throws std::runtime_error on socket failure.
  std::uint16_t start();
  void stop();

 private:
  void serve();

  RequestHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

struct TcpClientConfig {
  double timeout_ms = 0.0;      // send/recv deadline per syscall; 0 = blocking
  int max_retries = 0;          // extra attempts after the first failed call
  double backoff_ms = 10.0;     // initial retry backoff, doubled per retry
  double backoff_max_ms = 500.0;
};

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connects to 127.0.0.1:port. Throws std::runtime_error on failure.
  /// The config's deadline is applied to every subsequent send/recv.
  void connect(std::uint16_t port, TcpClientConfig config = {});
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Chaos hook: outgoing request frames consult `injector` (may be null)
  /// for drop/corrupt/truncate decisions. Not owned; must outlive the client.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Sends one request and blocks for the response. Retries (with
  /// exponential backoff and reconnect) up to config.max_retries times on
  /// deadline misses, checksum rejections, or connection loss; throws
  /// TransportError once attempts are exhausted.
  Blob call(const Blob& request);

 private:
  bool reconnect();
  bool send_request(const Blob& request, std::string& error);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  TcpClientConfig config_;
  FaultInjector* injector_ = nullptr;
};

/// Trace context carried in every frame header so the receiving process can
/// parent its spans under the sender's request span (obs::RemoteSpanScope)
/// and align clocks. trace_id == 0 means "no context" — the receiver starts
/// a fresh root trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;   // sender's innermost live span
  double clock_ms = 0.0;       // sender's obs::steady_now_ms() at encode time
};

/// Frame header layout (exposed for tests). Wire format, little-endian
/// regardless of host byte order:
///   [0..7]   payload length (u64 LE)
///   [8..11]  CRC32 (IEEE) of the payload (u32 LE)
///   [12..19] trace_id (u64 LE)
///   [20..27] parent span_id (u64 LE)
///   [28..35] sender steady-clock ms (f64 bit pattern as u64 LE)
///   [36..39] CRC32 of bytes [12..35] (u32 LE) — guards the trace section
///            independently of the payload, so a corrupt context degrades to
///            a fresh root trace without losing the frame
///   [40..]   payload
constexpr std::size_t kFrameTraceOffset = 12;
constexpr std::size_t kFrameTraceBytes = 24;
constexpr std::size_t kFrameHeaderBytes = 8 + 4 + kFrameTraceBytes + 4;

bool write_frame(int fd, const Blob& payload, const TraceContext& trace = {});
/// Returns false on short read, oversized frame, or payload checksum
/// mismatch (the caller must drop the connection — framing is no longer
/// trustworthy). A trace section that fails its own checksum clears `trace`
/// (fresh root) but keeps the frame.
bool read_frame(int fd, Blob& payload, TraceContext* trace = nullptr);

/// IEEE 802.3 CRC32 (the zlib polynomial), exposed for tests.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

}  // namespace cadmc::runtime
