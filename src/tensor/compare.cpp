#include "tensor/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace cadmc::tensor {

namespace {

// Maps float bits onto a line where integer distance == ULP distance and
// +0/-0 coincide: non-negative floats keep their bit pattern, negative
// floats fold below zero.
std::int64_t ordered_bits(float f) {
  std::int32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits >= 0
             ? static_cast<std::int64_t>(bits)
             : static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::min()) -
                   bits;
}

}  // namespace

std::uint64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  const std::int64_t oa = ordered_bits(a);
  const std::int64_t ob = ordered_bits(b);
  return static_cast<std::uint64_t>(oa > ob ? oa - ob : ob - oa);
}

CompareResult compare_close(const float* got, const float* want,
                            std::int64_t n, const CompareTolerance& tol) {
  CompareResult result;
  result.count = n;
  for (std::int64_t i = 0; i < n; ++i) {
    const double g = got[i], w = want[i];
    const double abs_err = std::abs(g - w);
    const bool nan = std::isnan(g) != std::isnan(w);
    const bool within =
        !nan && (abs_err <= tol.abs_tol + tol.rel_tol * std::abs(w) ||
                 (std::isnan(g) && std::isnan(w)));
    if (!within) {
      ++result.mismatches;
      if (result.first_mismatch < 0) {
        result.first_mismatch = i;
        result.first_got = got[i];
        result.first_want = want[i];
      }
    }
    const double rel =
        abs_err / std::max(std::abs(w), 1e-30);
    if (rel > result.max_rel_error ||
        (result.max_rel_index < 0 && !std::isnan(rel))) {
      result.max_rel_error = rel;
      result.max_rel_index = i;
    }
    const std::uint64_t ulp = ulp_distance(got[i], want[i]);
    if (ulp > result.max_ulp || result.max_ulp_index < 0) {
      result.max_ulp = ulp;
      result.max_ulp_index = i;
    }
  }
  result.ok = result.mismatches == 0;
  return result;
}

CompareResult compare_close(const Tensor& got, const Tensor& want,
                            const CompareTolerance& tol) {
  if (got.shape() != want.shape()) {
    CompareResult result;
    result.ok = false;
    result.count = -1;
    return result;
  }
  return compare_close(got.data().data(), want.data().data(), got.numel(),
                       tol);
}

std::string CompareResult::summary() const {
  if (count < 0) return "FAIL: shape mismatch";
  char buf[256];
  if (ok) {
    std::snprintf(buf, sizeof(buf),
                  "ok: %lld elements, max_rel=%.3g @%lld, max_ulp=%llu @%lld",
                  static_cast<long long>(count), max_rel_error,
                  static_cast<long long>(max_rel_index),
                  static_cast<unsigned long long>(max_ulp),
                  static_cast<long long>(max_ulp_index));
  } else {
    std::snprintf(
        buf, sizeof(buf),
        "FAIL: %lld/%lld beyond tolerance, first @%lld got=%.9g want=%.9g, "
        "max_rel=%.3g @%lld, max_ulp=%llu @%lld",
        static_cast<long long>(mismatches), static_cast<long long>(count),
        static_cast<long long>(first_mismatch),
        static_cast<double>(first_got), static_cast<double>(first_want),
        max_rel_error, static_cast<long long>(max_rel_index),
        static_cast<unsigned long long>(max_ulp),
        static_cast<long long>(max_ulp_index));
  }
  return buf;
}

}  // namespace cadmc::tensor
