// Tolerance comparison for kernels validated by error bound instead of
// bit-equality — the vector fast mode today, a NEON port tomorrow. The
// deterministic kernels keep their bitwise contract (kernel_test compares
// them with raw bit equality); this helper is for everything that is allowed
// to round differently but must stay numerically close to tensor::reference.
//
// compare_close() reports the maximum relative error and the maximum ULP
// distance with their indices, plus the first out-of-tolerance element with
// both values, so a failing kernel test says *where* and *by how much* in
// one line (CompareResult::summary()).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace cadmc::tensor {

/// Units-in-the-last-place distance between two floats, via the standard
/// monotone mapping of IEEE-754 bit patterns onto a signed integer line.
/// 0 iff the values compare equal (+0 and -0 are 0 apart); any NaN on
/// either side returns UINT64_MAX — kernels must never produce NaN, so a
/// NaN is an automatic mismatch rather than an "equal" pair.
std::uint64_t ulp_distance(float a, float b);

/// |got - want| <= abs_tol + rel_tol * |want|, elementwise.
struct CompareTolerance {
  double rel_tol = 1e-5;
  double abs_tol = 1e-6;
};

struct CompareResult {
  bool ok = true;             // every element within tolerance
  std::int64_t count = 0;     // elements compared
  std::int64_t mismatches = 0;  // elements beyond tolerance
  std::int64_t first_mismatch = -1;  // index of the first such element
  float first_got = 0.0f;     // values at first_mismatch (valid when >= 0)
  float first_want = 0.0f;
  double max_rel_error = 0.0;  // max |got-want|/max(|want|, tiny) over all
  std::int64_t max_rel_index = -1;
  std::uint64_t max_ulp = 0;   // max ulp_distance over all elements
  std::int64_t max_ulp_index = -1;

  /// One-line human report: "ok" / "FAIL", max rel/ulp with indices, and
  /// the first mismatching pair when there is one.
  std::string summary() const;
};

/// Elementwise comparison of two float buffers of length n.
CompareResult compare_close(const float* got, const float* want,
                            std::int64_t n, const CompareTolerance& tol);

/// Tensor overload; a shape mismatch returns ok=false with count=-1 and a
/// summary saying so (never throws — test helpers should report, not abort).
CompareResult compare_close(const Tensor& got, const Tensor& want,
                            const CompareTolerance& tol);

}  // namespace cadmc::tensor
