#include "tensor/kernel_mode.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "tensor/ops_vector.h"
#include "util/logging.h"

namespace cadmc::tensor {

namespace {

// -1 = no override; otherwise a KernelMode value.
std::atomic<int> g_mode_override{-1};

// Generation counter so reset_kernel_mode() can invalidate the cached env
// parse (tests flip the environment between resets; production reads the
// env exactly once).
std::atomic<int> g_env_generation{0};

KernelMode env_mode() {
  const char* env = std::getenv("CADMC_KERNEL_MODE");
  if (!env || !*env) return KernelMode::kDeterministic;
  const auto parsed = parse_kernel_mode(env);
  if (!parsed) {
    static std::once_flag warned;
    std::call_once(warned, [&] {
      util::log_warn() << "ignoring invalid CADMC_KERNEL_MODE='" << env
                       << "' (expected deterministic|fast)";
    });
    return KernelMode::kDeterministic;
  }
  return *parsed;
}

KernelMode cached_env_mode() {
  static std::mutex mutex;
  static int cached_generation = -1;
  static KernelMode cached = KernelMode::kDeterministic;
  const int generation = g_env_generation.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex);
  if (cached_generation != generation) {
    cached = env_mode();
    cached_generation = generation;
  }
  return cached;
}

}  // namespace

std::optional<KernelMode> parse_kernel_mode(std::string_view name) {
  if (name == "deterministic") return KernelMode::kDeterministic;
  if (name == "fast") return KernelMode::kFast;
  return std::nullopt;
}

const char* kernel_mode_name(KernelMode mode) {
  return mode == KernelMode::kFast ? "fast" : "deterministic";
}

bool vector_kernels_compiled() { return vec::compiled(); }

bool vector_kernels_supported() { return vec::cpu_supported(); }

bool vector_kernels_available() {
  // The cpuid answer never changes within a process; cache it so the
  // per-kernel-call dispatch is one relaxed load.
  static const bool available = vec::compiled() && vec::cpu_supported();
  return available;
}

void set_kernel_mode(KernelMode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void reset_kernel_mode() {
  g_mode_override.store(-1, std::memory_order_relaxed);
  g_env_generation.fetch_add(1, std::memory_order_relaxed);
}

KernelMode requested_kernel_mode() {
  const int override_mode = g_mode_override.load(std::memory_order_relaxed);
  if (override_mode >= 0) return static_cast<KernelMode>(override_mode);
  return cached_env_mode();
}

KernelMode kernel_mode() {
  const KernelMode requested = requested_kernel_mode();
  if (requested == KernelMode::kFast && !vector_kernels_available()) {
    static std::once_flag warned;
    std::call_once(warned, [] {
      util::log_warn() << "fast kernel mode requested but AVX2/FMA is "
                       << (vector_kernels_compiled() ? "not supported by this CPU"
                                                     : "not compiled into this build")
                       << "; falling back to deterministic kernels";
    });
    return KernelMode::kDeterministic;
  }
  return requested;
}

void note_fast_fallback(const char* op) {
  if (obs::enabled()) obs::count("cadmc.kernel.fast_fallbacks", 1);
  static std::once_flag warned;
  std::call_once(warned, [op] {
    util::log_warn() << "fast kernel mode requested but '" << op
                     << "' has no vectorized path; running its deterministic "
                        "kernels (counted in cadmc.kernel.fast_fallbacks)";
  });
}

}  // namespace cadmc::tensor
