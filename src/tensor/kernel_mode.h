// Runtime kernel-mode selection for src/tensor.
//
// Two modes exist:
//  * kDeterministic (default) — the blocked scalar kernels with one double
//    accumulator per output element. Bit-identical to tensor::reference for
//    any thread count; this is the repo-wide test contract.
//  * kFast — explicitly vectorized fp32 kernels (AVX2/FMA today, NEON
//    later). Validated against the reference kernels by tolerance
//    (tensor/compare.h) instead of bit-equality, but still invariant to
//    thread count: every output element is produced by exactly one task in
//    a fixed operand order, only the accumulator width changes.
//
// Selection order: set_kernel_mode() (CLI `--kernel-mode`) wins, else the
// CADMC_KERNEL_MODE environment variable (deterministic|fast), else
// deterministic. A fast request on hardware without AVX2+FMA (or in a build
// whose compiler could not target them) silently falls back to the
// deterministic kernels — kernel_mode() reports what will actually run.
#pragma once

#include <optional>
#include <string_view>

namespace cadmc::tensor {

enum class KernelMode {
  kDeterministic = 0,  // scalar blocked kernels, bitwise reference contract
  kFast = 1,           // vectorized fp32 kernels, tolerance contract
};

/// Parses "deterministic" or "fast" (exact, lowercase). nullopt otherwise.
std::optional<KernelMode> parse_kernel_mode(std::string_view name);

/// "deterministic" / "fast".
const char* kernel_mode_name(KernelMode mode);

/// True when this binary contains the AVX2/FMA translation unit (the build
/// could target the ISA). Independent of the machine it runs on.
bool vector_kernels_compiled();

/// True when the CPU executing right now reports AVX2 and FMA.
bool vector_kernels_supported();

/// compiled && supported — the gate every fast-path dispatch checks.
bool vector_kernels_available();

/// Overrides environment and default (CLI `--kernel-mode`).
void set_kernel_mode(KernelMode mode);

/// Drops the set_kernel_mode() override and re-reads CADMC_KERNEL_MODE
/// (tests use this; the CLI never calls it).
void reset_kernel_mode();

/// The mode that was asked for (override, else env, else deterministic) —
/// before the hardware-availability fold.
KernelMode requested_kernel_mode();

/// The mode the kernels will actually run: requested_kernel_mode(), demoted
/// to kDeterministic when the vector kernels are unavailable. A demotion or
/// an unparseable CADMC_KERNEL_MODE value warns once.
KernelMode kernel_mode();

/// Called by ops whose only implementation is the deterministic one when a
/// fast-mode run reaches them (softmax/loss kernels, batchnorm, the
/// avgpool2d backward scatter): increments the
/// `cadmc.kernel.fast_fallbacks` counter (when metrics are enabled) and
/// logs a once-per-process warning naming the first such op, so profile
/// runs can't silently mix modes. Ops whose fast path is bitwise-identical
/// by construction (maxpool, relu) are mode-neutral and do not count.
void note_fast_fallback(const char* op);

}  // namespace cadmc::tensor
