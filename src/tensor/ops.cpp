// Blocked, thread-parallel compute kernels. See ops.h for the accumulation
// contract and ops_reference.cpp for the naive loop nests that define it.
//
// Structure:
//  * One register-blocked GEMM micro-kernel (double accumulators over a
//    packed kNR-column B-panel) shared by matmul/matmul_tn/matmul_nt and by
//    both convolution directions.
//  * conv2d lowers to im2col + GEMM per (batch, group); 1x1 stride-1
//    unpadded convs skip the im2col copy entirely (the input already is the
//    column matrix) and depthwise convs use a direct per-channel loop.
//  * conv2d_backward computes dweight as a row-dot GEMM against the same
//    column matrix, and dinput as W^T x grad_out into a double-precision
//    dcol buffer followed by a col2im *gather* (each input element owns its
//    own accumulator — no scatter races, no atomics).
//  * Scratch (im2col matrices, packed panels, dcol) comes from the
//    per-thread tensor::ScratchArena; fan-out runs on util::parallel_for
//    with every output element owned by exactly one task, which is what
//    makes results bit-identical for any thread count.
//  * Kernel-mode dispatch: kernel_mode() == kFast routes the GEMM column
//    tasks, the depthwise planes and the conv-backward inner loops to the
//    vectorized fp32 kernels in ops_avx2.cpp (vec::*). The mode is resolved
//    once per public entry point, so one call never mixes modes; im2col,
//    the col2im gather structure and all task ownership stay shared.
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/span.h"
#include "tensor/kernel_mode.h"
#include "tensor/ops_detail.h"
#include "tensor/ops_vector.h"
#include "tensor/scratch.h"
#include "util/thread_pool.h"

namespace cadmc::tensor {

namespace {

using detail::BLayout;
using detail::ConvDims;
using detail::kJBlock;
using detail::kNR;
using detail::kPackMinRows;
using detail::kParallelMinMacc;
using detail::pack_panel_kn;
using detail::pack_panel_nk;

void note_gemm_flops(std::int64_t macc) {
  if (obs::enabled()) obs::count("cadmc.kernel.gemm_flops", 2 * macc);
}

void note_im2col_bytes(std::int64_t bytes) {
  if (obs::enabled()) obs::count("cadmc.kernel.im2col_bytes", bytes);
}

bool fast_mode() { return kernel_mode() == KernelMode::kFast; }

// One C-row x B-panel update:
//   c[jj] = float(init + sum_{kk ascending} a[kk] * panel[kk*jw + jj])
// The jw == kNR case is split out so the inner loop has a compile-time trip
// count (vectorizes); both branches run the identical per-element sequence.
void micro_kernel(const float* __restrict a, const float* __restrict panel,
                  int k, int jw, double init, float* __restrict c) {
  double acc[kNR];
  if (jw == kNR) {
    for (int jj = 0; jj < kNR; ++jj) acc[jj] = init;
    for (int kk = 0; kk < k; ++kk) {
      const double av = a[kk];
      const float* __restrict brow =
          panel + static_cast<std::ptrdiff_t>(kk) * kNR;
      for (int jj = 0; jj < kNR; ++jj) acc[jj] += av * brow[jj];
    }
    for (int jj = 0; jj < kNR; ++jj) c[jj] = static_cast<float>(acc[jj]);
  } else {
    for (int jj = 0; jj < jw; ++jj) acc[jj] = init;
    for (int kk = 0; kk < k; ++kk) {
      const double av = a[kk];
      const float* __restrict brow =
          panel + static_cast<std::ptrdiff_t>(kk) * jw;
      for (int jj = 0; jj < jw; ++jj) acc[jj] += av * brow[jj];
    }
    for (int jj = 0; jj < jw; ++jj) c[jj] = static_cast<float>(acc[jj]);
  }
}

// Computes C[i][j0..j1) for every row i, with A rows contiguous (lda >= k).
// row_init may be null (zero init) or point at m per-row initial values
// (conv bias). Runs inside one parallel task; only touches its own columns.
// `fast` selects the vectorized fp32 kernels — resolved by the caller once
// per public op, never inside the task, so one call never mixes modes.
void gemm_columns(bool fast, const float* a, int lda, const float* b, int ldb,
                  BLayout layout, int m, int k, const float* row_init,
                  float* c, int ldc, int jbegin, int jend) {
  if (fast) {
    vec::gemm_columns_f32(a, lda, b, ldb, layout, m, k, row_init, c, ldc,
                          jbegin, jend);
    return;
  }
  ScratchArena& arena = ScratchArena::local();
  if (m >= kPackMinRows) {
    for (int j0 = jbegin; j0 < jend; j0 += kNR) {
      const int jw = std::min(kNR, jend - j0);
      const auto panel = arena.floats(
          ScratchArena::kPanel, static_cast<std::size_t>(k) * jw);
      if (layout == BLayout::kRowMajorKN)
        pack_panel_kn(b, ldb, k, j0, jw, panel.data());
      else
        pack_panel_nk(b, ldb, k, j0, jw, panel.data());
      for (int i = 0; i < m; ++i)
        micro_kernel(a + static_cast<std::ptrdiff_t>(i) * lda, panel.data(),
                     k, jw, row_init ? static_cast<double>(row_init[i]) : 0.0,
                     c + static_cast<std::ptrdiff_t>(i) * ldc + j0);
    }
    return;
  }
  // Few rows: packing would cost as much as the math. KN streams B rows into
  // a double accumulator row (axpy style); NT rows are already contiguous
  // dot products. Per-element operand order is unchanged: k ascending.
  const int width = jend - jbegin;
  if (layout == BLayout::kRowMajorKN) {
    const auto accrow = arena.doubles(ScratchArena::kPanel,
                                      static_cast<std::size_t>(width));
    for (int i = 0; i < m; ++i) {
      const double init = row_init ? static_cast<double>(row_init[i]) : 0.0;
      double* __restrict acc = accrow.data();
      for (int jj = 0; jj < width; ++jj) acc[jj] = init;
      const float* __restrict arow = a + static_cast<std::ptrdiff_t>(i) * lda;
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        const float* __restrict brow =
            b + static_cast<std::ptrdiff_t>(kk) * ldb + jbegin;
        for (int jj = 0; jj < width; ++jj) acc[jj] += av * brow[jj];
      }
      float* __restrict crow =
          c + static_cast<std::ptrdiff_t>(i) * ldc + jbegin;
      for (int jj = 0; jj < width; ++jj)
        crow[jj] = static_cast<float>(acc[jj]);
    }
  } else {
    for (int i = 0; i < m; ++i) {
      const double init = row_init ? static_cast<double>(row_init[i]) : 0.0;
      const float* __restrict arow = a + static_cast<std::ptrdiff_t>(i) * lda;
      float* __restrict crow = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = jbegin; j < jend; ++j) {
        const float* __restrict brow =
            b + static_cast<std::ptrdiff_t>(j) * ldb;
        double acc = init;
        for (int kk = 0; kk < k; ++kk)
          acc += static_cast<double>(arow[kk]) * brow[kk];
        crow[j] = static_cast<float>(acc);
      }
    }
  }
}

// Full C = A * B (+ row_init), parallel over column blocks.
void gemm_blocked(const float* a, int lda, const float* b, int ldb,
                  BLayout layout, int m, int n, int k, const float* row_init,
                  float* c, int ldc) {
  note_gemm_flops(static_cast<std::int64_t>(m) * n * k);
  const bool fast = fast_mode();
  const int jblocks = (n + kJBlock - 1) / kJBlock;
  const bool parallel =
      jblocks > 1 &&
      static_cast<std::int64_t>(m) * n * k >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(jblocks),
                        [&](std::size_t jb) {
                          const int jbegin = static_cast<int>(jb) * kJBlock;
                          const int jend = std::min(n, jbegin + kJBlock);
                          gemm_columns(fast, a, lda, b, ldb, layout, m, k,
                                       row_init, c, ldc, jbegin, jend);
                        });
}

// im2col for one (batch, group) slice: src is the [cig][h][w] input block,
// dst the [cig*k*k][ho*wo] column matrix with zero-filled padded taps. Row
// order (icg, ky, kx) is the accumulation order of the contract.
void im2col_slice(const float* __restrict src, const ConvDims& d,
                  const Conv2dSpec& spec, float* __restrict dst) {
  const int hw = d.h * d.w;
  for (int icg = 0; icg < d.cig; ++icg) {
    const float* __restrict plane =
        src + static_cast<std::ptrdiff_t>(icg) * hw;
    for (int ky = 0; ky < d.k; ++ky) {
      for (int kx = 0; kx < d.k; ++kx) {
        float* __restrict row =
            dst + (static_cast<std::ptrdiff_t>(icg) * d.k * d.k +
                   ky * d.k + kx) *
                      d.how;
        for (int oy = 0; oy < d.ho; ++oy) {
          const int iy = oy * spec.stride + ky - spec.padding;
          float* __restrict r = row + static_cast<std::ptrdiff_t>(oy) * d.wo;
          if (iy < 0 || iy >= d.h) {
            for (int ox = 0; ox < d.wo; ++ox) r[ox] = 0.0f;
            continue;
          }
          const float* __restrict irow =
              plane + static_cast<std::ptrdiff_t>(iy) * d.w;
          if (spec.stride == 1) {
            // Contiguous middle, zero edges — the common 3x3 pad-1 case
            // copies wo-2 floats straight through.
            int ox = 0;
            for (; ox < d.wo; ++ox) {
              const int ix = ox + kx - spec.padding;
              if (ix >= 0) break;
              r[ox] = 0.0f;
            }
            const int first_ix = ox + kx - spec.padding;
            const int run = std::min(d.wo - ox, d.w - first_ix);
            std::copy_n(irow + first_ix, run > 0 ? run : 0, r + ox);
            for (ox += std::max(run, 0); ox < d.wo; ++ox) r[ox] = 0.0f;
          } else {
            for (int ox = 0; ox < d.wo; ++ox) {
              const int ix = ox * spec.stride + kx - spec.padding;
              r[ox] = (ix >= 0 && ix < d.w) ? irow[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

bool is_pointwise(const ConvDims& d, const Conv2dSpec& spec) {
  return d.k == 1 && spec.padding == 0 && spec.stride == 1;
}

bool is_depthwise(const ConvDims& d) { return d.cig == 1 && d.co_per_g == 1; }

// Builds (or aliases) the [n*groups] stack of column matrices. For pointwise
// convs the input itself is the column matrix, so no copy happens. Returns
// the row pointer for (b, g): row kk is `col(b,g) + kk*how`.
struct ColMatrix {
  const float* base = nullptr;     // pointwise: input; else arena buffer
  std::ptrdiff_t bg_stride = 0;    // elements between (b,g) slices
  const float* slice(int b, int g, int groups) const {
    return base + (static_cast<std::ptrdiff_t>(b) * groups + g) * bg_stride;
  }
};

ColMatrix build_col_matrix(const float* in, const ConvDims& d,
                           const Conv2dSpec& spec) {
  ColMatrix col;
  if (is_pointwise(d, spec)) {
    // Input [n][ci][hw] viewed as n*groups slices of [cig][how]; how == hw.
    col.base = in;
    col.bg_stride = static_cast<std::ptrdiff_t>(d.cig) * d.how;
    return col;
  }
  const std::size_t slice_elems =
      static_cast<std::size_t>(d.kk) * static_cast<std::size_t>(d.how);
  const std::size_t total =
      slice_elems * static_cast<std::size_t>(d.n) * d.groups;
  // The caller's arena owns the matrix: it must outlive both fan-outs below,
  // and workers only ever read it.
  const auto buf = ScratchArena::local().floats(ScratchArena::kIm2col, total);
  note_im2col_bytes(static_cast<std::int64_t>(total * sizeof(float)));
  const int hw = d.h * d.w;
  const std::size_t slices = static_cast<std::size_t>(d.n) * d.groups;
  const bool parallel =
      slices > 1 &&
      static_cast<std::int64_t>(total) >= kParallelMinMacc;
  util::parallel_for_if(parallel, slices, [&](std::size_t t) {
    const int b = static_cast<int>(t) / d.groups;
    const int g = static_cast<int>(t) % d.groups;
    const float* src =
        in + (static_cast<std::ptrdiff_t>(b) * d.ci + g * d.cig) * hw;
    im2col_slice(src, d, spec, buf.data() + t * slice_elems);
  });
  col.base = buf.data();
  col.bg_stride = static_cast<std::ptrdiff_t>(slice_elems);
  return col;
}

void depthwise_forward(const float* in, const float* wgt, const float* bs,
                       const ConvDims& d, const Conv2dSpec& spec, float* out) {
  const int hw = d.h * d.w;
  const int ksq = d.k * d.k;
  const bool fast = fast_mode();
  const std::size_t planes = static_cast<std::size_t>(d.n) * d.co;
  const bool parallel =
      planes > 1 && static_cast<std::int64_t>(planes) * d.how * ksq >=
                        kParallelMinMacc;
  note_gemm_flops(static_cast<std::int64_t>(planes) * d.how * ksq);
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    const int b = static_cast<int>(t) / d.co;
    const int c = static_cast<int>(t) % d.co;  // group == in ch == out ch
    const float* __restrict plane =
        in + (static_cast<std::ptrdiff_t>(b) * d.ci + c) * hw;
    const float* __restrict wrow =
        wgt + static_cast<std::ptrdiff_t>(c) * ksq;
    float* __restrict o =
        out + (static_cast<std::ptrdiff_t>(b) * d.co + c) * d.how;
    if (fast) {
      vec::depthwise_plane_f32(plane, wrow, bs ? bs[c] : 0.0f, d.h, d.w,
                               d.ho, d.wo, d.k, spec.stride, spec.padding, o);
      return;
    }
    const double init = bs ? static_cast<double>(bs[c]) : 0.0;
    for (int oy = 0; oy < d.ho; ++oy) {
      for (int ox = 0; ox < d.wo; ++ox) {
        double acc = init;
        for (int ky = 0; ky < d.k; ++ky) {
          const int iy = oy * spec.stride + ky - spec.padding;
          for (int kx = 0; kx < d.k; ++kx) {
            const int ix = ox * spec.stride + kx - spec.padding;
            const float v = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                ? plane[static_cast<std::ptrdiff_t>(iy) * d.w +
                                        ix]
                                : 0.0f;
            acc += static_cast<double>(v) * wrow[ky * d.k + kx];
          }
        }
        o[static_cast<std::ptrdiff_t>(oy) * d.wo + ox] =
            static_cast<float>(acc);
      }
    }
  });
}

void depthwise_backward(const float* in, const float* wgt, const float* go,
                        const ConvDims& d, const Conv2dSpec& spec,
                        bool has_bias, Conv2dGrads& grads) {
  const int hw = d.h * d.w;
  const int ksq = d.k * d.k;
  float* __restrict dw = grads.weight.data().data();
  float* __restrict din = grads.input.data().data();
  float* __restrict dbias = has_bias ? grads.bias.data().data() : nullptr;
  const std::size_t channels = static_cast<std::size_t>(d.co);
  const bool parallel =
      channels > 1 &&
      static_cast<std::int64_t>(d.n) * d.co * d.how * ksq >= kParallelMinMacc;
  util::parallel_for_if(parallel, channels, [&](std::size_t ct) {
    const int c = static_cast<int>(ct);
    const float* __restrict wrow =
        wgt + static_cast<std::ptrdiff_t>(c) * ksq;
    // dbias[c] over (b, oy, ox).
    if (dbias) {
      double acc = 0.0;
      for (int b = 0; b < d.n; ++b) {
        const float* __restrict gorow =
            go + (static_cast<std::ptrdiff_t>(b) * d.co + c) * d.how;
        for (int j = 0; j < d.how; ++j) acc += gorow[j];
      }
      dbias[c] = static_cast<float>(acc);
    }
    // dweight[c][ky][kx] over (b, oy, ox) with padded taps as zeros.
    for (int ky = 0; ky < d.k; ++ky) {
      for (int kx = 0; kx < d.k; ++kx) {
        double acc = 0.0;
        for (int b = 0; b < d.n; ++b) {
          const float* __restrict plane =
              in + (static_cast<std::ptrdiff_t>(b) * d.ci + c) * hw;
          const float* __restrict gorow =
              go + (static_cast<std::ptrdiff_t>(b) * d.co + c) * d.how;
          for (int oy = 0; oy < d.ho; ++oy) {
            const int iy = oy * spec.stride + ky - spec.padding;
            for (int ox = 0; ox < d.wo; ++ox) {
              const int ix = ox * spec.stride + kx - spec.padding;
              const float v = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                  ? plane[static_cast<std::ptrdiff_t>(iy) *
                                              d.w +
                                          ix]
                                  : 0.0f;
              acc += static_cast<double>(
                         gorow[static_cast<std::ptrdiff_t>(oy) * d.wo + ox]) *
                     v;
            }
          }
        }
        dw[static_cast<std::ptrdiff_t>(c) * ksq + ky * d.k + kx] =
            static_cast<float>(acc);
      }
    }
    // dinput[b][c][iy][ix] over (ky, kx); the group has one output channel,
    // so the reference's per-tap subtotal is a single product.
    for (int b = 0; b < d.n; ++b) {
      const float* __restrict gorow =
          go + (static_cast<std::ptrdiff_t>(b) * d.co + c) * d.how;
      float* __restrict dplane =
          din + (static_cast<std::ptrdiff_t>(b) * d.ci + c) * hw;
      for (int iy = 0; iy < d.h; ++iy) {
        for (int ix = 0; ix < d.w; ++ix) {
          double acc = 0.0;
          for (int ky = 0; ky < d.k; ++ky) {
            const int oy_num = iy + spec.padding - ky;
            if (oy_num < 0 || oy_num % spec.stride != 0) continue;
            const int oy = oy_num / spec.stride;
            if (oy >= d.ho) continue;
            for (int kx = 0; kx < d.k; ++kx) {
              const int ox_num = ix + spec.padding - kx;
              if (ox_num < 0 || ox_num % spec.stride != 0) continue;
              const int ox = ox_num / spec.stride;
              if (ox >= d.wo) continue;
              acc += static_cast<double>(wrow[ky * d.k + kx]) *
                     gorow[static_cast<std::ptrdiff_t>(oy) * d.wo + ox];
            }
          }
          dplane[static_cast<std::ptrdiff_t>(iy) * d.w + ix] =
              static_cast<float>(acc);
        }
      }
    }
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  CADMC_SPAN("kernel_gemm");
  detail::check_rank2(a, "matmul a");
  detail::check_rank2(b, "matmul b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  gemm_blocked(a.data().data(), k, b.data().data(), n, BLayout::kRowMajorKN,
               m, n, k, nullptr, c.data().data(), n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CADMC_SPAN("kernel_gemm");
  detail::check_rank2(a, "matmul_tn a");
  detail::check_rank2(b, "matmul_tn b");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({m, n});
  // Pack A^T once into contiguous rows (caller arena, shared read-only by
  // the GEMM tasks); the pack cost is one column of compute.
  const float* pa = a.data().data();
  const auto at = ScratchArena::local().floats(
      ScratchArena::kPackA, static_cast<std::size_t>(m) * k);
  for (int kk = 0; kk < k; ++kk) {
    const float* __restrict src = pa + static_cast<std::ptrdiff_t>(kk) * m;
    for (int i = 0; i < m; ++i)
      at[static_cast<std::size_t>(i) * k + kk] = src[i];
  }
  gemm_blocked(at.data(), k, b.data().data(), n, BLayout::kRowMajorKN, m, n,
               k, nullptr, c.data().data(), n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CADMC_SPAN("kernel_gemm");
  detail::check_rank2(a, "matmul_nt a");
  detail::check_rank2(b, "matmul_nt b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({m, n});
  gemm_blocked(a.data().data(), k, b.data().data(), k, BLayout::kRowMajorNK,
               m, n, k, nullptr, c.data().data(), n);
  return c;
}

int conv_out_size(int in, int kernel, int stride, int padding) {
  const int span = in + 2 * padding - kernel;
  if (span < 0) return 0;  // window larger than padded input: empty output
  return span / stride + 1;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec) {
  CADMC_SPAN("kernel_conv_forward");
  const ConvDims d = detail::check_conv_args(input, weight, bias, spec);
  Tensor out({d.n, d.co, d.ho, d.wo});
  const float* in = input.data().data();
  const float* wgt = weight.data().data();
  const float* bs = d.has_bias ? bias.data().data() : nullptr;
  float* o = out.data().data();

  if (is_depthwise(d)) {
    depthwise_forward(in, wgt, bs, d, spec, o);
    return out;
  }

  const ColMatrix col = build_col_matrix(in, d, spec);
  note_gemm_flops(static_cast<std::int64_t>(d.n) * d.groups * d.co_per_g *
                  d.how * d.kk);
  const bool fast = fast_mode();
  const int jblocks = (d.how + kJBlock - 1) / kJBlock;
  const std::size_t tasks =
      static_cast<std::size_t>(d.n) * d.groups * jblocks;
  const bool parallel =
      tasks > 1 && static_cast<std::int64_t>(d.n) * d.groups * d.co_per_g *
                           d.how * d.kk >=
                       kParallelMinMacc;
  util::parallel_for_if(parallel, tasks, [&](std::size_t t) {
    const int jb = static_cast<int>(t % jblocks);
    const std::size_t bg = t / jblocks;
    const int g = static_cast<int>(bg) % d.groups;
    const int b = static_cast<int>(bg) / d.groups;
    const int jbegin = jb * kJBlock;
    const int jend = std::min(d.how, jbegin + kJBlock);
    // Weight rows of group g are contiguous [co_per_g][kk]; C rows are the
    // output channel planes of (b, g).
    gemm_columns(fast,
                 wgt + static_cast<std::ptrdiff_t>(g) * d.co_per_g * d.kk,
                 d.kk, col.slice(b, g, d.groups), d.how,
                 BLayout::kRowMajorKN, d.co_per_g, d.kk,
                 bs ? bs + static_cast<std::ptrdiff_t>(g) * d.co_per_g
                    : nullptr,
                 o + (static_cast<std::ptrdiff_t>(b) * d.co +
                      g * d.co_per_g) *
                         d.how,
                 d.how, jbegin, jend);
  });
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec) {
  CADMC_SPAN("kernel_conv_backward");
  const ConvDims d = detail::check_conv_args(
      input, weight, has_bias ? Tensor({weight.dim(0)}) : Tensor(), spec);
  if (grad_out.rank() != 4 || grad_out.dim(0) != d.n ||
      grad_out.dim(1) != d.co || grad_out.dim(2) != d.ho ||
      grad_out.dim(3) != d.wo)
    throw std::invalid_argument("conv2d_backward: grad_out shape mismatch");

  Conv2dGrads grads;
  grads.input = Tensor(input.shape());
  grads.weight = Tensor(weight.shape());
  if (has_bias) grads.bias = Tensor({d.co});

  const float* in = input.data().data();
  const float* wgt = weight.data().data();
  const float* go = grad_out.data().data();

  if (is_depthwise(d)) {
    depthwise_backward(in, wgt, go, d, spec, has_bias, grads);
    return grads;
  }

  const ColMatrix col = build_col_matrix(in, d, spec);
  const int hw = d.h * d.w;
  const bool fast = fast_mode();

  // dbias + dweight: one task per output channel. dW row oc is kk dots of
  // grad_out row (b, oc) against col rows, batch-major — the (b, j) operand
  // order of the reference. Fast mode runs the same dots as fp32 FMA
  // reductions (vec::dot_f32); dbias stays a double sum in both modes.
  float* dw = grads.weight.data().data();
  float* dbias = has_bias ? grads.bias.data().data() : nullptr;
  note_gemm_flops(static_cast<std::int64_t>(d.n) * d.co * d.kk * d.how);
  const bool parallel_w =
      d.co > 1 && static_cast<std::int64_t>(d.n) * d.co * d.kk * d.how >=
                      kParallelMinMacc;
  util::parallel_for_if(parallel_w, static_cast<std::size_t>(d.co),
                        [&](std::size_t oct) {
    const int oc = static_cast<int>(oct);
    const int g = oc / d.co_per_g;
    if (dbias) {
      double acc = 0.0;
      for (int b = 0; b < d.n; ++b) {
        const float* __restrict gorow =
            go + (static_cast<std::ptrdiff_t>(b) * d.co + oc) * d.how;
        for (int j = 0; j < d.how; ++j) acc += gorow[j];
      }
      dbias[oc] = static_cast<float>(acc);
    }
    float* __restrict dwrow = dw + static_cast<std::ptrdiff_t>(oc) * d.kk;
    for (int kk = 0; kk < d.kk; ++kk) {
      if (fast) {
        float acc = 0.0f;
        for (int b = 0; b < d.n; ++b)
          acc += vec::dot_f32(
              go + (static_cast<std::ptrdiff_t>(b) * d.co + oc) * d.how,
              col.slice(b, g, d.groups) +
                  static_cast<std::ptrdiff_t>(kk) * d.how,
              d.how);
        dwrow[kk] = acc;
        continue;
      }
      double acc = 0.0;
      for (int b = 0; b < d.n; ++b) {
        const float* __restrict gorow =
            go + (static_cast<std::ptrdiff_t>(b) * d.co + oc) * d.how;
        const float* __restrict colrow =
            col.slice(b, g, d.groups) +
            static_cast<std::ptrdiff_t>(kk) * d.how;
        for (int j = 0; j < d.how; ++j)
          acc += static_cast<double>(gorow[j]) * colrow[j];
      }
      dwrow[kk] = static_cast<float>(acc);
    }
  });

  // dinput: per (b, g) task — dcol = W_g^T x grad_out in double precision
  // (operand order: group output channels ascending per dcol element), then
  // a col2im gather where each input element owns one accumulator summing
  // its (ky, kx) taps ascending.
  float* din = grads.input.data().data();
  note_gemm_flops(static_cast<std::int64_t>(d.n) * d.groups * d.co_per_g *
                  d.kk * d.how);
  const std::size_t bg_tasks = static_cast<std::size_t>(d.n) * d.groups;
  const bool parallel_i =
      bg_tasks > 1 && static_cast<std::int64_t>(d.n) * d.groups *
                              d.co_per_g * d.kk * d.how >=
                          kParallelMinMacc;
  util::parallel_for_if(parallel_i, bg_tasks, [&](std::size_t t) {
    const int g = static_cast<int>(t) % d.groups;
    const int b = static_cast<int>(t) / d.groups;
    ScratchArena& arena = ScratchArena::local();
    const std::size_t dcol_elems =
        static_cast<std::size_t>(d.kk) * static_cast<std::size_t>(d.how);
    // Fast mode keeps the dcol buffer in fp32 (vec::axpy_f32 FMA updates);
    // the deterministic mode keeps its double-precision contract. The float
    // and double slots of the arena never alias.
    std::span<double> dcol_d;
    std::span<float> dcol_f;
    if (fast) {
      dcol_f = arena.floats(ScratchArena::kColGrad, dcol_elems);
      std::fill(dcol_f.begin(), dcol_f.end(), 0.0f);
    } else {
      dcol_d = arena.doubles(ScratchArena::kColGrad, dcol_elems);
      std::fill(dcol_d.begin(), dcol_d.end(), 0.0);
    }
    for (int ocg = 0; ocg < d.co_per_g; ++ocg) {
      const int oc = g * d.co_per_g + ocg;
      const float* __restrict wrow =
          wgt + static_cast<std::ptrdiff_t>(oc) * d.kk;
      const float* __restrict gorow =
          go + (static_cast<std::ptrdiff_t>(b) * d.co + oc) * d.how;
      for (int kk = 0; kk < d.kk; ++kk) {
        if (fast) {
          vec::axpy_f32(wrow[kk], gorow,
                        dcol_f.data() + static_cast<std::ptrdiff_t>(kk) * d.how,
                        d.how);
          continue;
        }
        const double av = wrow[kk];
        double* __restrict drow =
            dcol_d.data() + static_cast<std::ptrdiff_t>(kk) * d.how;
        for (int j = 0; j < d.how; ++j) drow[j] += av * gorow[j];
      }
    }
    // col2im gather: shared between modes; only the dcol element type
    // differs (the per-element sum of <= k*k taps stays double in both).
    const auto gather = [&](const auto* dcol) {
      for (int icg = 0; icg < d.cig; ++icg) {
        const int ic = g * d.cig + icg;
        float* __restrict dplane =
            din + (static_cast<std::ptrdiff_t>(b) * d.ci + ic) * hw;
        for (int iy = 0; iy < d.h; ++iy) {
          for (int ix = 0; ix < d.w; ++ix) {
            double acc = 0.0;
            for (int ky = 0; ky < d.k; ++ky) {
              const int oy_num = iy + spec.padding - ky;
              if (oy_num < 0 || oy_num % spec.stride != 0) continue;
              const int oy = oy_num / spec.stride;
              if (oy >= d.ho) continue;
              for (int kx = 0; kx < d.k; ++kx) {
                const int ox_num = ix + spec.padding - kx;
                if (ox_num < 0 || ox_num % spec.stride != 0) continue;
                const int ox = ox_num / spec.stride;
                if (ox >= d.wo) continue;
                acc += dcol[(static_cast<std::size_t>(icg) * d.k * d.k +
                             static_cast<std::size_t>(ky) * d.k + kx) *
                                d.how +
                            static_cast<std::size_t>(oy) * d.wo + ox];
              }
            }
            dplane[static_cast<std::ptrdiff_t>(iy) * d.w + ix] =
                static_cast<float>(acc);
          }
        }
      }
    };
    if (fast)
      gather(dcol_f.data());
    else
      gather(dcol_d.data());
  });
  return grads;
}

// Pooling, activation, loss, batchnorm, and optimizer kernels live in
// ops_framework.cpp.

}  // namespace cadmc::tensor
