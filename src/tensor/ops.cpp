#include "tensor/ops.h"

#include <cmath>
#include <stdexcept>

namespace cadmc::tensor {

namespace {
void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(name) + ": expected rank-2 tensor");
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul a");
  check_rank2(b, "matmul b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<std::ptrdiff_t>(kk) * n;
      float* crow = pc + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn a");
  check_rank2(b, "matmul_tn b");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = pa + static_cast<std::ptrdiff_t>(kk) * m;
    const float* brow = pb + static_cast<std::ptrdiff_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + static_cast<std::ptrdiff_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt a");
  check_rank2(b, "matmul_nt b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::ptrdiff_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::ptrdiff_t>(j) * k;
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s += static_cast<double>(arow[kk]) * brow[kk];
      pc[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

int conv_out_size(int in, int kernel, int stride, int padding) {
  const int span = in + 2 * padding - kernel;
  if (span < 0) return 0;  // window larger than padded input: empty output
  return span / stride + 1;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec) {
  if (input.rank() != 4 || weight.rank() != 4)
    throw std::invalid_argument("conv2d: expected rank-4 input and weight");
  const int n = input.dim(0), ci = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int co = weight.dim(0), cig = weight.dim(1), k = weight.dim(2);
  if (weight.dim(3) != k) throw std::invalid_argument("conv2d: non-square kernel");
  const int groups = spec.groups;
  if (ci % groups != 0 || co % groups != 0 || ci / groups != cig)
    throw std::invalid_argument("conv2d: group/channel mismatch");
  const bool has_bias = !bias.empty();
  if (has_bias && bias.numel() != co)
    throw std::invalid_argument("conv2d: bias size mismatch");
  const int ho = conv_out_size(h, k, spec.stride, spec.padding);
  const int wo = conv_out_size(w, k, spec.stride, spec.padding);
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("conv2d: empty output");

  Tensor out({n, co, ho, wo});
  const int co_per_g = co / groups;
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < co; ++oc) {
      const int g = oc / co_per_g;
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          double acc = has_bias ? bias.at(oc) : 0.0;
          for (int icg = 0; icg < cig; ++icg) {
            const int ic = g * cig + icg;
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= w) continue;
                acc += static_cast<double>(input(b, ic, iy, ix)) *
                       weight(oc, icg, ky, kx);
              }
            }
          }
          out(b, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec) {
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int co = weight.dim(0), cig = weight.dim(1), k = weight.dim(2);
  const int groups = spec.groups;
  const int co_per_g = co / groups;
  const int ho = grad_out.dim(2), wo = grad_out.dim(3);

  Conv2dGrads grads;
  grads.input = Tensor(input.shape());
  grads.weight = Tensor(weight.shape());
  if (has_bias) grads.bias = Tensor({co});

  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < co; ++oc) {
      const int g = oc / co_per_g;
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          const float go = grad_out(b, oc, oy, ox);
          if (go == 0.0f) continue;
          if (has_bias) grads.bias.at(oc) += go;
          for (int icg = 0; icg < cig; ++icg) {
            const int ic = g * cig + icg;
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * spec.stride + ky - spec.padding;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * spec.stride + kx - spec.padding;
                if (ix < 0 || ix >= w) continue;
                grads.weight(oc, icg, ky, kx) += go * input(b, ic, iy, ix);
                grads.input(b, ic, iy, ix) += go * weight(oc, icg, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grads;
}

MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int ho = conv_out_size(h, kernel, stride, 0);
  const int wo = conv_out_size(w, kernel, stride, 0);
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("maxpool2d: empty output");
  MaxPoolResult result;
  result.output = Tensor({n, c, ho, wo});
  result.argmax.resize(static_cast<std::size_t>(result.output.numel()));
  std::int64_t out_idx = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int oy = 0; oy < ho; ++oy) {
        for (int ox = 0; ox < wo; ++ox) {
          float best = -3.4e38f;
          std::int64_t best_idx = -1;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride + ky;
            if (iy >= h) continue;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride + kx;
              if (ix >= w) continue;
              const std::int64_t flat =
                  ((static_cast<std::int64_t>(b) * c + ch) * h + iy) * w + ix;
              const float v = input.at(flat);
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          }
          result.output.at(out_idx) = best;
          result.argmax[static_cast<std::size_t>(out_idx)] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return result;
}

Tensor maxpool2d_backward(const Tensor& input, const MaxPoolResult& fwd,
                          const Tensor& grad_out) {
  Tensor grad_in(input.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in.at(fwd.argmax[static_cast<std::size_t>(i)]) += grad_out.at(i);
  return grad_in;
}

Tensor avgpool2d(const Tensor& input, int kernel, int stride) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int ho = conv_out_size(h, kernel, stride, 0);
  const int wo = conv_out_size(w, kernel, stride, 0);
  if (ho <= 0 || wo <= 0) throw std::invalid_argument("avgpool2d: empty output");
  Tensor out({n, c, ho, wo});
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          double acc = 0.0;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx) {
              const int iy = oy * stride + ky;
              const int ix = ox * stride + kx;
              if (iy < h && ix < w) acc += input(b, ch, iy, ix);
            }
          out(b, ch, oy, ox) = static_cast<float>(acc) * inv;
        }
  return out;
}

Tensor avgpool2d_backward(const Tensor& input, int kernel, int stride,
                          const Tensor& grad_out) {
  Tensor grad_in(input.shape());
  const int h = input.dim(2), w = input.dim(3);
  const int ho = grad_out.dim(2), wo = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int b = 0; b < input.dim(0); ++b)
    for (int ch = 0; ch < input.dim(1); ++ch)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          const float g = grad_out(b, ch, oy, ox) * inv;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx) {
              const int iy = oy * stride + ky;
              const int ix = ox * stride + kx;
              if (iy < h && ix < w) grad_in(b, ch, iy, ix) += g;
            }
        }
  return grad_in;
}

Tensor global_avgpool(const Tensor& input) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) acc += input(b, ch, y, x);
      out(b, ch) = static_cast<float>(acc) * inv;
    }
  return out;
}

Tensor global_avgpool_backward(const Tensor& input, const Tensor& grad_out) {
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  Tensor grad_in(input.shape());
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out(b, ch) * inv;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) grad_in(b, ch, y, x) = g;
    }
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: rank-2 expected");
  const int n = logits.dim(0), d = logits.dim(1);
  Tensor out(logits.shape());
  for (int i = 0; i < n; ++i) {
    float mx = logits(i, 0);
    for (int j = 1; j < d; ++j) mx = std::max(mx, logits(i, j));
    double denom = 0.0;
    for (int j = 0; j < d; ++j) denom += std::exp(static_cast<double>(logits(i, j)) - mx);
    for (int j = 0; j < d; ++j)
      out(i, j) = static_cast<float>(
          std::exp(static_cast<double>(logits(i, j)) - mx) / denom);
  }
  return out;
}

}  // namespace cadmc::tensor
