// Dense tensor kernels: matrix multiplication, 2-D (grouped) convolution with
// full backward passes, pooling, and softmax. All kernels are straightforward
// loop nests — the models in this repo are CIFAR-scale, and the paper's
// latency numbers come from the analytic model in src/latency, not from wall
// clock of these kernels.
#pragma once

#include "tensor/tensor.h"

namespace cadmc::tensor {

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A^T[k,m]^T * B[k,n]  (i.e. a is [k,m], result [m,n]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] * B^T where b is [n,k].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

struct Conv2dSpec {
  int stride = 1;
  int padding = 0;
  int groups = 1;  // groups == in_channels gives a depthwise convolution
};

/// Output spatial size for one dimension.
int conv_out_size(int in, int kernel, int stride, int padding);

/// input [N,Ci,H,W], weight [Co,Ci/groups,K,K], bias [Co] (may be empty).
/// Returns [N,Co,Ho,Wo].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor input;   // dL/dinput, same shape as input
  Tensor weight;  // dL/dweight
  Tensor bias;    // dL/dbias ([Co]; empty if no bias)
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec);

/// Max pooling, input [N,C,H,W]. Also returns argmax indices for backward.
struct MaxPoolResult {
  Tensor output;
  std::vector<std::int64_t> argmax;  // flat input index chosen per output cell
};
MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride);
Tensor maxpool2d_backward(const Tensor& input, const MaxPoolResult& fwd,
                          const Tensor& grad_out);

/// Average pooling over kernel x kernel windows.
Tensor avgpool2d(const Tensor& input, int kernel, int stride);
Tensor avgpool2d_backward(const Tensor& input, int kernel, int stride,
                          const Tensor& grad_out);

/// Global average pooling: [N,C,H,W] -> [N,C].
Tensor global_avgpool(const Tensor& input);
Tensor global_avgpool_backward(const Tensor& input, const Tensor& grad_out);

/// Row-wise softmax of a [N,D] tensor (numerically stable).
Tensor softmax_rows(const Tensor& logits);

}  // namespace cadmc::tensor
