// Dense tensor kernels: matrix multiplication, 2-D (grouped) convolution with
// full backward passes, pooling, ReLU-family activations, batch
// normalization, softmax / cross-entropy / distillation losses, and the SGD
// parameter update.
//
// The matmul family and conv2d/conv2d_backward are cache-blocked and
// thread-parallel: they route through one register-blocked GEMM micro-kernel
// (contiguous packed B-panels, `__restrict` pointers), convolutions lower to
// im2col/col2im around that kernel — with a pure-GEMM fast path for 1x1
// pointwise convs (no im2col copy) and a direct per-channel loop for
// depthwise convs — and scratch memory comes from the per-thread
// tensor::ScratchArena so repeated calls reuse buffers. Work is spread over
// util::parallel_for.
//
// Accumulation-precision policy (applies to every kernel in this header,
// in the default deterministic mode): each output element is one
// double-precision accumulator, summed in a fixed, documented operand order
// and rounded to float exactly once at the end. For
// matmul/matmul_tn/matmul_nt that order is k ascending; for conv2d it is
// (in-group channel, ky, kx) ascending with zero-padded taps included as
// explicit +0.0 terms and the bias as the accumulator's initial value; for
// the backward kernels see ops_reference.cpp, whose naive loops *define*
// the operand order. Because the order is per-element and never split across
// tasks, results are bit-identical to the reference kernels, identical for
// any thread count, and identical across the fast paths (the parity suite
// `ctest -L kernel` asserts all three).
//
// A second kernel mode exists (tensor/kernel_mode.h): `fast` swaps the
// double accumulators for AVX2/FMA fp32 vector kernels, validated against
// tensor::reference by tolerance (tensor/compare.h) instead of
// bit-equality. The mode is resolved once per op entry and task ownership
// is unchanged, so fast results are still bit-identical across thread
// counts — only the deterministic-vs-reference bitwise guarantee is traded
// for speed.
//
// The framework ops below the conv family fall into three classes:
//  * Exact ops (maxpool forward/backward, relu forward/backward,
//    global_avgpool_backward): no accumulation rounding exists, so the fast
//    path (when one exists) is bitwise-identical to the deterministic one.
//  * Vectorized ops (avgpool2d, global_avgpool, sgd_update): the fast path
//    accumulates/updates in fp32 FMA and carries the tolerance contract.
//  * Deterministic-only ops (softmax/loss kernels, batchnorm,
//    avgpool2d_backward): fast mode runs the deterministic implementation
//    and records a once-per-process fast-fallback warning plus the
//    cadmc.kernel.fast_fallbacks counter (tensor/kernel_mode.h).
//
// The paper's latency numbers still come from the analytic model in
// src/latency, not from wall clock of these kernels — but these kernels are
// the real-compute floor of distillation-training candidate models and of
// executing edge slices, which is why they are blocked and parallel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace cadmc::tensor {

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A^T[k,m]^T * B[k,n]  (i.e. a is [k,m], result [m,n]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] * B^T where b is [n,k].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

struct Conv2dSpec {
  int stride = 1;
  int padding = 0;
  int groups = 1;  // groups == in_channels gives a depthwise convolution
};

/// Output spatial size for one dimension.
int conv_out_size(int in, int kernel, int stride, int padding);

/// input [N,Ci,H,W], weight [Co,Ci/groups,K,K], bias [Co] (may be empty).
/// Returns [N,Co,Ho,Wo].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor input;   // dL/dinput, same shape as input
  Tensor weight;  // dL/dweight
  Tensor bias;    // dL/dbias ([Co]; empty if no bias)
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec);

/// Max pooling, input [N,C,H,W]. Windows are always fully in-bounds
/// (padding is 0 and conv_out_size floors), and the winner is the *first*
/// maximum in (ky, kx) scan order — the single-owner contract the backward
/// pass routes gradients by. `with_argmax=false` (inference) skips the
/// argmax bookkeeping and unlocks the vectorized row kernels; the output
/// values are bitwise-identical either way (max has no rounding).
struct MaxPoolResult {
  Tensor output;
  std::vector<std::int64_t> argmax;  // flat input index chosen per output cell
};
MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride,
                        bool with_argmax = true);
/// Routes each output-cell gradient to its recorded argmax element. Needs
/// only the forward argmax and the input *shape* — callers don't have to
/// retain the input tensor.
Tensor maxpool2d_backward(const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_out);

/// Average pooling over kernel x kernel windows (windows fully in-bounds).
Tensor avgpool2d(const Tensor& input, int kernel, int stride);
Tensor avgpool2d_backward(const Shape& input_shape, int kernel, int stride,
                          const Tensor& grad_out);

/// Global average pooling: [N,C,H,W] -> [N,C].
Tensor global_avgpool(const Tensor& input);
Tensor global_avgpool_backward(const Shape& input_shape,
                               const Tensor& grad_out);

/// Element-wise ReLU; cap > 0 additionally clamps to [0, cap] (ReLU6).
/// Exact in both kernel modes (no accumulation).
Tensor relu(const Tensor& input, float cap = 0.0f);
/// Backward of relu: passes grad where 0 < x (and x < cap when capped).
Tensor relu_backward(const Tensor& input, const Tensor& grad_out,
                     float cap = 0.0f);

/// Row-wise softmax of a [N,D] tensor (numerically stable).
Tensor softmax_rows(const Tensor& logits);

/// A scalar loss plus its gradient w.r.t. the logits (already averaged over
/// the batch).
struct RowLossResult {
  double loss = 0.0;
  Tensor grad;
};

/// Fused softmax + cross-entropy over [N,C] logits: loss is the mean
/// negative log-likelihood, grad is (softmax - onehot)/N. One pass, no
/// probability tensor materialized beyond the gradient itself. Per-row work
/// is independent (parallel); the per-row loss terms are summed serially in
/// row order, so the result is identical for any thread count.
RowLossResult softmax_xent_rows(const Tensor& logits,
                                const std::vector<int>& labels);

/// Fused distillation soft loss: T^2 * KL(p_T || q_T) with
/// q_T = softmax(student/T), p_T = softmax(teacher/T), and
/// grad = T*(q_T - p_T)/N. The temperature-softened probability rows live
/// in per-thread scratch — no [N,C] temporaries are allocated.
RowLossResult kd_softmax_rows(const Tensor& student_logits,
                              const Tensor& teacher_logits,
                              double temperature);

/// Training-mode 2-D batch normalization over [N,C,H,W]: per-channel batch
/// mean/var (double accumulation, (b,y,x) ascending), normalized
/// activations cached for backward, gamma*norm + beta output.
struct BatchNorm2dFwd {
  Tensor output;
  Tensor norm;                  // (x - mean) * inv_std, cached for backward
  std::vector<float> mean, var; // per-channel batch statistics
  std::vector<float> inv_std;   // 1/sqrt(var + eps), rounded to float
};
BatchNorm2dFwd batchnorm2d_train(const Tensor& input, const Tensor& gamma,
                                 const Tensor& beta, float eps);

/// Inference-mode batchnorm using running statistics.
Tensor batchnorm2d_infer(const Tensor& input, const Tensor& gamma,
                         const Tensor& beta, const Tensor& running_mean,
                         const Tensor& running_var, float eps);

/// Backward of batchnorm2d_train. `norm` and `inv_std` come from the
/// forward result; gamma/beta grads are returned (not accumulated).
struct BatchNorm2dGrads {
  Tensor input;
  Tensor gamma;
  Tensor beta;
};
BatchNorm2dGrads batchnorm2d_backward(const Tensor& grad_out,
                                      const Tensor& norm, const Tensor& gamma,
                                      const std::vector<float>& inv_std);

/// Fused SGD parameter update, one raw-pointer sweep per tensor:
///   g' = grad[j] + weight_decay * param[j]
///   velocity[j] = momentum * velocity[j] + g'   (when velocity is non-empty)
///   param[j]   -= lr * (velocity[j] | g')
/// Pass an empty velocity span for plain SGD. Each element is owned by one
/// task, so results are thread-count invariant; the fast path runs fused
/// FMA (vec::sgd_update_f32) under the tolerance contract.
void sgd_update(std::span<float> param, std::span<const float> grad,
                std::span<float> velocity, float lr, float momentum,
                float weight_decay);

/// Naive single-threaded loop-nest kernels implementing the same
/// element-wise accumulation spec as the blocked kernels above. They are the
/// executable definition of the determinism contract: the `ctest -L kernel`
/// parity suite asserts the blocked kernels are bit-identical to these for
/// randomized shapes, and they serve as the committed-baseline workload of
/// the kernel perf benches.
namespace reference {
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);
Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec);
MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride);
Tensor maxpool2d_backward(const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_out);
Tensor avgpool2d(const Tensor& input, int kernel, int stride);
Tensor avgpool2d_backward(const Shape& input_shape, int kernel, int stride,
                          const Tensor& grad_out);
Tensor global_avgpool(const Tensor& input);
Tensor global_avgpool_backward(const Shape& input_shape,
                               const Tensor& grad_out);
Tensor relu(const Tensor& input, float cap = 0.0f);
Tensor relu_backward(const Tensor& input, const Tensor& grad_out,
                     float cap = 0.0f);
Tensor softmax_rows(const Tensor& logits);
RowLossResult softmax_xent_rows(const Tensor& logits,
                                const std::vector<int>& labels);
RowLossResult kd_softmax_rows(const Tensor& student_logits,
                              const Tensor& teacher_logits,
                              double temperature);
BatchNorm2dFwd batchnorm2d_train(const Tensor& input, const Tensor& gamma,
                                 const Tensor& beta, float eps);
Tensor batchnorm2d_infer(const Tensor& input, const Tensor& gamma,
                         const Tensor& beta, const Tensor& running_mean,
                         const Tensor& running_var, float eps);
BatchNorm2dGrads batchnorm2d_backward(const Tensor& grad_out,
                                      const Tensor& norm, const Tensor& gamma,
                                      const std::vector<float>& inv_std);
void sgd_update(std::span<float> param, std::span<const float> grad,
                std::span<float> velocity, float lr, float momentum,
                float weight_decay);
}  // namespace reference

}  // namespace cadmc::tensor
