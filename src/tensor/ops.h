// Dense tensor kernels: matrix multiplication, 2-D (grouped) convolution with
// full backward passes, pooling, and softmax.
//
// The matmul family and conv2d/conv2d_backward are cache-blocked and
// thread-parallel: they route through one register-blocked GEMM micro-kernel
// (contiguous packed B-panels, `__restrict` pointers), convolutions lower to
// im2col/col2im around that kernel — with a pure-GEMM fast path for 1x1
// pointwise convs (no im2col copy) and a direct per-channel loop for
// depthwise convs — and scratch memory comes from the per-thread
// tensor::ScratchArena so repeated calls reuse buffers. Work is spread over
// util::parallel_for.
//
// Accumulation-precision policy (applies to every kernel in this header,
// in the default deterministic mode): each output element is one
// double-precision accumulator, summed in a fixed, documented operand order
// and rounded to float exactly once at the end. For
// matmul/matmul_tn/matmul_nt that order is k ascending; for conv2d it is
// (in-group channel, ky, kx) ascending with zero-padded taps included as
// explicit +0.0 terms and the bias as the accumulator's initial value; for
// the backward kernels see ops_reference.cpp, whose naive loops *define*
// the operand order. Because the order is per-element and never split across
// tasks, results are bit-identical to the reference kernels, identical for
// any thread count, and identical across the fast paths (the parity suite
// `ctest -L kernel` asserts all three).
//
// A second kernel mode exists (tensor/kernel_mode.h): `fast` swaps the
// double accumulators for AVX2/FMA fp32 vector kernels, validated against
// tensor::reference by tolerance (tensor/compare.h) instead of
// bit-equality. The mode is resolved once per op entry and task ownership
// is unchanged, so fast results are still bit-identical across thread
// counts — only the deterministic-vs-reference bitwise guarantee is traded
// for speed.
//
// The paper's latency numbers still come from the analytic model in
// src/latency, not from wall clock of these kernels — but these kernels are
// the real-compute floor of distillation-training candidate models and of
// executing edge slices, which is why they are blocked and parallel.
#pragma once

#include "tensor/tensor.h"

namespace cadmc::tensor {

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A^T[k,m]^T * B[k,n]  (i.e. a is [k,m], result [m,n]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] * B^T where b is [n,k].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

struct Conv2dSpec {
  int stride = 1;
  int padding = 0;
  int groups = 1;  // groups == in_channels gives a depthwise convolution
};

/// Output spatial size for one dimension.
int conv_out_size(int in, int kernel, int stride, int padding);

/// input [N,Ci,H,W], weight [Co,Ci/groups,K,K], bias [Co] (may be empty).
/// Returns [N,Co,Ho,Wo].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor input;   // dL/dinput, same shape as input
  Tensor weight;  // dL/dweight
  Tensor bias;    // dL/dbias ([Co]; empty if no bias)
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec);

/// Max pooling, input [N,C,H,W]. Also returns argmax indices for backward.
struct MaxPoolResult {
  Tensor output;
  std::vector<std::int64_t> argmax;  // flat input index chosen per output cell
};
MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride);
Tensor maxpool2d_backward(const Tensor& input, const MaxPoolResult& fwd,
                          const Tensor& grad_out);

/// Average pooling over kernel x kernel windows.
Tensor avgpool2d(const Tensor& input, int kernel, int stride);
Tensor avgpool2d_backward(const Tensor& input, int kernel, int stride,
                          const Tensor& grad_out);

/// Global average pooling: [N,C,H,W] -> [N,C].
Tensor global_avgpool(const Tensor& input);
Tensor global_avgpool_backward(const Tensor& input, const Tensor& grad_out);

/// Row-wise softmax of a [N,D] tensor (numerically stable).
Tensor softmax_rows(const Tensor& logits);

/// Naive single-threaded loop-nest kernels implementing the same
/// element-wise accumulation spec as the blocked kernels above. They are the
/// executable definition of the determinism contract: the `ctest -L kernel`
/// parity suite asserts the blocked kernels are bit-identical to these for
/// randomized shapes, and they serve as the committed-baseline workload of
/// the kernel perf benches.
namespace reference {
Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_tn(const Tensor& a, const Tensor& b);
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec);
Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec);
}  // namespace reference

}  // namespace cadmc::tensor
