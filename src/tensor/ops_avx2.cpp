// Vectorized fp32 fast-mode kernels (AVX2 + FMA). This translation unit is
// the only one compiled with -mavx2 -mfma (see src/CMakeLists.txt), so every
// function here must stay behind the vec::available() runtime gate — on a
// CPU without AVX2 the dispatcher in ops.cpp never calls in.
//
// Numerical contract: fp32 accumulation, one 8-lane FMA per (element, k)
// term, k ascending — the same operand order as the deterministic kernels
// with the double accumulator narrowed to float. Each output element is
// produced by exactly one caller task, so fast-mode results are bitwise
// invariant to thread count even though they differ from tensor::reference
// by rounding (bounded by the tolerance suite in kernel_test).
//
// The kNR(=8)-column B-panel maps directly onto one ymm register column:
// the micro-kernel holds 4 C-rows x 8 C-columns in four accumulators and
// broadcasts one A element per row per k step.
#include "tensor/ops_vector.h"

#include <stdexcept>

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "tensor/scratch.h"

namespace cadmc::tensor::vec {

bool compiled() { return true; }

bool cpu_supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool available() { return cpu_supported(); }

namespace {

using detail::kNR;

// Full-width panels start 64-byte aligned (ScratchArena::kAlignment) and
// every row is kNR floats = 32 bytes, so aligned loads are safe.
inline __m256 panel_row(const float* panel, int kk) {
  return _mm256_load_ps(panel + static_cast<std::ptrdiff_t>(kk) * kNR);
}

// C[i..i+4)[j0..j0+8): four row accumulators against one packed panel.
void micro_4x8(const float* __restrict a, int lda,
               const float* __restrict panel, int k, const float* row_init,
               int i, float* __restrict c, int ldc, int j0) {
  const float* __restrict a0 = a + static_cast<std::ptrdiff_t>(i) * lda;
  const float* __restrict a1 = a0 + lda;
  const float* __restrict a2 = a1 + lda;
  const float* __restrict a3 = a2 + lda;
  __m256 acc0 = row_init ? _mm256_set1_ps(row_init[i]) : _mm256_setzero_ps();
  __m256 acc1 =
      row_init ? _mm256_set1_ps(row_init[i + 1]) : _mm256_setzero_ps();
  __m256 acc2 =
      row_init ? _mm256_set1_ps(row_init[i + 2]) : _mm256_setzero_ps();
  __m256 acc3 =
      row_init ? _mm256_set1_ps(row_init[i + 3]) : _mm256_setzero_ps();
  for (int kk = 0; kk < k; ++kk) {
    const __m256 bv = panel_row(panel, kk);
    acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]), bv, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[kk]), bv, acc1);
    acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[kk]), bv, acc2);
    acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[kk]), bv, acc3);
  }
  float* crow = c + static_cast<std::ptrdiff_t>(i) * ldc + j0;
  _mm256_storeu_ps(crow, acc0);
  _mm256_storeu_ps(crow + ldc, acc1);
  _mm256_storeu_ps(crow + 2 * static_cast<std::ptrdiff_t>(ldc), acc2);
  _mm256_storeu_ps(crow + 3 * static_cast<std::ptrdiff_t>(ldc), acc3);
}

// One C-row against a full kNR panel.
void micro_1x8(const float* __restrict arow, const float* __restrict panel,
               int k, float init, float* __restrict crow) {
  __m256 acc = _mm256_set1_ps(init);
  for (int kk = 0; kk < k; ++kk)
    acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]), panel_row(panel, kk), acc);
  _mm256_storeu_ps(crow, acc);
}

// Ragged panel tail (jw < kNR): scalar fp32 in the same element order.
void micro_tail(const float* __restrict arow, const float* __restrict panel,
                int k, int jw, float init, float* __restrict crow) {
  float acc[kNR];
  for (int jj = 0; jj < jw; ++jj) acc[jj] = init;
  for (int kk = 0; kk < k; ++kk) {
    const float av = arow[kk];
    const float* __restrict brow =
        panel + static_cast<std::ptrdiff_t>(kk) * jw;
    for (int jj = 0; jj < jw; ++jj) acc[jj] += av * brow[jj];
  }
  for (int jj = 0; jj < jw; ++jj) crow[jj] = acc[jj];
}

}  // namespace

void gemm_columns_f32(const float* a, int lda, const float* b, int ldb,
                      detail::BLayout layout, int m, int k,
                      const float* row_init, float* c, int ldc, int jbegin,
                      int jend) {
  ScratchArena& arena = ScratchArena::local();
  if (m >= detail::kPackMinRows) {
    for (int j0 = jbegin; j0 < jend; j0 += kNR) {
      const int jw = std::min(kNR, jend - j0);
      const auto panel = arena.floats(
          ScratchArena::kPanel, static_cast<std::size_t>(k) * jw);
      if (layout == detail::BLayout::kRowMajorKN)
        detail::pack_panel_kn(b, ldb, k, j0, jw, panel.data());
      else
        detail::pack_panel_nk(b, ldb, k, j0, jw, panel.data());
      if (jw == kNR) {
        int i = 0;
        for (; i + 4 <= m; i += 4)
          micro_4x8(a, lda, panel.data(), k, row_init, i, c, ldc, j0);
        for (; i < m; ++i)
          micro_1x8(a + static_cast<std::ptrdiff_t>(i) * lda, panel.data(), k,
                    row_init ? row_init[i] : 0.0f,
                    c + static_cast<std::ptrdiff_t>(i) * ldc + j0);
      } else {
        for (int i = 0; i < m; ++i)
          micro_tail(a + static_cast<std::ptrdiff_t>(i) * lda, panel.data(),
                     k, jw, row_init ? row_init[i] : 0.0f,
                     c + static_cast<std::ptrdiff_t>(i) * ldc + j0);
      }
    }
    return;
  }
  // Few rows: packing would cost as much as the math. KN streams B rows with
  // in-place FMA on the C row (axpy style); NT rows are contiguous dots.
  const int width = jend - jbegin;
  if (layout == detail::BLayout::kRowMajorKN) {
    for (int i = 0; i < m; ++i) {
      float* __restrict crow =
          c + static_cast<std::ptrdiff_t>(i) * ldc + jbegin;
      const float init = row_init ? row_init[i] : 0.0f;
      for (int jj = 0; jj < width; ++jj) crow[jj] = init;
      const float* __restrict arow = a + static_cast<std::ptrdiff_t>(i) * lda;
      for (int kk = 0; kk < k; ++kk)
        axpy_f32(arow[kk], b + static_cast<std::ptrdiff_t>(kk) * ldb + jbegin,
                 crow, width);
    }
  } else {
    for (int i = 0; i < m; ++i) {
      const float init = row_init ? row_init[i] : 0.0f;
      const float* arow = a + static_cast<std::ptrdiff_t>(i) * lda;
      float* crow = c + static_cast<std::ptrdiff_t>(i) * ldc;
      for (int j = jbegin; j < jend; ++j)
        crow[j] =
            init + dot_f32(arow, b + static_cast<std::ptrdiff_t>(j) * ldb, k);
    }
  }
}

void depthwise_plane_f32(const float* plane, const float* taps, float bias,
                         int h, int w, int ho, int wo, int k, int stride,
                         int padding, float* out) {
  for (int oy = 0; oy < ho; ++oy) {
    float* __restrict orow = out + static_cast<std::ptrdiff_t>(oy) * wo;
    for (int ox = 0; ox < wo; ++ox) orow[ox] = bias;
    for (int ky = 0; ky < k; ++ky) {
      const int iy = oy * stride + ky - padding;
      if (iy < 0 || iy >= h) continue;
      const float* __restrict irow =
          plane + static_cast<std::ptrdiff_t>(iy) * w;
      for (int kx = 0; kx < k; ++kx) {
        const float tap = taps[ky * k + kx];
        if (stride == 1) {
          // Valid output columns: 0 <= ox + kx - padding < w.
          const int lo = std::max(0, padding - kx);
          const int hi = std::min(wo, w - kx + padding);
          const float* __restrict src = irow + kx - padding;
          const __m256 tv = _mm256_set1_ps(tap);
          int ox = lo;
          for (; ox + kNR <= hi; ox += kNR)
            _mm256_storeu_ps(
                orow + ox,
                _mm256_fmadd_ps(tv, _mm256_loadu_ps(src + ox),
                                _mm256_loadu_ps(orow + ox)));
          for (; ox < hi; ++ox) orow[ox] += tap * src[ox];
        } else {
          for (int ox = 0; ox < wo; ++ox) {
            const int ix = ox * stride + kx - padding;
            if (ix >= 0 && ix < w)
              orow[ox] += tap * irow[ix];
          }
        }
      }
    }
  }
}

void axpy_f32(float a, const float* x, float* y, int n) {
  const __m256 av = _mm256_set1_ps(a);
  int j = 0;
  for (; j + kNR <= n; j += kNR)
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + j),
                               _mm256_loadu_ps(y + j)));
  for (; j < n; ++j) y[j] += a * x[j];
}

float dot_f32(const float* x, const float* y, int n) {
  __m256 acc = _mm256_setzero_ps();
  int j = 0;
  for (; j + kNR <= n; j += kNR)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + j), _mm256_loadu_ps(y + j), acc);
  // Fixed-order lane reduction keeps repeated calls bit-identical.
  alignas(32) float lanes[kNR];
  _mm256_store_ps(lanes, acc);
  float total = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) +
                ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
  for (; j < n; ++j) total += x[j] * y[j];
  return total;
}

float sum_f32(const float* x, int n) {
  __m256 acc = _mm256_setzero_ps();
  int j = 0;
  for (; j + kNR <= n; j += kNR)
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + j));
  alignas(32) float lanes[kNR];
  _mm256_store_ps(lanes, acc);
  float total = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) +
                ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
  for (; j < n; ++j) total += x[j];
  return total;
}

void relu_f32(const float* x, float* y, std::int64_t n, float cap) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 capv = _mm256_set1_ps(cap);
  std::int64_t j = 0;
  if (cap > 0.0f) {
    for (; j + kNR <= n; j += kNR)
      _mm256_storeu_ps(
          y + j,
          _mm256_min_ps(_mm256_max_ps(_mm256_loadu_ps(x + j), zero), capv));
    for (; j < n; ++j) y[j] = std::min(std::max(x[j], 0.0f), cap);
  } else {
    for (; j + kNR <= n; j += kNR)
      _mm256_storeu_ps(y + j, _mm256_max_ps(_mm256_loadu_ps(x + j), zero));
    for (; j < n; ++j) y[j] = std::max(x[j], 0.0f);
  }
}

namespace {

// Scalar window scan matching the deterministic first-max-wins contract;
// used for the ragged tail of each vectorized output row.
inline float maxpool_cell(const float* w0, int w, int kernel) {
  float best = w0[0];
  for (int ky = 0; ky < kernel; ++ky)
    for (int kx = 0; kx < kernel; ++kx) {
      const float v = w0[static_cast<std::ptrdiff_t>(ky) * w + kx];
      if (v > best) best = v;
    }
  return best;
}

inline float avgpool_cell(const float* w0, int w, int kernel, float inv) {
  float acc = 0.0f;
  for (int ky = 0; ky < kernel; ++ky)
    for (int kx = 0; kx < kernel; ++kx)
      acc += w0[static_cast<std::ptrdiff_t>(ky) * w + kx];
  return acc * inv;
}

}  // namespace

void maxpool_row_f32(const float* row0, int w, int kernel, int stride, int wo,
                     float* out) {
  // `_mm256_max_ps(candidate, acc)` returns acc on ties and when the
  // candidate is NaN — exactly the scalar `if (v > best)` scan — so the
  // vector path stays bitwise-identical even for ±0.0f and NaN inputs.
  int ox = 0;
  if (stride == 1) {
    for (; ox + kNR <= wo; ox += kNR) {
      const float* base = row0 + ox;
      __m256 acc = _mm256_loadu_ps(base);  // (ky=0, kx=0) seeds the scan
      for (int ky = 0; ky < kernel; ++ky) {
        const float* r = base + static_cast<std::ptrdiff_t>(ky) * w;
        for (int kx = ky == 0 ? 1 : 0; kx < kernel; ++kx)
          acc = _mm256_max_ps(_mm256_loadu_ps(r + kx), acc);
      }
      _mm256_storeu_ps(out + ox, acc);
    }
  } else {
    const __m256i idx = _mm256_setr_epi32(0, stride, 2 * stride, 3 * stride,
                                          4 * stride, 5 * stride, 6 * stride,
                                          7 * stride);
    for (; ox + kNR <= wo; ox += kNR) {
      const float* base = row0 + static_cast<std::ptrdiff_t>(ox) * stride;
      __m256 acc = _mm256_i32gather_ps(base, idx, 4);
      for (int ky = 0; ky < kernel; ++ky) {
        const float* r = base + static_cast<std::ptrdiff_t>(ky) * w;
        for (int kx = ky == 0 ? 1 : 0; kx < kernel; ++kx)
          acc = _mm256_max_ps(_mm256_i32gather_ps(r + kx, idx, 4), acc);
      }
      _mm256_storeu_ps(out + ox, acc);
    }
  }
  for (; ox < wo; ++ox)
    out[ox] = maxpool_cell(row0 + static_cast<std::ptrdiff_t>(ox) * stride, w,
                           kernel);
}

void avgpool_row_f32(const float* row0, int w, int kernel, int stride, int wo,
                     float inv, float* out) {
  const __m256 invv = _mm256_set1_ps(inv);
  int ox = 0;
  if (stride == 1) {
    for (; ox + kNR <= wo; ox += kNR) {
      const float* base = row0 + ox;
      __m256 acc = _mm256_setzero_ps();
      for (int ky = 0; ky < kernel; ++ky) {
        const float* r = base + static_cast<std::ptrdiff_t>(ky) * w;
        for (int kx = 0; kx < kernel; ++kx)
          acc = _mm256_add_ps(acc, _mm256_loadu_ps(r + kx));
      }
      _mm256_storeu_ps(out + ox, _mm256_mul_ps(acc, invv));
    }
  } else {
    const __m256i idx = _mm256_setr_epi32(0, stride, 2 * stride, 3 * stride,
                                          4 * stride, 5 * stride, 6 * stride,
                                          7 * stride);
    for (; ox + kNR <= wo; ox += kNR) {
      const float* base = row0 + static_cast<std::ptrdiff_t>(ox) * stride;
      __m256 acc = _mm256_setzero_ps();
      for (int ky = 0; ky < kernel; ++ky) {
        const float* r = base + static_cast<std::ptrdiff_t>(ky) * w;
        for (int kx = 0; kx < kernel; ++kx)
          acc = _mm256_add_ps(acc, _mm256_i32gather_ps(r + kx, idx, 4));
      }
      _mm256_storeu_ps(out + ox, _mm256_mul_ps(acc, invv));
    }
  }
  for (; ox < wo; ++ox)
    out[ox] = avgpool_cell(row0 + static_cast<std::ptrdiff_t>(ox) * stride, w,
                           kernel, inv);
}

void sgd_update_f32(float* p, const float* g, float* v, std::int64_t n,
                    float lr, float momentum, float weight_decay) {
  const __m256 wdv = _mm256_set1_ps(weight_decay);
  const __m256 mov = _mm256_set1_ps(momentum);
  const __m256 lrv = _mm256_set1_ps(lr);
  std::int64_t j = 0;
  if (v) {
    for (; j + kNR <= n; j += kNR) {
      __m256 pv = _mm256_loadu_ps(p + j);
      const __m256 grad = _mm256_fmadd_ps(wdv, pv, _mm256_loadu_ps(g + j));
      const __m256 vv = _mm256_fmadd_ps(mov, _mm256_loadu_ps(v + j), grad);
      pv = _mm256_fnmadd_ps(lrv, vv, pv);
      _mm256_storeu_ps(v + j, vv);
      _mm256_storeu_ps(p + j, pv);
    }
    for (; j < n; ++j) {
      const float grad = g[j] + weight_decay * p[j];
      v[j] = momentum * v[j] + grad;
      p[j] -= lr * v[j];
    }
  } else {
    for (; j + kNR <= n; j += kNR) {
      __m256 pv = _mm256_loadu_ps(p + j);
      const __m256 grad = _mm256_fmadd_ps(wdv, pv, _mm256_loadu_ps(g + j));
      pv = _mm256_fnmadd_ps(lrv, grad, pv);
      _mm256_storeu_ps(p + j, pv);
    }
    for (; j < n; ++j) {
      const float grad = g[j] + weight_decay * p[j];
      p[j] -= lr * grad;
    }
  }
}

}  // namespace cadmc::tensor::vec

#else  // !(__AVX2__ && __FMA__): stub build for non-x86 or old toolchains.

namespace cadmc::tensor::vec {

namespace {
[[noreturn]] void not_compiled() {
  throw std::logic_error(
      "tensor::vec: vector kernels were not compiled into this build");
}
}  // namespace

bool compiled() { return false; }
bool cpu_supported() { return false; }
bool available() { return false; }

void gemm_columns_f32(const float*, int, const float*, int, detail::BLayout,
                      int, int, const float*, float*, int, int, int) {
  not_compiled();
}

void depthwise_plane_f32(const float*, const float*, float, int, int, int,
                         int, int, int, int, float*) {
  not_compiled();
}

void axpy_f32(float, const float*, float*, int) { not_compiled(); }

float dot_f32(const float*, const float*, int) { not_compiled(); }

float sum_f32(const float*, int) { not_compiled(); }

void relu_f32(const float*, float*, std::int64_t, float) { not_compiled(); }

void maxpool_row_f32(const float*, int, int, int, int, float*) {
  not_compiled();
}

void avgpool_row_f32(const float*, int, int, int, int, float, float*) {
  not_compiled();
}

void sgd_update_f32(float*, const float*, float*, std::int64_t, float, float,
                    float) {
  not_compiled();
}

}  // namespace cadmc::tensor::vec

#endif
