// Internal helpers shared by the blocked kernels (ops.cpp), the vectorized
// fast-mode kernels (ops_avx2.cpp) and the naive reference kernels
// (ops_reference.cpp): argument validation, the derived convolution
// geometry, and the GEMM blocking/panel-layout definitions. Not part of the
// public ops.h surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "tensor/ops.h"

namespace cadmc::tensor::detail {

// --- GEMM blocking parameters, shared by every kernel mode. --------------
inline constexpr int kNR = 8;       // micro-kernel panel width (columns of C)
inline constexpr int kJBlock = 64;  // columns per parallel task (multiple of kNR)
// Rows below this skip panel packing (the pack cost would rival the math).
inline constexpr int kPackMinRows = 4;
// Multiply-adds below this run serially: pool dispatch costs more than it
// saves. The threshold only picks serial-vs-parallel execution — results
// are identical either way (bitwise per mode).
inline constexpr std::int64_t kParallelMinMacc = 1 << 16;

// How B is laid out in memory: kRowMajorKN is B[k][n] (matmul, matmul_tn,
// im2col columns), kRowMajorNK is B[n][k] (matmul_nt).
enum class BLayout { kRowMajorKN, kRowMajorNK };

// panel[kk*jw + jj] = B(kk, j0+jj) for a B[k][ldb] row-major operand.
inline void pack_panel_kn(const float* __restrict src, int ldb, int k, int j0,
                          int jw, float* __restrict dst) {
  for (int kk = 0; kk < k; ++kk) {
    const float* __restrict s =
        src + static_cast<std::ptrdiff_t>(kk) * ldb + j0;
    float* __restrict p = dst + static_cast<std::ptrdiff_t>(kk) * jw;
    for (int jj = 0; jj < jw; ++jj) p[jj] = s[jj];
  }
}

// panel[kk*jw + jj] = B(j0+jj, kk) for a B[n][ldb] row-major operand (NT).
inline void pack_panel_nk(const float* __restrict src, int ldb, int k, int j0,
                          int jw, float* __restrict dst) {
  for (int jj = 0; jj < jw; ++jj) {
    const float* __restrict s =
        src + static_cast<std::ptrdiff_t>(j0 + jj) * ldb;
    for (int kk = 0; kk < k; ++kk)
      dst[static_cast<std::ptrdiff_t>(kk) * jw + jj] = s[kk];
  }
}

inline void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2)
    throw std::invalid_argument(std::string(name) + ": expected rank-2 tensor");
}

/// Derived pooling geometry, validated once per call. Pooling is unpadded,
/// so conv_out_size guarantees every window is fully in-bounds:
/// (ho-1)*stride + kernel - 1 <= h - 1. Kernels rely on this (no edge
/// checks in the window scans).
struct PoolDims {
  int n, c, h, w;  // input [N,C,H,W]
  int ho, wo;      // output spatial dims
};

inline PoolDims check_pool_args(const Tensor& input, int kernel, int stride,
                                const char* name) {
  if (input.rank() != 4)
    throw std::invalid_argument(std::string(name) + ": expected [N,C,H,W]");
  if (kernel <= 0 || stride <= 0)
    throw std::invalid_argument(std::string(name) +
                                ": kernel/stride must be positive");
  PoolDims d;
  d.n = input.dim(0);
  d.c = input.dim(1);
  d.h = input.dim(2);
  d.w = input.dim(3);
  d.ho = conv_out_size(d.h, kernel, stride, 0);
  d.wo = conv_out_size(d.w, kernel, stride, 0);
  if (d.ho <= 0 || d.wo <= 0)
    throw std::invalid_argument(std::string(name) + ": empty output");
  return d;
}

/// Derived convolution geometry, validated once per call.
struct ConvDims {
  int n, ci, h, w;       // input [N,Ci,H,W]
  int co, cig, k;        // weight [Co,Ci/groups,K,K]
  int groups, co_per_g;
  int ho, wo, how;       // output spatial dims, how = ho*wo
  int kk;                // GEMM depth per group: cig*k*k
  bool has_bias;
};

inline ConvDims check_conv_args(const Tensor& input, const Tensor& weight,
                                const Tensor& bias, const Conv2dSpec& spec) {
  if (input.rank() != 4 || weight.rank() != 4)
    throw std::invalid_argument("conv2d: expected rank-4 input and weight");
  ConvDims d;
  d.n = input.dim(0);
  d.ci = input.dim(1);
  d.h = input.dim(2);
  d.w = input.dim(3);
  d.co = weight.dim(0);
  d.cig = weight.dim(1);
  d.k = weight.dim(2);
  if (weight.dim(3) != d.k) throw std::invalid_argument("conv2d: non-square kernel");
  d.groups = spec.groups;
  if (d.ci % d.groups != 0 || d.co % d.groups != 0 || d.ci / d.groups != d.cig)
    throw std::invalid_argument("conv2d: group/channel mismatch");
  d.co_per_g = d.co / d.groups;
  d.has_bias = !bias.empty();
  if (d.has_bias && bias.numel() != d.co)
    throw std::invalid_argument("conv2d: bias size mismatch");
  d.ho = conv_out_size(d.h, d.k, spec.stride, spec.padding);
  d.wo = conv_out_size(d.w, d.k, spec.stride, spec.padding);
  if (d.ho <= 0 || d.wo <= 0) throw std::invalid_argument("conv2d: empty output");
  d.how = d.ho * d.wo;
  d.kk = d.cig * d.k * d.k;
  return d;
}

}  // namespace cadmc::tensor::detail
