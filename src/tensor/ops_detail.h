// Internal helpers shared by the blocked kernels (ops.cpp) and the naive
// reference kernels (ops_reference.cpp): argument validation and the derived
// convolution geometry. Not part of the public ops.h surface.
#pragma once

#include <stdexcept>
#include <string>

#include "tensor/ops.h"

namespace cadmc::tensor::detail {

inline void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2)
    throw std::invalid_argument(std::string(name) + ": expected rank-2 tensor");
}

/// Derived convolution geometry, validated once per call.
struct ConvDims {
  int n, ci, h, w;       // input [N,Ci,H,W]
  int co, cig, k;        // weight [Co,Ci/groups,K,K]
  int groups, co_per_g;
  int ho, wo, how;       // output spatial dims, how = ho*wo
  int kk;                // GEMM depth per group: cig*k*k
  bool has_bias;
};

inline ConvDims check_conv_args(const Tensor& input, const Tensor& weight,
                                const Tensor& bias, const Conv2dSpec& spec) {
  if (input.rank() != 4 || weight.rank() != 4)
    throw std::invalid_argument("conv2d: expected rank-4 input and weight");
  ConvDims d;
  d.n = input.dim(0);
  d.ci = input.dim(1);
  d.h = input.dim(2);
  d.w = input.dim(3);
  d.co = weight.dim(0);
  d.cig = weight.dim(1);
  d.k = weight.dim(2);
  if (weight.dim(3) != d.k) throw std::invalid_argument("conv2d: non-square kernel");
  d.groups = spec.groups;
  if (d.ci % d.groups != 0 || d.co % d.groups != 0 || d.ci / d.groups != d.cig)
    throw std::invalid_argument("conv2d: group/channel mismatch");
  d.co_per_g = d.co / d.groups;
  d.has_bias = !bias.empty();
  if (d.has_bias && bias.numel() != d.co)
    throw std::invalid_argument("conv2d: bias size mismatch");
  d.ho = conv_out_size(d.h, d.k, spec.stride, spec.padding);
  d.wo = conv_out_size(d.w, d.k, spec.stride, spec.padding);
  if (d.ho <= 0 || d.wo <= 0) throw std::invalid_argument("conv2d: empty output");
  d.how = d.ho * d.wo;
  d.kk = d.cig * d.k * d.k;
  return d;
}

}  // namespace cadmc::tensor::detail
