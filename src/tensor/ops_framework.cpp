// Blocked, thread-parallel framework ops: pooling, ReLU activations,
// softmax/cross-entropy/distillation losses, batch normalization, and the
// fused SGD update. These are the non-GEMM stages of the distillation
// training loop — after PR 9 vectorized the conv/GEMM kernels they became
// the top serial bottleneck in `cadmc profile`, so they now run on the same
// kernel infrastructure as the conv family (ops.cpp):
//
//  * util::parallel_for_if fan-out with every output element owned by
//    exactly one task — results are bit-identical for any thread count.
//  * The deterministic mode reproduces tensor::reference bit-for-bit (the
//    reference loop nests in ops_reference.cpp define the operand orders).
//  * kernel_mode() == kFast routes avgpool/global-avgpool rows, relu sweeps
//    and the SGD update to the fp32 vector kernels (ops_avx2.cpp) under the
//    tolerance contract. Maxpool and relu have no accumulation, so their
//    vector paths are bitwise-identical anyway; the loss and batchnorm
//    kernels (and the avgpool backward scatter) are deterministic-only and
//    record note_fast_fallback() so fast-mode profiles can't silently mix
//    modes.
//  * Large temporaries come from the per-thread ScratchArena (softened
//    probability rows, per-row loss subtotals) instead of per-call heap
//    allocations; gradients are written straight into their result tensors.
//  * CADMC_SPAN markers (kernel_pool / kernel_relu / kernel_loss /
//    kernel_batchnorm / kernel_sgd_step) let `cadmc profile` attribute each
//    stage.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/span.h"
#include "tensor/kernel_mode.h"
#include "tensor/ops.h"
#include "tensor/ops_detail.h"
#include "tensor/ops_vector.h"
#include "tensor/scratch.h"
#include "util/thread_pool.h"

namespace cadmc::tensor {

namespace {

using detail::PoolDims;
using detail::kParallelMinMacc;

bool fast_mode() { return kernel_mode() == KernelMode::kFast; }

// Element-wise sweeps (relu, sgd) fan out in fixed blocks so element
// ownership — and therefore rounding — never depends on the thread count.
// A multiple of the 8-lane vector width keeps ragged tails off every block
// but the last.
constexpr std::int64_t kEltBlock = 1 << 15;

// exp/log cost far more than a multiply-add; weight the loss kernels' work
// estimate so realistic batch sizes clear the parallel threshold.
constexpr std::int64_t kExpCost = 16;

std::int64_t blocks_for(std::int64_t n) {
  return (n + kEltBlock - 1) / kEltBlock;
}

}  // namespace

MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride,
                        bool with_argmax) {
  CADMC_SPAN("kernel_pool");
  const PoolDims d = detail::check_pool_args(input, kernel, stride, "maxpool2d");
  MaxPoolResult result;
  result.output = Tensor({d.n, d.c, d.ho, d.wo});
  if (with_argmax)
    result.argmax.resize(static_cast<std::size_t>(result.output.numel()));
  // Max has no rounding, so the vector row kernel is bitwise-identical to
  // the scalar scan; it just can't produce argmax, so training-mode forward
  // (with_argmax) always runs the scalar path. Either way the op is
  // mode-neutral — no fast fallback to record.
  const bool fast = fast_mode() && !with_argmax;
  const float* in = input.data().data();
  float* out = result.output.data().data();
  std::int64_t* am = with_argmax ? result.argmax.data() : nullptr;
  const std::int64_t hw = static_cast<std::int64_t>(d.h) * d.w;
  const std::int64_t how = static_cast<std::int64_t>(d.ho) * d.wo;
  const std::size_t planes = static_cast<std::size_t>(d.n) * d.c;
  const bool parallel =
      planes > 1 && static_cast<std::int64_t>(planes) * how * kernel * kernel >=
                        kParallelMinMacc;
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    const float* __restrict pl = in + static_cast<std::int64_t>(t) * hw;
    float* __restrict op = out + static_cast<std::int64_t>(t) * how;
    if (fast) {
      for (int oy = 0; oy < d.ho; ++oy)
        vec::maxpool_row_f32(
            pl + static_cast<std::ptrdiff_t>(oy) * stride * d.w, d.w, kernel,
            stride, d.wo, op + static_cast<std::ptrdiff_t>(oy) * d.wo);
      return;
    }
    const std::int64_t plane_base = static_cast<std::int64_t>(t) * hw;
    for (int oy = 0; oy < d.ho; ++oy)
      for (int ox = 0; ox < d.wo; ++ox) {
        const std::int64_t win =
            static_cast<std::int64_t>(oy) * stride * d.w + ox * stride;
        const float* __restrict w0 = pl + win;
        float best = w0[0];
        std::int64_t best_off = 0;
        for (int ky = 0; ky < kernel; ++ky)
          for (int kx = 0; kx < kernel; ++kx) {
            const float v = w0[static_cast<std::ptrdiff_t>(ky) * d.w + kx];
            if (v > best) {
              best = v;
              best_off = static_cast<std::int64_t>(ky) * d.w + kx;
            }
          }
        op[static_cast<std::ptrdiff_t>(oy) * d.wo + ox] = best;
        if (am)
          am[static_cast<std::int64_t>(t) * how +
             static_cast<std::int64_t>(oy) * d.wo + ox] =
              plane_base + win + best_off;
      }
  });
  return result;
}

Tensor maxpool2d_backward(const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_out) {
  CADMC_SPAN("kernel_pool");
  if (argmax.size() != static_cast<std::size_t>(grad_out.numel()))
    throw std::invalid_argument("maxpool2d_backward: argmax/grad size mismatch");
  if (grad_out.rank() != 4 || input_shape.size() != 4)
    throw std::invalid_argument("maxpool2d_backward: expected [N,C,H,W]");
  Tensor grad_in(input_shape);
  float* __restrict gi = grad_in.data().data();
  const float* __restrict go = grad_out.data().data();
  const std::int64_t how =
      static_cast<std::int64_t>(grad_out.dim(2)) * grad_out.dim(3);
  const std::size_t planes =
      static_cast<std::size_t>(grad_out.dim(0)) * grad_out.dim(1);
  // Every argmax index lives inside its own (b, c) plane, so plane tasks
  // scatter into disjoint ranges; within a plane the adds run in the same
  // (oy, ox) ascending order as the reference loop.
  const bool parallel = planes > 1 && grad_out.numel() >= kParallelMinMacc;
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    const std::int64_t lo = static_cast<std::int64_t>(t) * how;
    for (std::int64_t i = lo; i < lo + how; ++i)
      gi[argmax[static_cast<std::size_t>(i)]] += go[i];
  });
  return grad_in;
}

Tensor avgpool2d(const Tensor& input, int kernel, int stride) {
  CADMC_SPAN("kernel_pool");
  const PoolDims d = detail::check_pool_args(input, kernel, stride, "avgpool2d");
  Tensor out({d.n, d.c, d.ho, d.wo});
  const bool fast = fast_mode();
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  const float* in = input.data().data();
  float* op = out.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(d.h) * d.w;
  const std::int64_t how = static_cast<std::int64_t>(d.ho) * d.wo;
  const std::size_t planes = static_cast<std::size_t>(d.n) * d.c;
  const bool parallel =
      planes > 1 && static_cast<std::int64_t>(planes) * how * kernel * kernel >=
                        kParallelMinMacc;
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    const float* __restrict pl = in + static_cast<std::int64_t>(t) * hw;
    float* __restrict o = op + static_cast<std::int64_t>(t) * how;
    if (fast) {
      for (int oy = 0; oy < d.ho; ++oy)
        vec::avgpool_row_f32(
            pl + static_cast<std::ptrdiff_t>(oy) * stride * d.w, d.w, kernel,
            stride, d.wo, inv, o + static_cast<std::ptrdiff_t>(oy) * d.wo);
      return;
    }
    for (int oy = 0; oy < d.ho; ++oy)
      for (int ox = 0; ox < d.wo; ++ox) {
        const float* __restrict w0 =
            pl + static_cast<std::int64_t>(oy) * stride * d.w + ox * stride;
        double acc = 0.0;
        for (int ky = 0; ky < kernel; ++ky)
          for (int kx = 0; kx < kernel; ++kx)
            acc += w0[static_cast<std::ptrdiff_t>(ky) * d.w + kx];
        o[static_cast<std::ptrdiff_t>(oy) * d.wo + ox] =
            static_cast<float>(acc) * inv;
      }
  });
  return out;
}

Tensor avgpool2d_backward(const Shape& input_shape, int kernel, int stride,
                          const Tensor& grad_out) {
  CADMC_SPAN("kernel_pool");
  if (grad_out.rank() != 4 || input_shape.size() != 4)
    throw std::invalid_argument("avgpool2d_backward: expected [N,C,H,W]");
  if (fast_mode()) note_fast_fallback("avgpool2d_backward");
  Tensor grad_in(input_shape);
  const int h = input_shape[2], w = input_shape[3];
  const int ho = grad_out.dim(2), wo = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  float* gi = grad_in.data().data();
  const float* go = grad_out.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::int64_t how = static_cast<std::int64_t>(ho) * wo;
  const std::size_t planes =
      static_cast<std::size_t>(grad_out.dim(0)) * grad_out.dim(1);
  // Overlapping windows (kernel > stride) scatter several adds into one
  // input cell; plane tasks keep the scatter order (oy, ox, ky, kx)
  // ascending within each disjoint plane, matching the reference bitwise.
  const bool parallel =
      planes > 1 && static_cast<std::int64_t>(planes) * how * kernel * kernel >=
                        kParallelMinMacc;
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    float* __restrict gp = gi + static_cast<std::int64_t>(t) * hw;
    const float* __restrict gop = go + static_cast<std::int64_t>(t) * how;
    for (int oy = 0; oy < ho; ++oy)
      for (int ox = 0; ox < wo; ++ox) {
        const float g = gop[static_cast<std::ptrdiff_t>(oy) * wo + ox] * inv;
        float* __restrict w0 =
            gp + static_cast<std::int64_t>(oy) * stride * w + ox * stride;
        for (int ky = 0; ky < kernel; ++ky)
          for (int kx = 0; kx < kernel; ++kx)
            w0[static_cast<std::ptrdiff_t>(ky) * w + kx] += g;
      }
  });
  return grad_in;
}

Tensor global_avgpool(const Tensor& input) {
  CADMC_SPAN("kernel_pool");
  if (input.rank() != 4)
    throw std::invalid_argument("global_avgpool: expected [N,C,H,W]");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  Tensor out({n, c});
  const bool fast = fast_mode();
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* in = input.data().data();
  float* op = out.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::size_t planes = static_cast<std::size_t>(n) * c;
  const bool parallel = planes > 1 && input.numel() >= kParallelMinMacc;
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    const float* __restrict pl = in + static_cast<std::int64_t>(t) * hw;
    if (fast) {
      op[t] = vec::sum_f32(pl, static_cast<int>(hw)) * inv;
      return;
    }
    double acc = 0.0;
    for (std::int64_t i = 0; i < hw; ++i) acc += pl[i];
    op[t] = static_cast<float>(acc) * inv;
  });
  return out;
}

Tensor global_avgpool_backward(const Shape& input_shape,
                               const Tensor& grad_out) {
  CADMC_SPAN("kernel_pool");
  if (input_shape.size() != 4)
    throw std::invalid_argument("global_avgpool_backward: expected [N,C,H,W]");
  Tensor grad_in(input_shape);
  const int h = input_shape[2], w = input_shape[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  float* gi = grad_in.data().data();
  const float* go = grad_out.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::size_t planes = static_cast<std::size_t>(grad_out.numel());
  const bool parallel = planes > 1 && grad_in.numel() >= kParallelMinMacc;
  util::parallel_for_if(parallel, planes, [&](std::size_t t) {
    float* __restrict gp = gi + static_cast<std::int64_t>(t) * hw;
    const float g = go[t] * inv;  // one float multiply — exact in every mode
    std::fill(gp, gp + hw, g);
  });
  return grad_in;
}

Tensor relu(const Tensor& input, float cap) {
  CADMC_SPAN("kernel_relu");
  Tensor out(input.shape());
  const bool fast = fast_mode();  // exact either way; vector path for speed
  const float* in = input.data().data();
  float* op = out.data().data();
  const std::int64_t n = input.numel();
  const std::int64_t blocks = blocks_for(n);
  const bool parallel = blocks > 1 && n >= kParallelMinMacc;
  util::parallel_for_if(
      parallel, static_cast<std::size_t>(blocks), [&](std::size_t t) {
        const std::int64_t lo = static_cast<std::int64_t>(t) * kEltBlock;
        const std::int64_t len = std::min(kEltBlock, n - lo);
        if (fast) {
          vec::relu_f32(in + lo, op + lo, len, cap);
          return;
        }
        for (std::int64_t i = lo; i < lo + len; ++i) {
          float v = in[i];
          if (v < 0.0f) v = 0.0f;
          if (cap > 0.0f && v > cap) v = cap;
          op[i] = v;
        }
      });
  return out;
}

Tensor relu_backward(const Tensor& input, const Tensor& grad_out, float cap) {
  CADMC_SPAN("kernel_relu");
  if (input.numel() != grad_out.numel())
    throw std::invalid_argument("relu_backward: shape mismatch");
  Tensor grad_in(grad_out.shape());
  const float* in = input.data().data();
  const float* go = grad_out.data().data();
  float* gi = grad_in.data().data();
  const std::int64_t n = grad_out.numel();
  const std::int64_t blocks = blocks_for(n);
  const bool parallel = blocks > 1 && n >= kParallelMinMacc;
  // Pure mask selection — exact in every mode, nothing to vectorize by hand
  // (the compiler turns the branchless select into vector code).
  util::parallel_for_if(
      parallel, static_cast<std::size_t>(blocks), [&](std::size_t t) {
        const std::int64_t lo = static_cast<std::int64_t>(t) * kEltBlock;
        const std::int64_t len = std::min(kEltBlock, n - lo);
        for (std::int64_t i = lo; i < lo + len; ++i) {
          const float x = in[i];
          const bool pass = x > 0.0f && (cap <= 0.0f || x < cap);
          gi[i] = pass ? go[i] : 0.0f;
        }
      });
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  CADMC_SPAN("kernel_loss");
  detail::check_rank2(logits, "softmax_rows");
  if (fast_mode()) note_fast_fallback("softmax_rows");
  const int n = logits.dim(0), d = logits.dim(1);
  Tensor out(logits.shape());
  const float* in = logits.data().data();
  float* op = out.data().data();
  const bool parallel =
      n > 1 &&
      static_cast<std::int64_t>(n) * d * kExpCost >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(n),
                        [&](std::size_t i) {
    const float* __restrict x = in + static_cast<std::ptrdiff_t>(i) * d;
    float* __restrict o = op + static_cast<std::ptrdiff_t>(i) * d;
    float mx = x[0];
    for (int j = 1; j < d; ++j) mx = std::max(mx, x[j]);
    double denom = 0.0;
    for (int j = 0; j < d; ++j)
      denom += std::exp(static_cast<double>(x[j]) - mx);
    for (int j = 0; j < d; ++j)
      o[j] = static_cast<float>(std::exp(static_cast<double>(x[j]) - mx) /
                                denom);
  });
  return out;
}

RowLossResult softmax_xent_rows(const Tensor& logits,
                                const std::vector<int>& labels) {
  CADMC_SPAN("kernel_loss");
  detail::check_rank2(logits, "softmax_xent_rows");
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n)
    throw std::invalid_argument("softmax_xent_rows: label count mismatch");
  for (int i = 0; i < n; ++i)
    if (labels[static_cast<std::size_t>(i)] < 0 ||
        labels[static_cast<std::size_t>(i)] >= c)
      throw std::invalid_argument("softmax_xent_rows: bad label");
  if (fast_mode()) note_fast_fallback("softmax_xent_rows");
  RowLossResult result;
  result.grad = Tensor({n, c});
  const float invn = 1.0f / static_cast<float>(n);
  const float* in = logits.data().data();
  float* gp = result.grad.data().data();
  // Caller-thread scratch; each row task writes exactly its own element and
  // the serial row-order sum below makes the loss thread-count invariant.
  const auto row_loss = ScratchArena::local().doubles(
      ScratchArena::kRowStat, static_cast<std::size_t>(n));
  const bool parallel =
      n > 1 &&
      static_cast<std::int64_t>(n) * c * kExpCost >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(n),
                        [&](std::size_t i) {
    const float* __restrict x = in + static_cast<std::ptrdiff_t>(i) * c;
    float* __restrict g = gp + static_cast<std::ptrdiff_t>(i) * c;
    float mx = x[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, x[j]);
    double denom = 0.0;
    for (int j = 0; j < c; ++j)
      denom += std::exp(static_cast<double>(x[j]) - mx);
    for (int j = 0; j < c; ++j)
      g[j] = static_cast<float>(std::exp(static_cast<double>(x[j]) - mx) /
                                denom);
    const int y = labels[i];
    row_loss[i] =
        -std::log(std::max(1e-12, static_cast<double>(g[y])));
    g[y] -= 1.0f;
    for (int j = 0; j < c; ++j) g[j] *= invn;
  });
  double loss = 0.0;
  for (int i = 0; i < n; ++i) loss += row_loss[static_cast<std::size_t>(i)];
  result.loss = loss / n;
  return result;
}

RowLossResult kd_softmax_rows(const Tensor& student_logits,
                              const Tensor& teacher_logits,
                              double temperature) {
  CADMC_SPAN("kernel_loss");
  detail::check_rank2(student_logits, "kd_softmax_rows student");
  detail::check_rank2(teacher_logits, "kd_softmax_rows teacher");
  const int n = student_logits.dim(0), c = student_logits.dim(1);
  if (teacher_logits.dim(0) != n || teacher_logits.dim(1) != c)
    throw std::invalid_argument("kd_softmax_rows: shape mismatch");
  if (fast_mode()) note_fast_fallback("kd_softmax_rows");
  const float inv_t = static_cast<float>(1.0 / temperature);
  const float invn = 1.0f / static_cast<float>(n);
  RowLossResult result;
  result.grad = Tensor({n, c});
  const float* sp = student_logits.data().data();
  const float* tp = teacher_logits.data().data();
  float* gp = result.grad.data().data();
  const auto row_loss = ScratchArena::local().doubles(
      ScratchArena::kRowStat, static_cast<std::size_t>(n));
  const bool parallel =
      n > 1 &&
      static_cast<std::int64_t>(n) * c * 2 * kExpCost >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(n),
                        [&](std::size_t i) {
    // Softened softmax into `dst`: scale by 1/T (float), then the standard
    // max-shifted double-denominator softmax — identical per-element ops to
    // softmax_rows over a pre-scaled tensor, with the [N,C] temporaries
    // replaced by one worker-local scratch row.
    const auto soften = [c, inv_t](const float* __restrict src,
                                   float* __restrict dst) {
      for (int j = 0; j < c; ++j) dst[j] = src[j] * inv_t;
      float mx = dst[0];
      for (int j = 1; j < c; ++j) mx = std::max(mx, dst[j]);
      double denom = 0.0;
      for (int j = 0; j < c; ++j)
        denom += std::exp(static_cast<double>(dst[j]) - mx);
      for (int j = 0; j < c; ++j)
        dst[j] = static_cast<float>(
            std::exp(static_cast<double>(dst[j]) - mx) / denom);
    };
    float* __restrict g = gp + static_cast<std::ptrdiff_t>(i) * c;
    const auto p_row = ScratchArena::local().floats(
        ScratchArena::kLossRow, static_cast<std::size_t>(c));
    soften(sp + static_cast<std::ptrdiff_t>(i) * c, g);  // q_T into grad row
    soften(tp + static_cast<std::ptrdiff_t>(i) * c, p_row.data());
    double row = 0.0;
    for (int j = 0; j < c; ++j) {
      const float qf = g[j], pf = p_row[static_cast<std::size_t>(j)];
      const double pij = pf;
      const double qij = std::max(1e-12, static_cast<double>(qf));
      if (pij > 1e-12) row += pij * std::log(pij / qij);
      g[j] = static_cast<float>(temperature * (qf - pf));
      g[j] *= invn;
    }
    row_loss[i] = row;
  });
  double loss = 0.0;
  for (int i = 0; i < n; ++i) loss += row_loss[static_cast<std::size_t>(i)];
  result.loss = loss * temperature * temperature / n;
  return result;
}

BatchNorm2dFwd batchnorm2d_train(const Tensor& input, const Tensor& gamma,
                                 const Tensor& beta, float eps) {
  CADMC_SPAN("kernel_batchnorm");
  if (input.rank() != 4)
    throw std::invalid_argument("batchnorm2d_train: expected [N,C,H,W]");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  if (gamma.numel() != c || beta.numel() != c)
    throw std::invalid_argument("batchnorm2d_train: gamma/beta size mismatch");
  const std::int64_t per_channel = static_cast<std::int64_t>(n) * h * w;
  if (fast_mode()) note_fast_fallback("batchnorm2d_train");
  BatchNorm2dFwd fwd;
  fwd.output = Tensor(input.shape());
  fwd.norm = Tensor(input.shape());
  fwd.mean.assign(static_cast<std::size_t>(c), 0.0f);
  fwd.var.assign(static_cast<std::size_t>(c), 0.0f);
  fwd.inv_std.assign(static_cast<std::size_t>(c), 0.0f);
  const float* in = input.data().data();
  const float* ga = gamma.data().data();
  const float* be = beta.data().data();
  float* op = fwd.output.data().data();
  float* np = fwd.norm.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::int64_t cstride = static_cast<std::int64_t>(c) * hw;
  const bool parallel = c > 1 && input.numel() * 2 >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(c),
                        [&](std::size_t ch) {
    double mean = 0.0;
    for (int b = 0; b < n; ++b) {
      const float* __restrict pl = in + b * cstride + ch * hw;
      for (std::int64_t i = 0; i < hw; ++i) mean += pl[i];
    }
    mean /= static_cast<double>(per_channel);
    double var = 0.0;
    for (int b = 0; b < n; ++b) {
      const float* __restrict pl = in + b * cstride + ch * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double d = pl[i] - mean;
        var += d * d;
      }
    }
    var /= static_cast<double>(per_channel);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    fwd.mean[ch] = static_cast<float>(mean);
    fwd.var[ch] = static_cast<float>(var);
    fwd.inv_std[ch] = inv_std;
    const float mf = static_cast<float>(mean);
    const float gf = ga[ch], bf = be[ch];
    for (int b = 0; b < n; ++b) {
      const float* __restrict pl = in + b * cstride + ch * hw;
      float* __restrict no = np + b * cstride + ch * hw;
      float* __restrict oo = op + b * cstride + ch * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float norm = (pl[i] - mf) * inv_std;
        no[i] = norm;
        oo[i] = gf * norm + bf;
      }
    }
  });
  return fwd;
}

Tensor batchnorm2d_infer(const Tensor& input, const Tensor& gamma,
                         const Tensor& beta, const Tensor& running_mean,
                         const Tensor& running_var, float eps) {
  CADMC_SPAN("kernel_batchnorm");
  if (input.rank() != 4)
    throw std::invalid_argument("batchnorm2d_infer: expected [N,C,H,W]");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  if (fast_mode()) note_fast_fallback("batchnorm2d_infer");
  Tensor out(input.shape());
  const float* in = input.data().data();
  const float* ga = gamma.data().data();
  const float* be = beta.data().data();
  const float* rm = running_mean.data().data();
  const float* rv = running_var.data().data();
  float* op = out.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::int64_t cstride = static_cast<std::int64_t>(c) * hw;
  const bool parallel = c > 1 && input.numel() >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(c),
                        [&](std::size_t ch) {
    const float inv_std = 1.0f / std::sqrt(rv[ch] + eps);
    const float gf = ga[ch], bf = be[ch], mf = rm[ch];
    for (int b = 0; b < n; ++b) {
      const float* __restrict pl = in + b * cstride + ch * hw;
      float* __restrict oo = op + b * cstride + ch * hw;
      for (std::int64_t i = 0; i < hw; ++i)
        oo[i] = gf * (pl[i] - mf) * inv_std + bf;
    }
  });
  return out;
}

BatchNorm2dGrads batchnorm2d_backward(const Tensor& grad_out,
                                      const Tensor& norm, const Tensor& gamma,
                                      const std::vector<float>& inv_std) {
  CADMC_SPAN("kernel_batchnorm");
  if (grad_out.rank() != 4)
    throw std::invalid_argument("batchnorm2d_backward: expected [N,C,H,W]");
  const int n = grad_out.dim(0), c = grad_out.dim(1), h = grad_out.dim(2),
            w = grad_out.dim(3);
  if (norm.numel() != grad_out.numel() ||
      inv_std.size() != static_cast<std::size_t>(c))
    throw std::invalid_argument("batchnorm2d_backward: cache mismatch");
  const double m = static_cast<double>(n) * h * w;
  if (fast_mode()) note_fast_fallback("batchnorm2d_backward");
  BatchNorm2dGrads grads;
  grads.input = Tensor(grad_out.shape());
  grads.gamma = Tensor({c});
  grads.beta = Tensor({c});
  const float* go = grad_out.data().data();
  const float* np = norm.data().data();
  const float* ga = gamma.data().data();
  float* gi = grads.input.data().data();
  float* gg = grads.gamma.data().data();
  float* gb = grads.beta.data().data();
  const std::int64_t hw = static_cast<std::int64_t>(h) * w;
  const std::int64_t cstride = static_cast<std::int64_t>(c) * hw;
  const bool parallel = c > 1 && grad_out.numel() * 2 >= kParallelMinMacc;
  util::parallel_for_if(parallel, static_cast<std::size_t>(c),
                        [&](std::size_t ch) {
    double sum_dy = 0.0, sum_dy_norm = 0.0;
    for (int b = 0; b < n; ++b) {
      const float* __restrict gp = go + b * cstride + ch * hw;
      const float* __restrict nm = np + b * cstride + ch * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double dy = gp[i];
        sum_dy += dy;
        sum_dy_norm += dy * nm[i];
      }
    }
    gg[ch] = static_cast<float>(sum_dy_norm);
    gb[ch] = static_cast<float>(sum_dy);
    const double g = ga[ch];
    const double is = inv_std[ch];
    for (int b = 0; b < n; ++b) {
      const float* __restrict gp = go + b * cstride + ch * hw;
      const float* __restrict nm = np + b * cstride + ch * hw;
      float* __restrict gip = gi + b * cstride + ch * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const double dy = gp[i];
        gip[i] = static_cast<float>(
            g * is * (dy - sum_dy / m - nm[i] * sum_dy_norm / m));
      }
    }
  });
  return grads;
}

void sgd_update(std::span<float> param, std::span<const float> grad,
                std::span<float> velocity, float lr, float momentum,
                float weight_decay) {
  CADMC_SPAN("kernel_sgd_step");
  if (grad.size() != param.size() ||
      (!velocity.empty() && velocity.size() != param.size()))
    throw std::invalid_argument("sgd_update: size mismatch");
  const bool fast = fast_mode();
  float* p = param.data();
  const float* g = grad.data();
  float* v = velocity.empty() ? nullptr : velocity.data();
  const std::int64_t n = static_cast<std::int64_t>(param.size());
  const std::int64_t blocks = blocks_for(n);
  const bool parallel = blocks > 1 && n >= kParallelMinMacc;
  util::parallel_for_if(
      parallel, static_cast<std::size_t>(blocks), [&](std::size_t t) {
        const std::int64_t lo = static_cast<std::int64_t>(t) * kEltBlock;
        const std::int64_t len = std::min(kEltBlock, n - lo);
        if (fast) {
          vec::sgd_update_f32(p + lo, g + lo, v ? v + lo : nullptr, len, lr,
                              momentum, weight_decay);
          return;
        }
        if (v) {
          for (std::int64_t j = lo; j < lo + len; ++j) {
            const float gj = g[j] + weight_decay * p[j];
            v[j] = momentum * v[j] + gj;
            p[j] -= lr * v[j];
          }
        } else {
          for (std::int64_t j = lo; j < lo + len; ++j) {
            const float gj = g[j] + weight_decay * p[j];
            p[j] -= lr * gj;
          }
        }
      });
}

}  // namespace cadmc::tensor
