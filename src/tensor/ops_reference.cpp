// Naive reference kernels. These loop nests are the executable spec of the
// accumulation contract in ops.h: one double accumulator per output element,
// a fixed operand order, one final rounding to float. The blocked kernels in
// ops.cpp must stay bit-identical to these — tests/kernel_test.cpp
// (`ctest -L kernel`) fuzzes shapes/strides/padding/groups against them.
//
// Operand orders (per output element):
//   matmul family     k ascending.
//   conv2d forward    bias as initial value, then (icg, ky, kx) ascending;
//                     zero-padded taps contribute explicit +0.0 terms.
//   conv2d backward   dbias[oc]:   (b, oy, ox) ascending over grad_out.
//                     dweight:     (b, oy, ox) ascending; padded taps again
//                                  contribute 0.0 terms.
//                     dinput:      (ky, kx) ascending; each valid tap adds a
//                                  double subtotal over the group's output
//                                  channels (oc ascending) — the subtotal
//                                  mirrors the blocked path's dcol element,
//                                  which is also held in double.
#include "tensor/ops.h"
#include "tensor/ops_detail.h"

namespace cadmc::tensor::reference {

using detail::ConvDims;

Tensor matmul(const Tensor& a, const Tensor& b) {
  detail::check_rank2(a, "matmul a");
  detail::check_rank2(b, "matmul b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(pa[i * k + kk]) * pb[kk * n + j];
      pc[static_cast<std::ptrdiff_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  detail::check_rank2(a, "matmul_tn a");
  detail::check_rank2(b, "matmul_tn b");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(pa[kk * m + i]) * pb[kk * n + j];
      pc[static_cast<std::ptrdiff_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  detail::check_rank2(a, "matmul_nt a");
  detail::check_rank2(b, "matmul_nt b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(pa[i * k + kk]) * pb[j * k + kk];
      pc[static_cast<std::ptrdiff_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec) {
  const ConvDims d = detail::check_conv_args(input, weight, bias, spec);
  Tensor out({d.n, d.co, d.ho, d.wo});
  for (int b = 0; b < d.n; ++b) {
    for (int oc = 0; oc < d.co; ++oc) {
      const int g = oc / d.co_per_g;
      for (int oy = 0; oy < d.ho; ++oy) {
        for (int ox = 0; ox < d.wo; ++ox) {
          double acc = d.has_bias ? bias.at(oc) : 0.0;
          for (int icg = 0; icg < d.cig; ++icg) {
            const int ic = g * d.cig + icg;
            for (int ky = 0; ky < d.k; ++ky) {
              const int iy = oy * spec.stride + ky - spec.padding;
              for (int kx = 0; kx < d.k; ++kx) {
                const int ix = ox * spec.stride + kx - spec.padding;
                const float v = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                    ? input(b, ic, iy, ix)
                                    : 0.0f;
                acc += static_cast<double>(v) * weight(oc, icg, ky, kx);
              }
            }
          }
          out(b, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec) {
  const ConvDims d =
      detail::check_conv_args(input, weight, has_bias ? Tensor({weight.dim(0)})
                                                      : Tensor(), spec);
  Conv2dGrads grads;
  grads.input = Tensor(input.shape());
  grads.weight = Tensor(weight.shape());
  if (has_bias) grads.bias = Tensor({d.co});

  // dbias[oc] = sum over (b, oy, ox) of grad_out.
  if (has_bias) {
    for (int oc = 0; oc < d.co; ++oc) {
      double acc = 0.0;
      for (int b = 0; b < d.n; ++b)
        for (int oy = 0; oy < d.ho; ++oy)
          for (int ox = 0; ox < d.wo; ++ox) acc += grad_out(b, oc, oy, ox);
      grads.bias.at(oc) = static_cast<float>(acc);
    }
  }

  // dweight[oc,icg,ky,kx] = sum over (b, oy, ox) of go * padded input tap.
  for (int oc = 0; oc < d.co; ++oc) {
    const int g = oc / d.co_per_g;
    for (int icg = 0; icg < d.cig; ++icg) {
      const int ic = g * d.cig + icg;
      for (int ky = 0; ky < d.k; ++ky)
        for (int kx = 0; kx < d.k; ++kx) {
          double acc = 0.0;
          for (int b = 0; b < d.n; ++b)
            for (int oy = 0; oy < d.ho; ++oy)
              for (int ox = 0; ox < d.wo; ++ox) {
                const int iy = oy * spec.stride + ky - spec.padding;
                const int ix = ox * spec.stride + kx - spec.padding;
                const float v = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                    ? input(b, ic, iy, ix)
                                    : 0.0f;
                acc += static_cast<double>(grad_out(b, oc, oy, ox)) * v;
              }
          grads.weight(oc, icg, ky, kx) = static_cast<float>(acc);
        }
    }
  }

  // dinput[b,ic,iy,ix] = sum over (ky, kx) of the group-channel subtotal.
  for (int b = 0; b < d.n; ++b) {
    for (int ic = 0; ic < d.ci; ++ic) {
      const int g = ic / d.cig;
      const int icg = ic % d.cig;
      for (int iy = 0; iy < d.h; ++iy)
        for (int ix = 0; ix < d.w; ++ix) {
          double acc = 0.0;
          for (int ky = 0; ky < d.k; ++ky) {
            const int oy_num = iy + spec.padding - ky;
            if (oy_num < 0 || oy_num % spec.stride != 0) continue;
            const int oy = oy_num / spec.stride;
            if (oy >= d.ho) continue;
            for (int kx = 0; kx < d.k; ++kx) {
              const int ox_num = ix + spec.padding - kx;
              if (ox_num < 0 || ox_num % spec.stride != 0) continue;
              const int ox = ox_num / spec.stride;
              if (ox >= d.wo) continue;
              double sub = 0.0;
              for (int ocg = 0; ocg < d.co_per_g; ++ocg) {
                const int oc = g * d.co_per_g + ocg;
                sub += static_cast<double>(weight(oc, icg, ky, kx)) *
                       grad_out(b, oc, oy, ox);
              }
              acc += sub;
            }
          }
          grads.input(b, ic, iy, ix) = static_cast<float>(acc);
        }
    }
  }
  return grads;
}

}  // namespace cadmc::tensor::reference
