// Naive reference kernels. These loop nests are the executable spec of the
// accumulation contract in ops.h: one double accumulator per output element,
// a fixed operand order, one final rounding to float. The blocked kernels in
// ops.cpp must stay bit-identical to these — tests/kernel_test.cpp
// (`ctest -L kernel`) fuzzes shapes/strides/padding/groups against them.
//
// Operand orders (per output element):
//   matmul family     k ascending.
//   conv2d forward    bias as initial value, then (icg, ky, kx) ascending;
//                     zero-padded taps contribute explicit +0.0 terms.
//   conv2d backward   dbias[oc]:   (b, oy, ox) ascending over grad_out.
//                     dweight:     (b, oy, ox) ascending; padded taps again
//                                  contribute 0.0 terms.
//                     dinput:      (ky, kx) ascending; each valid tap adds a
//                                  double subtotal over the group's output
//                                  channels (oc ascending) — the subtotal
//                                  mirrors the blocked path's dcol element,
//                                  which is also held in double.
//
// Framework ops (per output element):
//   maxpool2d         strictly-greater scan over (ky, kx) ascending; the
//                     FIRST maximum wins — the single-owner contract the
//                     backward pass routes each gradient by. Max has no
//                     rounding, so every mode is bitwise-identical here.
//   avgpool2d         double sum over (ky, kx) ascending, rounded to float
//                     once, then multiplied by the float 1/(k*k).
//   avgpool backward  scatter of grad*inv over (oy, ox, ky, kx) ascending
//                     within each (b, c) plane (float adds).
//   softmax family    per row: float max scan (j ascending), double
//                     denominator sum (j ascending), each probability
//                     rounded to float independently. Loss terms are per-row
//                     double subtotals summed in row order.
//   batchnorm         per channel: double mean/var/backward sums over
//                     (b, y, x) ascending; normalization in float.
//   sgd_update        per element: g' = g + wd*p; v = m*v + g'; p -= lr*v —
//                     separate float ops (the TU builds with
//                     -ffp-contract=off, so nothing fuses).
#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "tensor/ops_detail.h"

namespace cadmc::tensor::reference {

using detail::ConvDims;
using detail::PoolDims;

Tensor matmul(const Tensor& a, const Tensor& b) {
  detail::check_rank2(a, "matmul a");
  detail::check_rank2(b, "matmul b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(pa[i * k + kk]) * pb[kk * n + j];
      pc[static_cast<std::ptrdiff_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  detail::check_rank2(a, "matmul_tn a");
  detail::check_rank2(b, "matmul_tn b");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(pa[kk * m + i]) * pb[kk * n + j];
      pc[static_cast<std::ptrdiff_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  detail::check_rank2(a, "matmul_nt a");
  detail::check_rank2(b, "matmul_nt b");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk)
        acc += static_cast<double>(pa[i * k + kk]) * pb[j * k + kk];
      pc[static_cast<std::ptrdiff_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dSpec& spec) {
  const ConvDims d = detail::check_conv_args(input, weight, bias, spec);
  Tensor out({d.n, d.co, d.ho, d.wo});
  for (int b = 0; b < d.n; ++b) {
    for (int oc = 0; oc < d.co; ++oc) {
      const int g = oc / d.co_per_g;
      for (int oy = 0; oy < d.ho; ++oy) {
        for (int ox = 0; ox < d.wo; ++ox) {
          double acc = d.has_bias ? bias.at(oc) : 0.0;
          for (int icg = 0; icg < d.cig; ++icg) {
            const int ic = g * d.cig + icg;
            for (int ky = 0; ky < d.k; ++ky) {
              const int iy = oy * spec.stride + ky - spec.padding;
              for (int kx = 0; kx < d.k; ++kx) {
                const int ix = ox * spec.stride + kx - spec.padding;
                const float v = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                    ? input(b, ic, iy, ix)
                                    : 0.0f;
                acc += static_cast<double>(v) * weight(oc, icg, ky, kx);
              }
            }
          }
          out(b, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_out,
                            const Conv2dSpec& spec) {
  const ConvDims d =
      detail::check_conv_args(input, weight, has_bias ? Tensor({weight.dim(0)})
                                                      : Tensor(), spec);
  Conv2dGrads grads;
  grads.input = Tensor(input.shape());
  grads.weight = Tensor(weight.shape());
  if (has_bias) grads.bias = Tensor({d.co});

  // dbias[oc] = sum over (b, oy, ox) of grad_out.
  if (has_bias) {
    for (int oc = 0; oc < d.co; ++oc) {
      double acc = 0.0;
      for (int b = 0; b < d.n; ++b)
        for (int oy = 0; oy < d.ho; ++oy)
          for (int ox = 0; ox < d.wo; ++ox) acc += grad_out(b, oc, oy, ox);
      grads.bias.at(oc) = static_cast<float>(acc);
    }
  }

  // dweight[oc,icg,ky,kx] = sum over (b, oy, ox) of go * padded input tap.
  for (int oc = 0; oc < d.co; ++oc) {
    const int g = oc / d.co_per_g;
    for (int icg = 0; icg < d.cig; ++icg) {
      const int ic = g * d.cig + icg;
      for (int ky = 0; ky < d.k; ++ky)
        for (int kx = 0; kx < d.k; ++kx) {
          double acc = 0.0;
          for (int b = 0; b < d.n; ++b)
            for (int oy = 0; oy < d.ho; ++oy)
              for (int ox = 0; ox < d.wo; ++ox) {
                const int iy = oy * spec.stride + ky - spec.padding;
                const int ix = ox * spec.stride + kx - spec.padding;
                const float v = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                    ? input(b, ic, iy, ix)
                                    : 0.0f;
                acc += static_cast<double>(grad_out(b, oc, oy, ox)) * v;
              }
          grads.weight(oc, icg, ky, kx) = static_cast<float>(acc);
        }
    }
  }

  // dinput[b,ic,iy,ix] = sum over (ky, kx) of the group-channel subtotal.
  for (int b = 0; b < d.n; ++b) {
    for (int ic = 0; ic < d.ci; ++ic) {
      const int g = ic / d.cig;
      const int icg = ic % d.cig;
      for (int iy = 0; iy < d.h; ++iy)
        for (int ix = 0; ix < d.w; ++ix) {
          double acc = 0.0;
          for (int ky = 0; ky < d.k; ++ky) {
            const int oy_num = iy + spec.padding - ky;
            if (oy_num < 0 || oy_num % spec.stride != 0) continue;
            const int oy = oy_num / spec.stride;
            if (oy >= d.ho) continue;
            for (int kx = 0; kx < d.k; ++kx) {
              const int ox_num = ix + spec.padding - kx;
              if (ox_num < 0 || ox_num % spec.stride != 0) continue;
              const int ox = ox_num / spec.stride;
              if (ox >= d.wo) continue;
              double sub = 0.0;
              for (int ocg = 0; ocg < d.co_per_g; ++ocg) {
                const int oc = g * d.co_per_g + ocg;
                sub += static_cast<double>(weight(oc, icg, ky, kx)) *
                       grad_out(b, oc, oy, ox);
              }
              acc += sub;
            }
          }
          grads.input(b, ic, iy, ix) = static_cast<float>(acc);
        }
    }
  }
  return grads;
}

MaxPoolResult maxpool2d(const Tensor& input, int kernel, int stride) {
  const PoolDims d = detail::check_pool_args(input, kernel, stride, "maxpool2d");
  MaxPoolResult result;
  result.output = Tensor({d.n, d.c, d.ho, d.wo});
  result.argmax.resize(static_cast<std::size_t>(result.output.numel()));
  std::int64_t out_idx = 0;
  for (int b = 0; b < d.n; ++b)
    for (int ch = 0; ch < d.c; ++ch)
      for (int oy = 0; oy < d.ho; ++oy)
        for (int ox = 0; ox < d.wo; ++ox) {
          const std::int64_t base =
              ((static_cast<std::int64_t>(b) * d.c + ch) * d.h + oy * stride) *
                  d.w +
              ox * stride;
          float best = input.at(base);
          std::int64_t best_idx = base;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx) {
              const std::int64_t flat =
                  base + static_cast<std::int64_t>(ky) * d.w + kx;
              const float v = input.at(flat);
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          result.output.at(out_idx) = best;
          result.argmax[static_cast<std::size_t>(out_idx)] = best_idx;
          ++out_idx;
        }
  return result;
}

Tensor maxpool2d_backward(const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_out) {
  if (argmax.size() != static_cast<std::size_t>(grad_out.numel()))
    throw std::invalid_argument("maxpool2d_backward: argmax/grad size mismatch");
  Tensor grad_in(input_shape);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    grad_in.at(argmax[static_cast<std::size_t>(i)]) += grad_out.at(i);
  return grad_in;
}

Tensor avgpool2d(const Tensor& input, int kernel, int stride) {
  const PoolDims d = detail::check_pool_args(input, kernel, stride, "avgpool2d");
  Tensor out({d.n, d.c, d.ho, d.wo});
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int b = 0; b < d.n; ++b)
    for (int ch = 0; ch < d.c; ++ch)
      for (int oy = 0; oy < d.ho; ++oy)
        for (int ox = 0; ox < d.wo; ++ox) {
          double acc = 0.0;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx)
              acc += input(b, ch, oy * stride + ky, ox * stride + kx);
          out(b, ch, oy, ox) = static_cast<float>(acc) * inv;
        }
  return out;
}

Tensor avgpool2d_backward(const Shape& input_shape, int kernel, int stride,
                          const Tensor& grad_out) {
  Tensor grad_in(input_shape);
  const int ho = grad_out.dim(2), wo = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int b = 0; b < grad_out.dim(0); ++b)
    for (int ch = 0; ch < grad_out.dim(1); ++ch)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          const float g = grad_out(b, ch, oy, ox) * inv;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx)
              grad_in(b, ch, oy * stride + ky, ox * stride + kx) += g;
        }
  return grad_in;
}

Tensor global_avgpool(const Tensor& input) {
  if (input.rank() != 4)
    throw std::invalid_argument("global_avgpool: expected [N,C,H,W]");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) acc += input(b, ch, y, x);
      out(b, ch) = static_cast<float>(acc) * inv;
    }
  return out;
}

Tensor global_avgpool_backward(const Shape& input_shape,
                               const Tensor& grad_out) {
  Tensor grad_in(input_shape);
  const int n = input_shape[0], c = input_shape[1], h = input_shape[2],
            w = input_shape[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out(b, ch) * inv;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) grad_in(b, ch, y, x) = g;
    }
  return grad_in;
}

Tensor relu(const Tensor& input, float cap) {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    float v = out.at(i);
    if (v < 0.0f) v = 0.0f;
    if (cap > 0.0f && v > cap) v = cap;
    out.at(i) = v;
  }
  return out;
}

Tensor relu_backward(const Tensor& input, const Tensor& grad_out, float cap) {
  if (input.numel() != grad_out.numel())
    throw std::invalid_argument("relu_backward: shape mismatch");
  Tensor grad_in = grad_out;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    const float x = input.at(i);
    const bool pass = x > 0.0f && (cap <= 0.0f || x < cap);
    if (!pass) grad_in.at(i) = 0.0f;
  }
  return grad_in;
}

Tensor softmax_rows(const Tensor& logits) {
  detail::check_rank2(logits, "softmax_rows");
  const int n = logits.dim(0), d = logits.dim(1);
  Tensor out(logits.shape());
  for (int i = 0; i < n; ++i) {
    float mx = logits(i, 0);
    for (int j = 1; j < d; ++j) mx = std::max(mx, logits(i, j));
    double denom = 0.0;
    for (int j = 0; j < d; ++j)
      denom += std::exp(static_cast<double>(logits(i, j)) - mx);
    for (int j = 0; j < d; ++j)
      out(i, j) = static_cast<float>(
          std::exp(static_cast<double>(logits(i, j)) - mx) / denom);
  }
  return out;
}

RowLossResult softmax_xent_rows(const Tensor& logits,
                                const std::vector<int>& labels) {
  detail::check_rank2(logits, "softmax_xent_rows");
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n)
    throw std::invalid_argument("softmax_xent_rows: label count mismatch");
  for (int i = 0; i < n; ++i)
    if (labels[static_cast<std::size_t>(i)] < 0 ||
        labels[static_cast<std::size_t>(i)] >= c)
      throw std::invalid_argument("softmax_xent_rows: bad label");
  RowLossResult result;
  result.grad = Tensor({n, c});
  const float invn = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    float mx = logits(i, 0);
    for (int j = 1; j < c; ++j) mx = std::max(mx, logits(i, j));
    double denom = 0.0;
    for (int j = 0; j < c; ++j)
      denom += std::exp(static_cast<double>(logits(i, j)) - mx);
    for (int j = 0; j < c; ++j)
      result.grad(i, j) = static_cast<float>(
          std::exp(static_cast<double>(logits(i, j)) - mx) / denom);
    const int y = labels[static_cast<std::size_t>(i)];
    loss -= std::log(
        std::max(1e-12, static_cast<double>(result.grad(i, y))));
    result.grad(i, y) -= 1.0f;
    for (int j = 0; j < c; ++j) result.grad(i, j) *= invn;
  }
  result.loss = loss / n;
  return result;
}

RowLossResult kd_softmax_rows(const Tensor& student_logits,
                              const Tensor& teacher_logits,
                              double temperature) {
  detail::check_rank2(student_logits, "kd_softmax_rows student");
  detail::check_rank2(teacher_logits, "kd_softmax_rows teacher");
  const int n = student_logits.dim(0), c = student_logits.dim(1);
  if (teacher_logits.dim(0) != n || teacher_logits.dim(1) != c)
    throw std::invalid_argument("kd_softmax_rows: shape mismatch");
  const float inv_t = static_cast<float>(1.0 / temperature);
  const float invn = 1.0f / static_cast<float>(n);
  RowLossResult result;
  result.grad = Tensor({n, c});
  std::vector<float> q(static_cast<std::size_t>(c));
  std::vector<float> p(static_cast<std::size_t>(c));
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto soften = [&](const Tensor& logits, std::vector<float>& out) {
      for (int j = 0; j < c; ++j)
        out[static_cast<std::size_t>(j)] = logits(i, j) * inv_t;
      float mx = out[0];
      for (int j = 1; j < c; ++j)
        mx = std::max(mx, out[static_cast<std::size_t>(j)]);
      double denom = 0.0;
      for (int j = 0; j < c; ++j)
        denom += std::exp(
            static_cast<double>(out[static_cast<std::size_t>(j)]) - mx);
      for (int j = 0; j < c; ++j)
        out[static_cast<std::size_t>(j)] = static_cast<float>(
            std::exp(static_cast<double>(out[static_cast<std::size_t>(j)]) -
                     mx) /
            denom);
    };
    soften(student_logits, q);
    soften(teacher_logits, p);
    double row = 0.0;
    for (int j = 0; j < c; ++j) {
      const double pij = p[static_cast<std::size_t>(j)];
      const double qij =
          std::max(1e-12, static_cast<double>(q[static_cast<std::size_t>(j)]));
      if (pij > 1e-12) row += pij * std::log(pij / qij);
      result.grad(i, j) = static_cast<float>(
          temperature *
          (q[static_cast<std::size_t>(j)] - p[static_cast<std::size_t>(j)]));
      result.grad(i, j) *= invn;
    }
    loss += row;
  }
  result.loss = loss * temperature * temperature / n;
  return result;
}

BatchNorm2dFwd batchnorm2d_train(const Tensor& input, const Tensor& gamma,
                                 const Tensor& beta, float eps) {
  if (input.rank() != 4)
    throw std::invalid_argument("batchnorm2d_train: expected [N,C,H,W]");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  if (gamma.numel() != c || beta.numel() != c)
    throw std::invalid_argument("batchnorm2d_train: gamma/beta size mismatch");
  const std::int64_t per_channel = static_cast<std::int64_t>(n) * h * w;
  BatchNorm2dFwd fwd;
  fwd.output = Tensor(input.shape());
  fwd.norm = Tensor(input.shape());
  fwd.mean.assign(static_cast<std::size_t>(c), 0.0f);
  fwd.var.assign(static_cast<std::size_t>(c), 0.0f);
  fwd.inv_std.assign(static_cast<std::size_t>(c), 0.0f);
  for (int ch = 0; ch < c; ++ch) {
    double mean = 0.0;
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) mean += input(b, ch, y, x);
    mean /= static_cast<double>(per_channel);
    double var = 0.0;
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          const double d = input(b, ch, y, x) - mean;
          var += d * d;
        }
    var /= static_cast<double>(per_channel);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps));
    fwd.mean[static_cast<std::size_t>(ch)] = static_cast<float>(mean);
    fwd.var[static_cast<std::size_t>(ch)] = static_cast<float>(var);
    fwd.inv_std[static_cast<std::size_t>(ch)] = inv_std;
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          const float norm =
              (input(b, ch, y, x) - static_cast<float>(mean)) * inv_std;
          fwd.norm(b, ch, y, x) = norm;
          fwd.output(b, ch, y, x) = gamma.at(ch) * norm + beta.at(ch);
        }
  }
  return fwd;
}

Tensor batchnorm2d_infer(const Tensor& input, const Tensor& gamma,
                         const Tensor& beta, const Tensor& running_mean,
                         const Tensor& running_var, float eps) {
  if (input.rank() != 4)
    throw std::invalid_argument("batchnorm2d_infer: expected [N,C,H,W]");
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  Tensor out(input.shape());
  for (int ch = 0; ch < c; ++ch) {
    const float inv_std = 1.0f / std::sqrt(running_var.at(ch) + eps);
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
          out(b, ch, y, x) =
              gamma.at(ch) * (input(b, ch, y, x) - running_mean.at(ch)) *
                  inv_std +
              beta.at(ch);
  }
  return out;
}

BatchNorm2dGrads batchnorm2d_backward(const Tensor& grad_out,
                                      const Tensor& norm, const Tensor& gamma,
                                      const std::vector<float>& inv_std) {
  if (grad_out.rank() != 4)
    throw std::invalid_argument("batchnorm2d_backward: expected [N,C,H,W]");
  const int n = grad_out.dim(0), c = grad_out.dim(1), h = grad_out.dim(2),
            w = grad_out.dim(3);
  const double m = static_cast<double>(n) * h * w;
  BatchNorm2dGrads grads;
  grads.input = Tensor(grad_out.shape());
  grads.gamma = Tensor({c});
  grads.beta = Tensor({c});
  for (int ch = 0; ch < c; ++ch) {
    double sum_dy = 0.0, sum_dy_norm = 0.0;
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          const double dy = grad_out(b, ch, y, x);
          sum_dy += dy;
          sum_dy_norm += dy * norm(b, ch, y, x);
        }
    grads.gamma.at(ch) = static_cast<float>(sum_dy_norm);
    grads.beta.at(ch) = static_cast<float>(sum_dy);
    const double g = gamma.at(ch);
    const double is = inv_std[static_cast<std::size_t>(ch)];
    for (int b = 0; b < n; ++b)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
          const double dy = grad_out(b, ch, y, x);
          const double nm = norm(b, ch, y, x);
          grads.input(b, ch, y, x) = static_cast<float>(
              g * is * (dy - sum_dy / m - nm * sum_dy_norm / m));
        }
  }
  return grads;
}

void sgd_update(std::span<float> param, std::span<const float> grad,
                std::span<float> velocity, float lr, float momentum,
                float weight_decay) {
  if (grad.size() != param.size() ||
      (!velocity.empty() && velocity.size() != param.size()))
    throw std::invalid_argument("sgd_update: size mismatch");
  const std::size_t n = param.size();
  if (!velocity.empty()) {
    for (std::size_t j = 0; j < n; ++j) {
      const float g = grad[j] + weight_decay * param[j];
      velocity[j] = momentum * velocity[j] + g;
      param[j] -= lr * velocity[j];
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      const float g = grad[j] + weight_decay * param[j];
      param[j] -= lr * g;
    }
  }
}

}  // namespace cadmc::tensor::reference
