// Internal entry points of the vectorized fp32 fast-mode kernels
// (ops_avx2.cpp, compiled with -mavx2 -mfma when the toolchain supports
// them). Not part of the public ops.h surface — dispatch happens inside
// ops.cpp, gated on tensor::kernel_mode() == KernelMode::kFast, which in
// turn folds in vec::available().
//
// Contract (weaker than the deterministic kernels, still strict):
//  * fp32 accumulation with 8-lane FMA; validated against tensor::reference
//    by tolerance (tensor/compare.h), not bitwise.
//  * Every output element is still produced by exactly one caller task in a
//    fixed operand order, so results are bit-identical across thread counts
//    and across repeated runs on the same machine — only the deterministic
//    mode's cross-mode bitwise guarantee is relaxed.
//  * The callable functions below must only run when available() is true;
//    the non-AVX2 build stubs throw std::logic_error if reached.
#pragma once

#include "tensor/ops_detail.h"

namespace cadmc::tensor::vec {

/// True when this translation unit was compiled with AVX2+FMA codegen.
bool compiled();

/// True when the running CPU reports AVX2 and FMA (cpuid).
bool cpu_supported();

/// compiled() && cpu_supported().
bool available();

/// Fast-mode analogue of the scalar gemm_columns: computes
/// C[i][jbegin..jend) for every row i with fp32 FMA accumulation,
/// k ascending. `row_init` may be null (zero init) or m per-row initial
/// values (conv bias). Packs B-panels from this thread's ScratchArena; safe
/// to run inside one parallel task (touches only its own columns).
void gemm_columns_f32(const float* a, int lda, const float* b, int ldb,
                      detail::BLayout layout, int m, int k,
                      const float* row_init, float* c, int ldc, int jbegin,
                      int jend);

/// One depthwise-convolution output plane (single batch, single channel):
/// out[ho*wo] from plane[h*w] and the channel's k*k taps, (ky,kx) ascending
/// fp32 accumulation with `bias` as the initial value. Stride-1 interiors
/// run 8-wide FMA rows; boundaries and strided cases fall back to scalar
/// fp32 within the same element order.
void depthwise_plane_f32(const float* plane, const float* taps, float bias,
                         int h, int w, int ho, int wo, int k, int stride,
                         int padding, float* out);

/// y[j] += a * x[j] for j in [0, n) — the conv-backward dcol update.
void axpy_f32(float a, const float* x, float* y, int n);

/// Sum_j x[j]*y[j] with 8-lane FMA partials reduced in a fixed lane order —
/// the conv-backward dweight row dot.
float dot_f32(const float* x, const float* y, int n);

}  // namespace cadmc::tensor::vec
