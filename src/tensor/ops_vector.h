// Internal entry points of the vectorized fp32 fast-mode kernels
// (ops_avx2.cpp, compiled with -mavx2 -mfma when the toolchain supports
// them). Not part of the public ops.h surface — dispatch happens inside
// ops.cpp, gated on tensor::kernel_mode() == KernelMode::kFast, which in
// turn folds in vec::available().
//
// Contract (weaker than the deterministic kernels, still strict):
//  * fp32 accumulation with 8-lane FMA; validated against tensor::reference
//    by tolerance (tensor/compare.h), not bitwise.
//  * Every output element is still produced by exactly one caller task in a
//    fixed operand order, so results are bit-identical across thread counts
//    and across repeated runs on the same machine — only the deterministic
//    mode's cross-mode bitwise guarantee is relaxed.
//  * The callable functions below must only run when available() is true;
//    the non-AVX2 build stubs throw std::logic_error if reached.
#pragma once

#include "tensor/ops_detail.h"

namespace cadmc::tensor::vec {

/// True when this translation unit was compiled with AVX2+FMA codegen.
bool compiled();

/// True when the running CPU reports AVX2 and FMA (cpuid).
bool cpu_supported();

/// compiled() && cpu_supported().
bool available();

/// Fast-mode analogue of the scalar gemm_columns: computes
/// C[i][jbegin..jend) for every row i with fp32 FMA accumulation,
/// k ascending. `row_init` may be null (zero init) or m per-row initial
/// values (conv bias). Packs B-panels from this thread's ScratchArena; safe
/// to run inside one parallel task (touches only its own columns).
void gemm_columns_f32(const float* a, int lda, const float* b, int ldb,
                      detail::BLayout layout, int m, int k,
                      const float* row_init, float* c, int ldc, int jbegin,
                      int jend);

/// One depthwise-convolution output plane (single batch, single channel):
/// out[ho*wo] from plane[h*w] and the channel's k*k taps, (ky,kx) ascending
/// fp32 accumulation with `bias` as the initial value. Stride-1 interiors
/// run 8-wide FMA rows; boundaries and strided cases fall back to scalar
/// fp32 within the same element order.
void depthwise_plane_f32(const float* plane, const float* taps, float bias,
                         int h, int w, int ho, int wo, int k, int stride,
                         int padding, float* out);

/// y[j] += a * x[j] for j in [0, n) — the conv-backward dcol update.
void axpy_f32(float a, const float* x, float* y, int n);

/// Sum_j x[j]*y[j] with 8-lane FMA partials reduced in a fixed lane order —
/// the conv-backward dweight row dot.
float dot_f32(const float* x, const float* y, int n);

/// Sum of x[0..n) with 8-lane partials reduced in a fixed lane order — the
/// global_avgpool fp32 fast path.
float sum_f32(const float* x, int n);

/// y[j] = clamp(x[j]) where clamp is max(., 0) and, when cap > 0,
/// min(., cap). Exact (no accumulation) — bitwise-identical to the scalar
/// path; vectorized purely for speed.
void relu_f32(const float* x, float* y, std::int64_t n, float cap);

/// One maxpool output row: out[ox] = max over (ky, kx) ascending of
/// row0[ky*w + ox*stride + kx], for ox in [0, wo). Windows must be fully
/// in-bounds (pooling is unpadded). The max combine keeps the FIRST operand
/// on ties (including -0.0f vs +0.0f) and propagates an earlier NaN exactly
/// like the scalar strictly-greater scan, so the output values are
/// bitwise-identical to the deterministic kernel.
void maxpool_row_f32(const float* row0, int w, int kernel, int stride, int wo,
                     float* out);

/// One avgpool output row: out[ox] = (fp32 sum over (ky, kx) ascending of
/// row0[ky*w + ox*stride + kx]) * inv. Tolerance contract (the
/// deterministic kernel sums in double).
void avgpool_row_f32(const float* row0, int w, int kernel, int stride, int wo,
                     float inv, float* out);

/// Fused SGD update sweep over n elements:
///   grad = fma(weight_decay, p[j], g[j])
///   v[j] = fma(momentum, v[j], grad)        (when v != nullptr)
///   p[j] = fnma(lr, v[j] | grad, p[j])
/// Pass v == nullptr for plain SGD. Tolerance contract vs the unfused
/// scalar reference (FMA rounds once where the scalar path rounds twice).
void sgd_update_f32(float* p, const float* g, float* v, std::int64_t n,
                    float lr, float momentum, float weight_decay);

}  // namespace cadmc::tensor::vec
