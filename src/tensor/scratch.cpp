#include "tensor/scratch.h"

#include "obs/metrics.h"

namespace cadmc::tensor {

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

template <typename T>
std::span<T> ScratchArena::grab(std::vector<T>& buf, std::size_t n) {
  if (obs::enabled()) {  // pre-check: skips the metric-name std::string too
    if (buf.capacity() >= n) {
      obs::count("cadmc.kernel.arena.reuse_hits");
    } else {
      obs::count("cadmc.kernel.arena.grows");
      obs::count("cadmc.kernel.arena.grow_bytes",
                 static_cast<std::int64_t>((n - buf.capacity()) * sizeof(T)));
    }
  }
  // resize (not assign): contents are documented as unspecified, so the
  // existing prefix need not be cleared — reuse stays O(1).
  if (buf.size() < n) buf.resize(n);
  return std::span<T>(buf.data(), n);
}

std::span<float> ScratchArena::floats(Slot slot, std::size_t n) {
  return grab(float_slots_[slot], n);
}

std::span<double> ScratchArena::doubles(Slot slot, std::size_t n) {
  return grab(double_slots_[slot], n);
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (int s = 0; s < kSlotCount; ++s) {
    total += float_slots_[s].capacity() * sizeof(float);
    total += double_slots_[s].capacity() * sizeof(double);
  }
  return total;
}

void ScratchArena::release() {
  // `buf = {}` would pick the initializer_list assignment, which keeps
  // capacity; swapping with a fresh vector actually drops the storage.
  for (int s = 0; s < kSlotCount; ++s) {
    std::vector<float>().swap(float_slots_[s]);
    std::vector<double>().swap(double_slots_[s]);
  }
}

}  // namespace cadmc::tensor
