#include "tensor/scratch.h"

#include <new>

#include "obs/metrics.h"

namespace cadmc::tensor {

namespace {

void free_aligned(std::byte* p) {
  ::operator delete[](p, std::align_val_t{ScratchArena::kAlignment});
}

std::byte* alloc_aligned(std::size_t bytes) {
  return static_cast<std::byte*>(
      ::operator new[](bytes, std::align_val_t{ScratchArena::kAlignment}));
}

}  // namespace

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

ScratchArena::~ScratchArena() { release(); }

std::span<std::byte> ScratchArena::grab(Buffer& buf, std::size_t bytes,
                                        std::size_t elem_size) {
  if (obs::enabled()) {  // pre-check: skips the metric-name std::string too
    if (buf.bytes >= bytes) {
      obs::count("cadmc.kernel.arena.reuse_hits");
    } else {
      obs::count("cadmc.kernel.arena.grows");
      obs::count("cadmc.kernel.arena.grow_bytes",
                 static_cast<std::int64_t>(bytes - buf.bytes));
    }
  }
  if (buf.bytes < bytes) {
    // Contents are documented as unspecified, so growth swaps rather than
    // copies; rounding the capacity up to a whole alignment unit keeps every
    // vectorized tail load inside the allocation.
    const std::size_t rounded =
        (bytes + kAlignment - 1) / kAlignment * kAlignment;
    std::byte* fresh = alloc_aligned(rounded);
    free_aligned(buf.data);
    buf.data = fresh;
    buf.bytes = rounded;
  }
  (void)elem_size;
  return std::span<std::byte>(buf.data, bytes);
}

std::span<float> ScratchArena::floats(Slot slot, std::size_t n) {
  const auto raw = grab(float_slots_[slot], n * sizeof(float), sizeof(float));
  return std::span<float>(reinterpret_cast<float*>(raw.data()), n);
}

std::span<double> ScratchArena::doubles(Slot slot, std::size_t n) {
  const auto raw =
      grab(double_slots_[slot], n * sizeof(double), sizeof(double));
  return std::span<double>(reinterpret_cast<double*>(raw.data()), n);
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (int s = 0; s < kSlotCount; ++s)
    total += float_slots_[s].bytes + double_slots_[s].bytes;
  return total;
}

void ScratchArena::release() {
  for (int s = 0; s < kSlotCount; ++s) {
    free_aligned(float_slots_[s].data);
    float_slots_[s] = Buffer{};
    free_aligned(double_slots_[s].data);
    double_slots_[s] = Buffer{};
  }
}

}  // namespace cadmc::tensor
