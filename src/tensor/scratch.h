// Per-thread scratch memory for kernel temporaries: im2col matrices, packed
// GEMM panels, and the column-gradient buffer of the conv backward pass.
// Buffers are grow-only and slot-based, so a kernel can hold several live
// scratch spans at once (each slot is backed by its own allocation —
// requesting one slot never invalidates a span taken from another) and
// repeated kernel calls reuse the high-water-mark allocation instead of
// paying a fresh heap round-trip per forward/backward.
//
// Every buffer starts at a kAlignment (64-byte) boundary: one full cache
// line, and twice the 32-byte AVX2 vector width, so the fast-mode kernels
// can use aligned vector loads on packed panels (a kNR=8-float panel row
// stride is exactly 32 bytes from an aligned base) and no im2col/panel
// access ever needs an unaligned-fallback path.
//
// Lifetime rules:
//  * ScratchArena::local() returns this thread's arena; spans taken from it
//    are valid until the same (slot, type) pair is requested again on the
//    same thread, and must never be handed to another thread for writing —
//    with one narrow exception: a caller-thread span may be written by
//    parallel_for workers when every task writes a disjoint,
//    caller-assigned element range (the per-row loss subtotals in kRowStat;
//    no two tasks ever touch the same element, and the caller only reads
//    the span back after the fan-out joins).
//  * Kernels that share a scratch buffer across util::parallel_for tasks
//    (e.g. the im2col matrix read by every GEMM task) allocate it from the
//    *calling* thread's arena before the fan-out, and workers only read it.
//  * Worker-private temporaries (packed panels, dcol, softened probability
//    rows) come from the worker's own thread-local arena inside the task
//    body.
//
// Observability: cadmc.kernel.arena.reuse_hits counts requests served from
// existing capacity, cadmc.kernel.arena.grows / grow_bytes count the
// (amortised-away) allocations.
#pragma once

#include <cstddef>
#include <span>

namespace cadmc::tensor {

class ScratchArena {
 public:
  /// Every span handed out starts at this alignment (bytes).
  static constexpr std::size_t kAlignment = 64;

  /// One id per concurrently-live buffer a kernel needs.
  enum Slot {
    kIm2col = 0,  // im2col matrix shared across GEMM tasks (caller thread)
    kPanel,       // packed B-panel of the GEMM micro-kernel (worker thread)
    kPackA,       // packed/transposed A operand (matmul_tn)
    kColGrad,     // dcol buffer in conv2d_backward (double deterministic,
                  // float fast mode — the two element types never alias)
    kLossRow,     // softened probability rows of the loss kernels (worker
                  // thread, float)
    kRowStat,     // per-row loss subtotals (double, caller thread; workers
                  // write disjoint caller-assigned elements — see the
                  // lifetime-rule exception above)
    kSlotCount
  };

  /// This thread's arena (thread_local, created on first use).
  static ScratchArena& local();

  /// A span of `n` floats backed by `slot`, 64-byte aligned. Contents are
  /// unspecified — the caller must fully overwrite whatever it reads back.
  std::span<float> floats(Slot slot, std::size_t n);
  /// A span of `n` doubles backed by `slot`, 64-byte aligned.
  std::span<double> doubles(Slot slot, std::size_t n);

  /// Total bytes currently retained across every slot of *this* arena.
  std::size_t capacity_bytes() const;

  /// Drops all backing storage (tests use this to reset the reuse metrics'
  /// denominator; kernels never call it).
  void release();

  ScratchArena() = default;
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

 private:
  /// One grow-only aligned allocation. Growth never preserves contents —
  /// the spans' contents are documented as unspecified.
  struct Buffer {
    std::byte* data = nullptr;
    std::size_t bytes = 0;  // capacity of `data`
  };

  std::span<std::byte> grab(Buffer& buf, std::size_t bytes,
                            std::size_t elem_size);

  Buffer float_slots_[kSlotCount];
  Buffer double_slots_[kSlotCount];
};

}  // namespace cadmc::tensor
