#include "tensor/serialize.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace cadmc::tensor {

namespace {
constexpr std::uint32_t kMagic = 0x54444143;  // "CADT"

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T get(const std::vector<std::uint8_t>& buf, std::size_t& offset) {
  if (offset + sizeof(T) > buf.size())
    throw std::runtime_error("decode_tensor: truncated buffer");
  T v;
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  offset += sizeof(T);
  return v;
}
}  // namespace

void encode_tensor(const Tensor& t, std::vector<std::uint8_t>& out) {
  put(out, kMagic);
  put(out, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i)
    put(out, static_cast<std::int32_t>(t.dim(i)));
  const std::size_t bytes = static_cast<std::size_t>(t.numel()) * sizeof(float);
  const std::size_t pos = out.size();
  out.resize(pos + bytes);
  if (bytes) std::memcpy(out.data() + pos, t.data().data(), bytes);
}

std::vector<std::uint8_t> encode_tensor(const Tensor& t) {
  std::vector<std::uint8_t> out;
  encode_tensor(t, out);
  return out;
}

Tensor decode_tensor(const std::vector<std::uint8_t>& buf, std::size_t& offset) {
  if (get<std::uint32_t>(buf, offset) != kMagic)
    throw std::runtime_error("decode_tensor: bad magic");
  const std::uint32_t rank = get<std::uint32_t>(buf, offset);
  if (rank > 8) throw std::runtime_error("decode_tensor: absurd rank");
  Shape shape;
  for (std::uint32_t i = 0; i < rank; ++i) {
    const std::int32_t d = get<std::int32_t>(buf, offset);
    if (d <= 0) throw std::runtime_error("decode_tensor: non-positive dim");
    shape.push_back(d);
  }
  const std::int64_t numel = shape_numel(shape);
  const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
  if (offset + bytes > buf.size())
    throw std::runtime_error("decode_tensor: truncated payload");
  std::vector<float> values(static_cast<std::size_t>(numel));
  if (bytes) std::memcpy(values.data(), buf.data() + offset, bytes);
  offset += bytes;
  return Tensor(std::move(shape), std::move(values));
}

bool save_tensor(const Tensor& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const auto buf = encode_tensor(t);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensor: cannot open " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  std::size_t offset = 0;
  return decode_tensor(buf, offset);
}

}  // namespace cadmc::tensor
