// Binary tensor serialization: little-endian, "CADT" magic, rank, dims,
// float32 payload. Used by the feature codec (runtime transport) and by
// model checkpointing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace cadmc::tensor {

/// Appends the encoded tensor to `out`.
void encode_tensor(const Tensor& t, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_tensor(const Tensor& t);

/// Decodes one tensor starting at `offset`; advances offset past it.
/// Throws std::runtime_error on malformed input.
Tensor decode_tensor(const std::vector<std::uint8_t>& buf, std::size_t& offset);

bool save_tensor(const Tensor& t, const std::string& path);
/// Throws std::runtime_error if the file is missing or malformed.
Tensor load_tensor(const std::string& path);

}  // namespace cadmc::tensor
