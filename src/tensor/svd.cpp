#include "tensor/svd.h"

#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace cadmc::tensor {

SvdResult svd(const Tensor& a, int max_sweeps, double tol) {
  if (a.rank() != 2) throw std::invalid_argument("svd: rank-2 expected");
  const int m = a.dim(0), n = a.dim(1);

  // One-sided Jacobi works on the columns; for m < n, decompose A^T instead
  // and swap the roles of U and V.
  if (m < n) {
    Tensor at({n, m});
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < n; ++j) at(j, i) = a(i, j);
    SvdResult t = svd(at, max_sweeps, tol);
    SvdResult result;
    const int r = static_cast<int>(t.singular.size());
    result.singular = t.singular;
    // A = (A^T)^T = (U S V^T)^T = V S U^T.
    result.u = Tensor({m, r});
    for (int i = 0; i < m; ++i)
      for (int k = 0; k < r; ++k) result.u(i, k) = t.vt(k, i);
    result.vt = Tensor({r, n});
    for (int k = 0; k < r; ++k)
      for (int j = 0; j < n; ++j) result.vt(k, j) = t.u(j, k);
    return result;
  }

  // Work in double precision: columns of `w` are rotated until orthogonal.
  std::vector<double> w(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) w[static_cast<std::size_t>(j) * m + i] = a(i, j);
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);  // V, column-major
  for (int j = 0; j < n; ++j) v[static_cast<std::size_t>(j) * n + j] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        const double* cp = &w[static_cast<std::size_t>(p) * m];
        const double* cq = &w[static_cast<std::size_t>(q) * m];
        for (int i = 0; i < m; ++i) {
          alpha += cp[i] * cp[i];
          beta += cq[i] * cq[i];
          gamma += cp[i] * cq[i];
        }
        off = std::max(off, std::fabs(gamma) / std::max(1e-300, std::sqrt(alpha * beta)));
        if (std::fabs(gamma) < 1e-300) continue;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t_rot = (zeta >= 0 ? 1.0 : -1.0) /
                             (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t_rot * t_rot);
        const double s = c * t_rot;
        double* wp = &w[static_cast<std::size_t>(p) * m];
        double* wq = &w[static_cast<std::size_t>(q) * m];
        for (int i = 0; i < m; ++i) {
          const double tmp = c * wp[i] - s * wq[i];
          wq[i] = s * wp[i] + c * wq[i];
          wp[i] = tmp;
        }
        double* vp = &v[static_cast<std::size_t>(p) * n];
        double* vq = &v[static_cast<std::size_t>(q) * n];
        for (int i = 0; i < n; ++i) {
          const double tmp = c * vp[i] - s * vq[i];
          vq[i] = s * vp[i] + c * vq[i];
          vp[i] = tmp;
        }
      }
    }
    if (off < tol) break;
  }

  // Singular values are the column norms; U columns are normalized columns.
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double norm = 0.0;
    const double* cj = &w[static_cast<std::size_t>(j) * m];
    for (int i = 0; i < m; ++i) norm += cj[i] * cj[i];
    sigma[static_cast<std::size_t>(j)] = std::sqrt(norm);
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return sigma[static_cast<std::size_t>(x)] > sigma[static_cast<std::size_t>(y)]; });

  SvdResult result;
  result.u = Tensor({m, n});
  result.vt = Tensor({n, n});
  result.singular.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int j = order[static_cast<std::size_t>(k)];
    const double sv = sigma[static_cast<std::size_t>(j)];
    result.singular[static_cast<std::size_t>(k)] = sv;
    const double inv = sv > 1e-300 ? 1.0 / sv : 0.0;
    const double* cj = &w[static_cast<std::size_t>(j) * m];
    for (int i = 0; i < m; ++i)
      result.u(i, k) = static_cast<float>(cj[i] * inv);
    const double* vj = &v[static_cast<std::size_t>(j) * n];
    for (int i = 0; i < n; ++i)
      result.vt(k, i) = static_cast<float>(vj[i]);
  }
  return result;
}

namespace {
/// Rank-revealing Gram–Schmidt orthonormalization of the columns of
/// q [m, k], in place. Columns that collapse under projection (linearly
/// dependent on earlier ones) are zeroed rather than normalized — otherwise
/// float32 round-off noise would be blown up into spurious non-orthogonal
/// directions. Each column is orthogonalized twice (re-orthogonalization)
/// for numerical robustness.
void orthonormalize_columns(Tensor& q) {
  const int m = q.dim(0), k = q.dim(1);
  for (int j = 0; j < k; ++j) {
    double orig_norm = 0.0;
    for (int i = 0; i < m; ++i)
      orig_norm += static_cast<double>(q(i, j)) * q(i, j);
    orig_norm = std::sqrt(orig_norm);
    for (int pass = 0; pass < 2; ++pass) {
      for (int prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (int i = 0; i < m; ++i)
          dot += static_cast<double>(q(i, prev)) * q(i, j);
        for (int i = 0; i < m; ++i)
          q(i, j) -= static_cast<float>(dot) * q(i, prev);
      }
    }
    double norm = 0.0;
    for (int i = 0; i < m; ++i) norm += static_cast<double>(q(i, j)) * q(i, j);
    norm = std::sqrt(norm);
    // Rank reveal: a column whose residual is a round-off sliver of its
    // original magnitude is dependent on the earlier columns.
    const bool dependent = norm <= 1e-5 * orig_norm || norm < 1e-20;
    const float inv = dependent ? 0.0f : static_cast<float>(1.0 / norm);
    for (int i = 0; i < m; ++i) q(i, j) *= inv;
  }
}

Tensor transpose(const Tensor& a) {
  const int m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) t(j, i) = a(i, j);
  return t;
}

Tensor matmul_local(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int kk = 0; kk < k; ++kk) {
      const float av = a(i, kk);
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j) c(i, j) += av * b(kk, j);
    }
  return c;
}
}  // namespace

LowRankFactors randomized_low_rank(const Tensor& a, int k, int oversample,
                                   int power_iters, std::uint64_t seed) {
  const int m = a.dim(0), n = a.dim(1);
  const int r = std::min({k + oversample, m, n});
  k = std::clamp(k, 1, r);
  util::Rng rng(seed);
  // Range finder: Q = orth((A A^T)^p A Omega).
  Tensor omega = Tensor::randn({n, r}, rng);
  Tensor q = matmul_local(a, omega);  // [m, r]
  orthonormalize_columns(q);
  const Tensor at = transpose(a);
  for (int p = 0; p < power_iters; ++p) {
    Tensor z = matmul_local(at, q);  // [n, r]
    orthonormalize_columns(z);
    q = matmul_local(a, z);  // [m, r]
    orthonormalize_columns(q);
  }
  // B = Q^T A is r x n with small r; exact SVD of B is cheap.
  const Tensor b = matmul_local(transpose(q), a);  // [r, n]
  const SvdResult bs = svd(b);
  LowRankFactors f;
  f.left = Tensor({m, k});
  f.right = Tensor({k, n});
  // left = Q * U_k * diag(S_k), right = Vt_k.
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) {
      double acc = 0.0;
      for (int t = 0; t < r; ++t) acc += static_cast<double>(q(i, t)) * bs.u(t, j);
      f.left(i, j) = static_cast<float>(acc * bs.singular[static_cast<std::size_t>(j)]);
    }
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) f.right(i, j) = bs.vt(i, j);
  return f;
}

LowRankFactors low_rank_factors(const Tensor& a, int k) {
  const int m = a.dim(0), n = a.dim(1);
  k = std::clamp(k, 1, std::min(m, n));
  // Exact Jacobi SVD is O(min(m,n)^2 * max(m,n)) per sweep — fine for small
  // matrices, prohibitive for wide FC layers. Randomized projection keeps
  // F1/F2 realization fast there.
  if (static_cast<std::int64_t>(m) * n > 64 * 1024 ||
      std::min(m, n) > 192) {
    return randomized_low_rank(a, k);
  }
  SvdResult s = svd(a);
  LowRankFactors f;
  f.left = Tensor({m, k});
  f.right = Tensor({k, n});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j)
      f.left(i, j) = static_cast<float>(s.u(i, j) * s.singular[static_cast<std::size_t>(j)]);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) f.right(i, j) = s.vt(i, j);
  return f;
}

double relative_frobenius_error(const Tensor& a, const Tensor& b) {
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.at(i)) - b.at(i);
    num += d * d;
    den += static_cast<double>(a.at(i)) * a.at(i);
  }
  return den > 0 ? std::sqrt(num / den) : 0.0;
}

void sparsify_in_place(Tensor& t, double keep_fraction) {
  keep_fraction = std::clamp(keep_fraction, 0.0, 1.0);
  const std::int64_t n = t.numel();
  const std::int64_t keep = static_cast<std::int64_t>(
      std::ceil(keep_fraction * static_cast<double>(n)));
  if (keep >= n) return;
  std::vector<float> mags(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) mags[static_cast<std::size_t>(i)] = std::fabs(t.at(i));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(n - keep),
                   mags.end());
  const float threshold =
      keep > 0 ? mags[static_cast<std::size_t>(n - keep)]
               : std::numeric_limits<float>::max();
  for (std::int64_t i = 0; i < n; ++i)
    if (std::fabs(t.at(i)) < threshold) t.at(i) = 0.0f;
}

}  // namespace cadmc::tensor
