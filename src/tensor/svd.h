// Singular value decomposition via one-sided Jacobi rotations. This powers
// the F1 (SVD) and F2 (KSVD) fully-connected-layer compressions of Table II:
// an m x n weight matrix is replaced by rank-k factors (m x k) and (k x n).
#pragma once

#include "tensor/tensor.h"

namespace cadmc::tensor {

struct SvdResult {
  Tensor u;                       // [m, r]
  std::vector<double> singular;   // r values, descending
  Tensor vt;                      // [r, n]
};

/// Full (thin) SVD of a [m, n] matrix, r = min(m, n).
SvdResult svd(const Tensor& a, int max_sweeps = 60, double tol = 1e-12);

struct LowRankFactors {
  Tensor left;   // [m, k] = U_k * diag(S_k)
  Tensor right;  // [k, n] = Vt_k
};

/// Best rank-k approximation factors of a (Eckart–Young). k is clamped to
/// min(m, n). Small matrices use the exact Jacobi SVD; large ones switch to
/// a randomized range-finder (Halko et al.) with deterministic projections,
/// which is near-optimal and keeps F1/F2 realization fast on wide FC layers.
LowRankFactors low_rank_factors(const Tensor& a, int k);

/// Randomized truncated factorization (exposed for tests): subspace
/// iteration with `oversample` extra directions and `power_iters` passes.
LowRankFactors randomized_low_rank(const Tensor& a, int k, int oversample = 8,
                                   int power_iters = 2,
                                   std::uint64_t seed = 0x54D);

/// Relative Frobenius-norm error ||a - b||_F / ||a||_F.
double relative_frobenius_error(const Tensor& a, const Tensor& b);

/// Keeps the `keep_fraction` largest-magnitude entries of each factor and
/// zeroes the rest — the sparse-factor variant used by F2 (KSVD) in Table II.
void sparsify_in_place(Tensor& t, double keep_fraction);

}  // namespace cadmc::tensor
