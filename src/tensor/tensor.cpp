#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cadmc::tensor {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream ss;
  ss << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) ss << "x";
    ss << shape[i];
  }
  ss << "]";
  return ss.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (int d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  for (int d : shape_) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
  }
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape)) {
  if (shape_numel(shape_) != static_cast<std::int64_t>(values.size()))
    throw std::invalid_argument("Tensor: values size does not match shape");
  data_ = std::move(values);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  return Tensor({static_cast<int>(values.size())},
                std::vector<float>(values));
}

std::int64_t Tensor::flat_index(std::span<const int> idx) const {
  assert(idx.size() == shape_.size());
  std::int64_t flat = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    assert(idx[i] >= 0 && idx[i] < shape_[i]);
    flat = flat * shape_[i] + idx[i];
  }
  return flat;
}

float& Tensor::operator()(int i) {
  const int idx[] = {i};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::operator()(int i) const {
  const int idx[] = {i};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(int i, int j) {
  const int idx[] = {i, j};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::operator()(int i, int j) const {
  const int idx[] = {i, j};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(int i, int j, int k) {
  const int idx[] = {i, j, k};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::operator()(int i, int j, int k) const {
  const int idx[] = {i, j, k};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float& Tensor::operator()(int n, int c, int h, int w) {
  const int idx[] = {n, c, h, w};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}
float Tensor::operator()(int n, int c, int h, int w) const {
  const int idx[] = {n, c, h, w};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel())
    throw std::invalid_argument("reshaped: numel mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  assert(numel() == other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float s) {
  assert(numel() == other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::clamp_min_(float lo) {
  for (float& v : data_) v = std::max(v, lo);
  return *this;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::max() const {
  assert(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

int Tensor::argmax() const {
  assert(!data_.empty());
  return static_cast<int>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a.at(i) - b.at(i)));
  return m;
}

std::string Tensor::to_string(int max_elems) const {
  std::ostringstream ss;
  ss << "Tensor" << shape_to_string(shape_) << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) ss << ", ";
    ss << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) ss << ", ...";
  ss << "}";
  return ss.str();
}

}  // namespace cadmc::tensor
