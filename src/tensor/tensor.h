// A small dense float32 tensor with value semantics. This is the numerical
// substrate for the DNN library (src/nn): weights, activations and gradients
// are all Tensors. Row-major (C-contiguous) layout, up to 4 dimensions,
// NCHW convention for image tensors.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace cadmc::tensor {

using Shape = std::vector<int>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (numel == 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. All dims must be positive.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// I.i.d. normal entries with the given stddev.
  static Tensor randn(Shape shape, util::Rng& rng, float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor rand_uniform(Shape shape, util::Rng& rng, float lo, float hi);
  /// 1-D tensor from a list.
  static Tensor from_values(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& at(std::int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float at(std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-dimensional accessors; rank must match.
  float& operator()(int i);
  float operator()(int i) const;
  float& operator()(int i, int j);
  float operator()(int i, int j) const;
  float& operator()(int i, int j, int k);
  float operator()(int i, int j, int k) const;
  float& operator()(int n, int c, int h, int w);
  float operator()(int n, int c, int h, int w) const;

  /// Same data reinterpreted under a new shape; numel must match.
  Tensor reshaped(Shape new_shape) const;

  // In-place arithmetic.
  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);                // this += other
  Tensor& add_scaled_(const Tensor& other, float s);  // this += s * other
  Tensor& scale_(float s);                          // this *= s
  Tensor& clamp_min_(float lo);

  // Reductions.
  float sum() const;
  float max() const;
  float abs_max() const;
  float l2_norm() const;
  int argmax() const;

  /// Max |a-b| over elements; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  /// Serialized size in bytes when sent over the wire (float32 payload).
  /// This is the S of the transfer-latency model (Eqn. 6).
  std::int64_t byte_size() const { return numel() * 4; }

  std::string to_string(int max_elems = 16) const;

 private:
  std::int64_t flat_index(std::span<const int> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace cadmc::tensor
