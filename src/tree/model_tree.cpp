#include "tree/model_tree.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "compress/transform.h"

namespace cadmc::tree {

ModelTree::ModelTree(const nn::Model& base, std::vector<std::size_t> boundaries,
                     std::vector<double> fork_bandwidths)
    : base_(&base), fork_bandwidths_(std::move(fork_bandwidths)) {
  if (fork_bandwidths_.empty())
    throw std::invalid_argument("ModelTree: need at least one fork bandwidth");
  for (std::size_t i = 1; i < fork_bandwidths_.size(); ++i)
    if (fork_bandwidths_[i] <= fork_bandwidths_[i - 1])
      throw std::invalid_argument("ModelTree: fork bandwidths must ascend");
  edges_.push_back(0);
  for (std::size_t b : boundaries) {
    if (b <= edges_.back() || b >= base.size())
      throw std::invalid_argument("ModelTree: bad boundary");
    edges_.push_back(b);
  }
  edges_.push_back(base.size());
  reset();
}

int ModelTree::classify(double bandwidth_bytes_per_ms) const {
  const int k = num_forks();
  for (int fork = 0; fork + 1 < k; ++fork) {
    const double threshold = std::sqrt(fork_bandwidths_[static_cast<std::size_t>(fork)] *
                                       fork_bandwidths_[static_cast<std::size_t>(fork) + 1]);
    if (bandwidth_bytes_per_ms < threshold) return fork;
  }
  return k - 1;
}

namespace {
void build_none_subtree(TreeNode& node, const ModelTree& tree) {
  node.cut_local = tree.block_len(node.depth);
  node.block_plan.assign(node.cut_local, TechniqueId::kNone);
  node.children.clear();
  if (node.depth + 1 < tree.num_blocks()) {
    for (int k = 0; k < tree.num_forks(); ++k) {
      TreeNode child;
      child.depth = node.depth + 1;
      child.fork = k;
      node.children.push_back(std::move(child));
      build_none_subtree(node.children.back(), tree);
    }
  }
}

/// Restores the K default-decision children of a truncated non-terminal
/// node (a previous graft may have partitioned and pruned here).
void ensure_children(TreeNode& node, const ModelTree& tree) {
  if (!node.children.empty() || node.depth + 1 >= tree.num_blocks()) return;
  for (int k = 0; k < tree.num_forks(); ++k) {
    TreeNode child;
    child.depth = node.depth + 1;
    child.fork = k;
    node.children.push_back(std::move(child));
    build_none_subtree(node.children.back(), tree);
  }
}
}  // namespace

void ModelTree::reset() {
  root_ = TreeNode{};
  root_.depth = 0;  // virtual root; children are the depth-0 variants
  for (int k = 0; k < num_forks(); ++k) {
    TreeNode child;
    child.depth = 0;
    child.fork = k;
    root_.children.push_back(std::move(child));
    build_none_subtree(root_.children.back(), *this);
  }
}

const TreeNode* ModelTree::child_for(const TreeNode& node, int fork) const {
  for (const TreeNode& c : node.children)
    if (c.fork == fork) return &c;
  return nullptr;
}

void ModelTree::append_block_decisions(Strategy& s, const TreeNode& node) const {
  const std::size_t begin = block_begin(node.depth);
  for (std::size_t i = 0; i < node.block_plan.size(); ++i) {
    if (begin + i >= s.plan.size()) break;
    s.plan[begin + i] = node.block_plan[i];
  }
}

ModelTree::PathStrategy ModelTree::strategy_for_path(
    const std::vector<int>& forks) const {
  PathStrategy out;
  out.strategy.plan.assign(base_->size(), TechniqueId::kNone);
  out.strategy.cut = base_->size();
  const TreeNode* node = &root_;
  for (std::size_t level = 0; level < num_blocks(); ++level) {
    if (level >= forks.size())
      throw std::invalid_argument("strategy_for_path: fork path too short");
    node = child_for(*node, forks[level]);
    if (node == nullptr)
      throw std::logic_error("strategy_for_path: missing child");
    append_block_decisions(out.strategy, *node);
    ++out.blocks_walked;
    if (node->partitions(block_len(node->depth))) {
      out.strategy.cut = block_begin(node->depth) + node->cut_local;
      break;
    }
  }
  return out;
}

std::vector<std::vector<int>> ModelTree::all_paths() const {
  std::vector<std::vector<int>> paths;
  std::vector<int> current;
  const std::function<void(const TreeNode&)> walk = [&](const TreeNode& node) {
    for (const TreeNode& child : node.children) {
      current.push_back(child.fork);
      if (child.children.empty()) {
        paths.push_back(current);
      } else {
        walk(child);
      }
      current.pop_back();
    }
  };
  walk(root_);
  return paths;
}

ModelTree::Composition ModelTree::compose_online(
    const std::function<double(std::size_t block)>& measure_bandwidth) const {
  Composition out;
  out.strategy.plan.assign(base_->size(), TechniqueId::kNone);
  out.strategy.cut = base_->size();
  const TreeNode* node = &root_;
  for (std::size_t level = 0; level < num_blocks(); ++level) {
    const double bw = measure_bandwidth(level);
    const int fork = classify(bw);
    out.observed_bandwidths.push_back(bw);
    out.forks.push_back(fork);
    node = child_for(*node, fork);
    if (node == nullptr) throw std::logic_error("compose_online: missing child");
    append_block_decisions(out.strategy, *node);
    if (node->partitions(block_len(node->depth))) {
      out.strategy.cut = block_begin(node->depth) + node->cut_local;
      break;
    }
  }
  return out;
}

void ModelTree::graft_branch(int fork, const Strategy& branch) {
  if (branch.plan.size() != base_->size())
    throw std::invalid_argument("graft_branch: plan size mismatch");
  TreeNode* node = &root_;
  for (std::size_t level = 0; level < num_blocks(); ++level) {
    if (node != &root_) ensure_children(*node, *this);
    TreeNode* next = nullptr;
    for (TreeNode& c : node->children)
      if (c.fork == fork) next = &c;
    if (next == nullptr) return;  // no deeper levels exist
    node = next;
    const std::size_t begin = block_begin(level), end = block_end(level);
    const std::size_t cut = std::min(branch.cut, end);
    if (cut <= begin) {
      node->cut_local = 0;
      node->block_plan.clear();
      node->children.clear();
      return;
    }
    node->cut_local = cut - begin;
    node->block_plan.assign(branch.plan.begin() + static_cast<std::ptrdiff_t>(begin),
                            branch.plan.begin() + static_cast<std::ptrdiff_t>(cut));
    node->block_plan.resize(node->cut_local, TechniqueId::kNone);
    if (node->partitions(block_len(level))) {
      node->children.clear();
      return;
    }
  }
}

void ModelTree::graft_everywhere(const Strategy& branch) {
  if (branch.plan.size() != base_->size())
    throw std::invalid_argument("graft_everywhere: plan size mismatch");
  const std::function<void(TreeNode&)> write = [&](TreeNode& node) {
    const std::size_t begin = block_begin(node.depth), end = block_end(node.depth);
    const std::size_t cut = std::min(branch.cut, end);
    if (cut <= begin) {
      node.cut_local = 0;
      node.block_plan.clear();
      node.children.clear();
      return;
    }
    node.cut_local = cut - begin;
    node.block_plan.assign(branch.plan.begin() + static_cast<std::ptrdiff_t>(begin),
                           branch.plan.begin() + static_cast<std::ptrdiff_t>(cut));
    node.block_plan.resize(node.cut_local, TechniqueId::kNone);
    if (node.partitions(block_len(node.depth))) {
      node.children.clear();
      return;
    }
    for (TreeNode& c : node.children) write(c);
  };
  for (TreeNode& c : root_.children) write(c);
}

std::string ModelTree::to_string() const {
  std::ostringstream ss;
  const std::function<void(const TreeNode&, int)> walk = [&](const TreeNode& node,
                                                             int indent) {
    for (const TreeNode& child : node.children) {
      ss << std::string(static_cast<std::size_t>(indent) * 2, ' ') << "block "
         << child.depth << " fork " << child.fork << " [";
      for (TechniqueId id : child.block_plan)
        ss << compress::technique_short_name(id);
      ss << "]";
      if (child.partitions(block_len(child.depth)))
        ss << " cut@+" << child.cut_local;
      ss << " reward=" << child.reward << "\n";
      walk(child, indent + 1);
    }
  };
  walk(root_, 0);
  return ss.str();
}

}  // namespace cadmc::tree
