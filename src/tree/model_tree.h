// The context-aware model tree (Sec. VI). The base DNN is sliced into N
// blocks; the tree has N levels and K forks per node, one fork per network
// condition type (the paper uses K = 2: 'poor' and 'good', the lower and
// upper bandwidth quartiles). Each node holds the decisions for one block
// conditioned on the bandwidth type observed before running it:
//  * an intra-block partition cut (== block length means "no partition"), and
//  * a compression plan for the block's edge-side layers.
// A node that partitions is terminal: everything after its cut runs on the
// cloud, inherited unmodified from the base DNN (cloud flag of Alg. 3).
//
// Alg. 2 (compose_online) walks the tree at inference time: measure the
// bandwidth before each block, descend the matching fork, and concatenate
// blocks until a partition or the final layer.
#pragma once

#include <functional>

#include "engine/strategy.h"

namespace cadmc::tree {

using compress::TechniqueId;
using engine::Strategy;

struct TreeNode {
  std::size_t depth = 0;   // block index
  int fork = 0;            // bandwidth type this node answers
  std::size_t cut_local = 0;               // offset within the block; == block length -> no partition
  std::vector<TechniqueId> block_plan;     // one entry per block layer (edge side only)
  double reward = 0.0;                     // backward-estimated (Alg. 3)
  std::vector<TreeNode> children;          // K children, or empty if terminal

  bool partitions(std::size_t block_len) const { return cut_local < block_len; }
};

class ModelTree {
 public:
  /// Empty tree (no base model); only assignment and destruction are valid.
  ModelTree() = default;

  /// `boundaries` are the block boundaries in base-layer indices (as from
  /// nn::block_boundaries); `fork_bandwidths` are the K representative
  /// bandwidths (bytes/ms), ascending (fork 0 = poorest).
  ModelTree(const nn::Model& base, std::vector<std::size_t> boundaries,
            std::vector<double> fork_bandwidths);

  bool valid() const { return base_ != nullptr; }

  const nn::Model& base() const { return *base_; }
  std::size_t num_blocks() const { return edges_.size() - 1; }
  int num_forks() const { return static_cast<int>(fork_bandwidths_.size()); }
  const std::vector<double>& fork_bandwidths() const { return fork_bandwidths_; }
  /// Block j spans base layers [block_begin(j), block_end(j)).
  std::size_t block_begin(std::size_t j) const { return edges_.at(j); }
  std::size_t block_end(std::size_t j) const { return edges_.at(j + 1); }
  std::size_t block_len(std::size_t j) const { return block_end(j) - block_begin(j); }

  /// Fork index for a measured bandwidth: nearest representative in
  /// log-space (thresholds at the geometric means of adjacent forks).
  int classify(double bandwidth_bytes_per_ms) const;

  TreeNode& root() { return root_; }
  const TreeNode& root() const { return root_; }

  /// Builds a fully 'None' tree (no partition, no compression anywhere).
  void reset();

  /// The strategy realized by following `forks` (fork per level; extra
  /// entries ignored once a node partitions). Also returns how many blocks
  /// actually executed on the edge path.
  struct PathStrategy {
    Strategy strategy;
    std::size_t blocks_walked = 0;
  };
  PathStrategy strategy_for_path(const std::vector<int>& forks) const;

  /// All root-to-terminal fork paths (K^depth enumeration, truncated at
  /// partitioned nodes).
  std::vector<std::vector<int>> all_paths() const;

  /// Alg. 2: composes the inference strategy online. `measure_bandwidth` is
  /// called once before each block and returns the current estimate
  /// (bytes/ms). Returns the composed strategy, the forks taken and the
  /// bandwidth observed per block.
  struct Composition {
    Strategy strategy;
    std::vector<int> forks;
    std::vector<double> observed_bandwidths;
  };
  Composition compose_online(
      const std::function<double(std::size_t block)>& measure_bandwidth) const;

  /// Grafts an optimal-branch strategy onto the all-`fork` path (optimal
  /// branch boosting, Sec. VII-A).
  void graft_branch(int fork, const Strategy& branch);

  /// Writes the strategy's block decisions into EVERY node, so all fork
  /// paths realize it — used to seed the whole tree with one known-good
  /// strategy as an incumbent.
  void graft_everywhere(const Strategy& branch);

  std::string to_string() const;

 private:
  const TreeNode* child_for(const TreeNode& node, int fork) const;
  void append_block_decisions(Strategy& s, const TreeNode& node) const;

  const nn::Model* base_ = nullptr;
  std::vector<std::size_t> edges_;  // 0, boundaries..., base size
  std::vector<double> fork_bandwidths_;
  TreeNode root_;  // virtual root; its children are the K block-0 variants
};

}  // namespace cadmc::tree
