#include "tree/tree_io.h"

#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/string_util.h"

namespace cadmc::tree {

namespace {
// Format:
//   cadmc-tree v1
//   boundaries <b0> <b1> ...
//   forks <bw0> <bw1> ...
//   node <path> <cut_local> <plan digits>   (path = fork chars, "-" for the
//                                            virtual-root children level)
void encode_node(const TreeNode& node, const std::string& path,
                 std::ostringstream& out) {
  out << "node " << (path.empty() ? "-" : path) << " " << node.cut_local << " ";
  for (TechniqueId id : node.block_plan) out << static_cast<int>(id);
  out << "\n";
  for (const TreeNode& c : node.children)
    encode_node(c, path + std::to_string(c.fork), out);
}
}  // namespace

std::string encode_tree(const ModelTree& tree) {
  std::ostringstream out;
  out << "cadmc-tree v1\n";
  out << "boundaries";
  for (std::size_t j = 1; j < tree.num_blocks(); ++j)
    out << " " << tree.block_begin(j);
  out << "\nforks";
  for (double bw : tree.fork_bandwidths()) out << " " << bw;
  out << "\n";
  for (const TreeNode& c : tree.root().children)
    encode_node(c, std::to_string(c.fork), out);
  return out.str();
}

bool save_tree(const ModelTree& tree, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << encode_tree(tree);
  return static_cast<bool>(out);
}

ModelTree decode_tree(const nn::Model& base, const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || util::trim(line) != "cadmc-tree v1")
    throw std::runtime_error("decode_tree: bad header");

  auto parse_tail = [](const std::string& l, const std::string& prefix) {
    if (!util::starts_with(l, prefix))
      throw std::runtime_error("decode_tree: expected '" + prefix + "' line");
    return util::split(util::trim(l.substr(prefix.size())), ' ');
  };

  if (!std::getline(in, line)) throw std::runtime_error("decode_tree: truncated");
  std::vector<std::size_t> boundaries;
  for (const std::string& tok : parse_tail(line, "boundaries"))
    if (!tok.empty()) boundaries.push_back(std::stoul(tok));

  if (!std::getline(in, line)) throw std::runtime_error("decode_tree: truncated");
  std::vector<double> forks;
  for (const std::string& tok : parse_tail(line, "forks"))
    if (!tok.empty()) forks.push_back(std::stod(tok));

  ModelTree tree(base, boundaries, forks);  // validates against `base`

  // Apply node lines onto the freshly reset tree.
  while (std::getline(in, line)) {
    line = util::trim(line);
    if (line.empty()) continue;
    const auto parts = util::split(line, ' ');
    if (parts.size() < 3 || parts[0] != "node")
      throw std::runtime_error("decode_tree: malformed node line");
    const std::string& path = parts[1];
    const std::size_t cut_local = std::stoul(parts[2]);
    const std::string plan_digits = parts.size() >= 4 ? parts[3] : "";

    TreeNode* node = &const_cast<TreeNode&>(tree.root());
    std::size_t depth = 0;
    for (char c : path) {
      const int fork = c - '0';
      TreeNode* next = nullptr;
      for (TreeNode& child : node->children)
        if (child.fork == fork) next = &child;
      if (next == nullptr)
        throw std::runtime_error("decode_tree: node path outside tree");
      node = next;
      ++depth;
    }
    const std::size_t block_len = tree.block_len(node->depth);
    if (cut_local > block_len)
      throw std::runtime_error("decode_tree: cut outside block");
    if (plan_digits.size() != cut_local)
      throw std::runtime_error("decode_tree: plan length mismatch");
    node->cut_local = cut_local;
    node->block_plan.clear();
    for (char d : plan_digits) {
      const int id = d - '0';
      if (id < 0 || id >= compress::kTechniqueCount)
        throw std::runtime_error("decode_tree: bad technique id");
      node->block_plan.push_back(static_cast<TechniqueId>(id));
    }
    if (node->partitions(block_len)) node->children.clear();
  }
  return tree;
}

ModelTree load_tree(const nn::Model& base, const std::string& path) {
  std::string text;
  if (!util::read_file(path, text))
    throw std::runtime_error("load_tree: cannot read " + path);
  return decode_tree(base, text);
}

}  // namespace cadmc::tree
