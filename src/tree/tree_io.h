// Model-tree persistence: the offline phase (Fig. 2, top) runs on a server;
// the resulting decision tree ships to the device. The format is a compact
// line-oriented text encoding of the tree's decisions (cuts, per-layer
// technique plans, fork bandwidths, block boundaries) — the base model's
// weights travel separately (nn/checkpoint.h).
#pragma once

#include <string>

#include "tree/model_tree.h"

namespace cadmc::tree {

/// Serializes the tree's decisions (not the base model).
std::string encode_tree(const ModelTree& tree);
bool save_tree(const ModelTree& tree, const std::string& path);

/// Rebuilds a tree over `base`. Throws std::runtime_error on malformed
/// input or when the encoded boundaries/plans do not fit `base`.
ModelTree decode_tree(const nn::Model& base, const std::string& text);
ModelTree load_tree(const nn::Model& base, const std::string& path);

}  // namespace cadmc::tree
