#include "tree/tree_search.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "latency/transfer_model.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace cadmc::tree {

using controller::LayerEmbedder;
using engine::Evaluation;

TreeSearch::TreeSearch(const engine::StrategyEvaluator& evaluator,
                       std::vector<std::size_t> boundaries,
                       std::vector<double> fork_bandwidths,
                       const TreeSearchConfig& config)
    : evaluator_(&evaluator),
      boundaries_(std::move(boundaries)),
      fork_bandwidths_(std::move(fork_bandwidths)),
      config_(config),
      partition_(config.hidden_dim, config.seed ^ 0x7A3E),
      compression_(config.hidden_dim, compress::kTechniqueCount,
                   config.seed ^ 0x53C2) {}

void TreeSearch::generate_forward(ModelTree& tree, util::Rng& rng, double alpha,
                                  std::vector<NodeDecision>& decisions) {
  tree.reset();
  const nn::Model& base = evaluator_->base();
  const std::size_t num_blocks = tree.num_blocks();
  // BFS over the complete tree (Alg. 3 line 5).
  std::vector<TreeNode*> frontier;
  for (TreeNode& c : tree.root().children) frontier.push_back(&c);
  std::size_t head = 0;
  while (head < frontier.size()) {
    TreeNode* node = frontier[head++];
    const std::size_t j = node->depth;
    const std::size_t begin = tree.block_begin(j), end = tree.block_end(j);
    const std::size_t block_len = end - begin;
    const double bw_mbps = latency::bytes_per_ms_to_mbps(
        fork_bandwidths_[static_cast<std::size_t>(node->fork)]);

    NodeDecision d;
    d.node = node;
    d.block_features = LayerEmbedder::embed_range(base, begin, end, bw_mbps);

    // Partition decision for this block (Alg. 3 line 9), with fair-chance
    // exploration: force "no partition" with probability alpha*(N-j)/N.
    const double force_prob =
        alpha * static_cast<double>(num_blocks - j) / static_cast<double>(num_blocks);
    const auto p = partition_.sample(d.block_features, rng);
    int action = p.action;
    if (config_.fair_chance && rng.bernoulli(force_prob)) {
      action = static_cast<int>(block_len);  // no partition
      d.forced = true;
      obs::count("cadmc.search.forced_actions");
    }
    d.partition_action = action;
    node->cut_local = static_cast<std::size_t>(action);

    // Compression decision for the block's edge side (Alg. 3 line 10).
    const std::size_t edge_end = begin + node->cut_local;
    node->block_plan.assign(node->cut_local, TechniqueId::kNone);
    d.compressed = node->cut_local > 0;
    if (d.compressed) {
      d.comp_features = LayerEmbedder::embed_range(base, begin, edge_end, bw_mbps);
      d.masks = evaluator_->technique_masks(begin, edge_end);
      const auto samples = compression_.sample(d.comp_features, d.masks, rng);
      d.compression_actions.resize(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i) {
        d.compression_actions[i] = samples[i].action;
        node->block_plan[i] = static_cast<TechniqueId>(samples[i].action);
      }
    }

    if (node->partitions(block_len)) {
      // Everything after the cut inherits the base DNN on the cloud
      // (Alg. 3 lines 18-21): terminal node, no children.
      node->children.clear();
    } else {
      for (TreeNode& c : node->children) frontier.push_back(&c);
    }
    decisions.push_back(std::move(d));
  }
}

void TreeSearch::estimate_backward(ModelTree& tree) const {
  obs::ScopedSpan span("estimate_backward");
  const std::size_t num_blocks = tree.num_blocks();

  // Phase 1: collect the terminal nodes and their fork paths (Alg. 3
  // lines 13-25) so the expensive trajectory evaluations can fan out.
  struct Leaf {
    TreeNode* node = nullptr;
    std::vector<int> path;
  };
  std::vector<Leaf> leaves;
  std::vector<int> path;
  const std::function<void(TreeNode&)> collect = [&](TreeNode& node) {
    path.push_back(node.fork);
    if (node.children.empty()) {
      leaves.push_back({&node, path});
    } else {
      for (TreeNode& c : node.children) collect(c);
    }
    path.pop_back();
  };
  for (TreeNode& c : tree.root().children) collect(c);

  // Phase 2: price every terminal path concurrently. Each task writes only
  // its own node's reward, and evaluations are pure (thread-safe evaluator,
  // key-derived realization seeds), so the result is order-independent.
  util::parallel_for(leaves.size(), [&](std::size_t i) {
    const Leaf& leaf = leaves[i];
    const auto ps = tree.strategy_for_path(leaf.path);
    std::vector<double> bandwidths(
        num_blocks, fork_bandwidths_[static_cast<std::size_t>(leaf.path.back())]);
    for (std::size_t level = 0; level < leaf.path.size() && level < num_blocks;
         ++level)
      bandwidths[level] =
          fork_bandwidths_[static_cast<std::size_t>(leaf.path[level])];
    leaf.node->reward =
        evaluator_->evaluate_trajectory(ps.strategy, boundaries_, bandwidths)
            .reward;
  });

  // Phase 3: serial backward averaging (lines 27-31) in child order, so the
  // floating-point sums match the single-threaded walk bit for bit. The
  // root honors backward_averaging exactly like every interior node.
  const std::function<double(TreeNode&)> aggregate = [&](TreeNode& node) {
    if (node.children.empty()) return node.reward;
    double sum = 0.0;
    for (TreeNode& c : node.children) sum += aggregate(c);
    node.reward = config_.backward_averaging
                      ? sum / static_cast<double>(node.children.size())
                      : 0.0;
    return node.reward;
  };
  double root_sum = 0.0;
  for (TreeNode& c : tree.root().children) root_sum += aggregate(c);
  tree.root().reward =
      config_.backward_averaging
          ? root_sum / static_cast<double>(tree.root().children.size())
          : 0.0;
}

double TreeSearch::tree_expected_reward(const ModelTree& tree) const {
  const std::size_t num_blocks = tree.num_blocks();
  const double k = static_cast<double>(tree.num_forks());
  const auto paths = tree.all_paths();
  std::vector<double> rewards(paths.size(), 0.0);
  util::parallel_for(paths.size(), [&](std::size_t i) {
    const auto& path = paths[i];
    const auto ps = tree.strategy_for_path(path);
    std::vector<double> bandwidths(num_blocks,
                                   fork_bandwidths_[static_cast<std::size_t>(path.back())]);
    for (std::size_t level = 0; level < path.size() && level < num_blocks; ++level)
      bandwidths[level] = fork_bandwidths_[static_cast<std::size_t>(path[level])];
    rewards[i] =
        evaluator_->evaluate_trajectory(ps.strategy, boundaries_, bandwidths)
            .reward;
  });
  // Serial reduction in path order keeps the sum bit-identical to a
  // single-threaded run.
  double expected = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i)
    expected +=
        rewards[i] * std::pow(1.0 / k, static_cast<double>(paths[i].size()));
  return expected;
}

TreeSearchResult TreeSearch::run() {
  obs::ScopedSpan run_span("tree_search");
  util::Rng rng(config_.seed);
  TreeSearchResult result{
      ModelTree(evaluator_->base(), boundaries_, fork_bandwidths_),
      0.0, 0.0, {}, {}};

  // Optimal-branch boosting: search a branch per bandwidth type and graft
  // each onto the all-k path of the incumbent tree (Sec. VII-A).
  if (config_.boost_with_branches) {
    obs::ScopedSpan boost_span("boost_branches");
    // One independent Alg. 1 search per bandwidth type: each has its own
    // seeded controllers and RNG, so running them concurrently against the
    // shared evaluator changes nothing but wall-clock time.
    result.branch_results.resize(fork_bandwidths_.size());
    util::parallel_for(fork_bandwidths_.size(), [&](std::size_t k) {
      engine::BranchSearchConfig bc = config_.branch_config;
      bc.seed = config_.seed ^ (0xB0057ULL + k);
      engine::BranchSearch branch(*evaluator_, bc);
      result.branch_results[k] = branch.run(fork_bandwidths_[k]);
    });
    for (const engine::BranchSearchResult& br : result.branch_results)
      result.best_branch_reward =
          std::max(result.best_branch_reward, br.best_eval.reward);
    // Mixed-fork paths inherit the strongest single branch as a floor; the
    // all-k paths then get their fork-matched branches (Sec. VII-A).
    std::size_t best_k = 0;
    for (std::size_t k = 1; k < result.branch_results.size(); ++k)
      if (result.branch_results[k].best_eval.reward >
          result.branch_results[best_k].best_eval.reward)
        best_k = k;
    result.tree.graft_everywhere(result.branch_results[best_k].best);
    for (std::size_t k = 0; k < result.branch_results.size(); ++k)
      result.tree.graft_branch(static_cast<int>(k),
                               result.branch_results[k].best);
    obs::count("cadmc.search.grafts",
               static_cast<std::int64_t>(1 + result.branch_results.size()));
  }
  estimate_backward(result.tree);
  result.tree_reward = result.tree.root().reward;

  // Extra boosts: graft each pre-trained branch onto every fork and keep
  // the strongest incumbent.
  for (const engine::Strategy& strategy : config_.extra_boost_strategies) {
    ModelTree boosted(evaluator_->base(), boundaries_, fork_bandwidths_);
    boosted.graft_everywhere(strategy);
    estimate_backward(boosted);
    obs::count("cadmc.search.grafts");
    if (boosted.root().reward > result.tree_reward) {
      result.tree_reward = boosted.root().reward;
      result.tree = boosted;
    }
  }

  rl::RewardBaseline baseline;
  ModelTree candidate(evaluator_->base(), boundaries_, fork_bandwidths_);
  for (int episode = 0; episode < config_.episodes; ++episode) {
    const double alpha =
        config_.alpha_decay_episodes > 0
            ? config_.alpha0 *
                  std::max(0.0, 1.0 - static_cast<double>(episode) /
                                          config_.alpha_decay_episodes)
            : 0.0;
    std::vector<NodeDecision> decisions;
    generate_forward(candidate, rng, alpha, decisions);
    estimate_backward(candidate);
    const double tree_reward = candidate.root().reward;
    result.log.record(tree_reward);
    if (tree_reward > result.tree_reward) {
      result.tree_reward = tree_reward;
      result.tree = candidate;
    }
    const double b = baseline.value();
    baseline.advantage(tree_reward);  // fold the episode into the EMA
    if (obs::enabled()) {
      obs::count("cadmc.search.episodes");
      obs::observe("cadmc.search.reward", tree_reward);
      obs::observe("cadmc.search.advantage", tree_reward - b);
      obs::set_gauge("cadmc.search.baseline", b);
      obs::set_gauge("cadmc.search.best_reward", result.tree_reward);
      obs::set_gauge("cadmc.search.alpha", alpha);
    }

    // Controller updates with each node's action-reward pair (Alg. 3 line 33).
    partition_.zero_grad();
    compression_.zero_grad();
    bool any_compression = false;
    for (const NodeDecision& d : decisions) {
      const double advantage = (d.node->reward - b) / 40.0;
      // Fair-chance overrides are exploration, not policy output: crediting
      // the forced no-partition action would bias the gradient toward it.
      // The compression actions below were genuinely sampled (conditioned
      // on the forced cut), so they still receive credit.
      if (d.forced) {
        obs::count("cadmc.search.forced_grad_skips");
      } else {
        partition_.accumulate_grad(d.block_features, d.partition_action,
                                   advantage);
      }
      if (d.compressed) {
        compression_.accumulate_grad(d.comp_features, d.masks,
                                     d.compression_actions, advantage);
        any_compression = true;
      }
    }
    partition_.step();
    if (any_compression) compression_.step();
  }
  return result;
}

}  // namespace cadmc::tree
