#include "tree/tree_search.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "latency/transfer_model.h"
#include "obs/span.h"

namespace cadmc::tree {

using controller::LayerEmbedder;
using engine::Evaluation;

TreeSearch::TreeSearch(const engine::StrategyEvaluator& evaluator,
                       std::vector<std::size_t> boundaries,
                       std::vector<double> fork_bandwidths,
                       const TreeSearchConfig& config)
    : evaluator_(&evaluator),
      boundaries_(std::move(boundaries)),
      fork_bandwidths_(std::move(fork_bandwidths)),
      config_(config),
      partition_(config.hidden_dim, config.seed ^ 0x7A3E),
      compression_(config.hidden_dim, compress::kTechniqueCount,
                   config.seed ^ 0x53C2) {}

void TreeSearch::generate_forward(ModelTree& tree, util::Rng& rng, double alpha,
                                  std::vector<NodeDecision>& decisions) {
  tree.reset();
  const nn::Model& base = evaluator_->base();
  const std::size_t num_blocks = tree.num_blocks();
  // BFS over the complete tree (Alg. 3 line 5).
  std::vector<TreeNode*> frontier;
  for (TreeNode& c : tree.root().children) frontier.push_back(&c);
  std::size_t head = 0;
  while (head < frontier.size()) {
    TreeNode* node = frontier[head++];
    const std::size_t j = node->depth;
    const std::size_t begin = tree.block_begin(j), end = tree.block_end(j);
    const std::size_t block_len = end - begin;
    const double bw_mbps = latency::bytes_per_ms_to_mbps(
        fork_bandwidths_[static_cast<std::size_t>(node->fork)]);

    NodeDecision d;
    d.node = node;
    d.block_features = LayerEmbedder::embed_range(base, begin, end, bw_mbps);

    // Partition decision for this block (Alg. 3 line 9), with fair-chance
    // exploration: force "no partition" with probability alpha*(N-j)/N.
    const double force_prob =
        alpha * static_cast<double>(num_blocks - j) / static_cast<double>(num_blocks);
    const auto p = partition_.sample(d.block_features, rng);
    int action = p.action;
    if (config_.fair_chance && rng.bernoulli(force_prob)) {
      action = static_cast<int>(block_len);  // no partition
      obs::count("cadmc.search.forced_actions");
    }
    d.partition_action = action;
    node->cut_local = static_cast<std::size_t>(action);

    // Compression decision for the block's edge side (Alg. 3 line 10).
    const std::size_t edge_end = begin + node->cut_local;
    node->block_plan.assign(node->cut_local, TechniqueId::kNone);
    d.compressed = node->cut_local > 0;
    if (d.compressed) {
      d.comp_features = LayerEmbedder::embed_range(base, begin, edge_end, bw_mbps);
      d.masks = evaluator_->technique_masks(begin, edge_end);
      const auto samples = compression_.sample(d.comp_features, d.masks, rng);
      d.compression_actions.resize(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i) {
        d.compression_actions[i] = samples[i].action;
        node->block_plan[i] = static_cast<TechniqueId>(samples[i].action);
      }
    }

    if (node->partitions(block_len)) {
      // Everything after the cut inherits the base DNN on the cloud
      // (Alg. 3 lines 18-21): terminal node, no children.
      node->children.clear();
    } else {
      for (TreeNode& c : node->children) frontier.push_back(&c);
    }
    decisions.push_back(std::move(d));
  }
}

void TreeSearch::estimate_backward(ModelTree& tree) const {
  const std::size_t num_blocks = tree.num_blocks();
  // Terminal nodes get their composed-branch reward (Alg. 3 lines 13-25);
  // parents then average their children (lines 27-31).
  std::vector<int> path;
  const std::function<void(TreeNode&)> walk = [&](TreeNode& node) {
    path.push_back(node.fork);
    if (node.children.empty()) {
      const auto ps = tree.strategy_for_path(path);
      std::vector<double> bandwidths(num_blocks,
                                     fork_bandwidths_[static_cast<std::size_t>(path.back())]);
      for (std::size_t level = 0; level < path.size() && level < num_blocks; ++level)
        bandwidths[level] = fork_bandwidths_[static_cast<std::size_t>(path[level])];
      const Evaluation eval = evaluator_->evaluate_trajectory(
          ps.strategy, boundaries_, bandwidths);
      node.reward = eval.reward;
    } else {
      double sum = 0.0;
      for (TreeNode& c : node.children) {
        walk(c);
        sum += c.reward;
      }
      node.reward = config_.backward_averaging
                        ? sum / static_cast<double>(node.children.size())
                        : 0.0;
    }
    path.pop_back();
  };
  double root_sum = 0.0;
  for (TreeNode& c : tree.root().children) {
    walk(c);
    root_sum += c.reward;
  }
  tree.root().reward = root_sum / static_cast<double>(tree.root().children.size());
}

double TreeSearch::tree_expected_reward(const ModelTree& tree) const {
  const std::size_t num_blocks = tree.num_blocks();
  const double k = static_cast<double>(tree.num_forks());
  double expected = 0.0;
  for (const auto& path : tree.all_paths()) {
    const auto ps = tree.strategy_for_path(path);
    std::vector<double> bandwidths(num_blocks,
                                   fork_bandwidths_[static_cast<std::size_t>(path.back())]);
    for (std::size_t level = 0; level < path.size() && level < num_blocks; ++level)
      bandwidths[level] = fork_bandwidths_[static_cast<std::size_t>(path[level])];
    const Evaluation eval =
        evaluator_->evaluate_trajectory(ps.strategy, boundaries_, bandwidths);
    expected += eval.reward * std::pow(1.0 / k, static_cast<double>(path.size()));
  }
  return expected;
}

TreeSearchResult TreeSearch::run() {
  obs::ScopedSpan run_span("tree_search");
  util::Rng rng(config_.seed);
  TreeSearchResult result{
      ModelTree(evaluator_->base(), boundaries_, fork_bandwidths_),
      0.0, 0.0, {}, {}};

  // Optimal-branch boosting: search a branch per bandwidth type and graft
  // each onto the all-k path of the incumbent tree (Sec. VII-A).
  if (config_.boost_with_branches) {
    obs::ScopedSpan boost_span("boost_branches");
    for (std::size_t k = 0; k < fork_bandwidths_.size(); ++k) {
      engine::BranchSearchConfig bc = config_.branch_config;
      bc.seed = config_.seed ^ (0xB0057ULL + k);
      engine::BranchSearch branch(*evaluator_, bc);
      auto br = branch.run(fork_bandwidths_[k]);
      result.best_branch_reward =
          std::max(result.best_branch_reward, br.best_eval.reward);
      result.branch_results.push_back(std::move(br));
    }
    // Mixed-fork paths inherit the strongest single branch as a floor; the
    // all-k paths then get their fork-matched branches (Sec. VII-A).
    std::size_t best_k = 0;
    for (std::size_t k = 1; k < result.branch_results.size(); ++k)
      if (result.branch_results[k].best_eval.reward >
          result.branch_results[best_k].best_eval.reward)
        best_k = k;
    result.tree.graft_everywhere(result.branch_results[best_k].best);
    for (std::size_t k = 0; k < result.branch_results.size(); ++k)
      result.tree.graft_branch(static_cast<int>(k),
                               result.branch_results[k].best);
    obs::count("cadmc.search.grafts",
               static_cast<std::int64_t>(1 + result.branch_results.size()));
  }
  estimate_backward(result.tree);
  result.tree_reward = result.tree.root().reward;

  // Extra boosts: graft each pre-trained branch onto every fork and keep
  // the strongest incumbent.
  for (const engine::Strategy& strategy : config_.extra_boost_strategies) {
    ModelTree boosted(evaluator_->base(), boundaries_, fork_bandwidths_);
    boosted.graft_everywhere(strategy);
    estimate_backward(boosted);
    obs::count("cadmc.search.grafts");
    if (boosted.root().reward > result.tree_reward) {
      result.tree_reward = boosted.root().reward;
      result.tree = boosted;
    }
  }

  rl::RewardBaseline baseline;
  ModelTree candidate(evaluator_->base(), boundaries_, fork_bandwidths_);
  for (int episode = 0; episode < config_.episodes; ++episode) {
    const double alpha =
        config_.alpha_decay_episodes > 0
            ? config_.alpha0 *
                  std::max(0.0, 1.0 - static_cast<double>(episode) /
                                          config_.alpha_decay_episodes)
            : 0.0;
    std::vector<NodeDecision> decisions;
    generate_forward(candidate, rng, alpha, decisions);
    estimate_backward(candidate);
    const double tree_reward = candidate.root().reward;
    result.log.record(tree_reward);
    if (tree_reward > result.tree_reward) {
      result.tree_reward = tree_reward;
      result.tree = candidate;
    }
    const double b = baseline.value();
    baseline.advantage(tree_reward);  // fold the episode into the EMA
    if (obs::enabled()) {
      obs::count("cadmc.search.episodes");
      obs::observe("cadmc.search.reward", tree_reward);
      obs::observe("cadmc.search.advantage", tree_reward - b);
      obs::set_gauge("cadmc.search.baseline", b);
      obs::set_gauge("cadmc.search.best_reward", result.tree_reward);
      obs::set_gauge("cadmc.search.alpha", alpha);
    }

    // Controller updates with each node's action-reward pair (Alg. 3 line 33).
    partition_.zero_grad();
    compression_.zero_grad();
    bool any_compression = false;
    for (const NodeDecision& d : decisions) {
      const double advantage = (d.node->reward - b) / 40.0;
      partition_.accumulate_grad(d.block_features, d.partition_action, advantage);
      if (d.compressed) {
        compression_.accumulate_grad(d.comp_features, d.masks,
                                     d.compression_actions, advantage);
        any_compression = true;
      }
    }
    partition_.step();
    if (any_compression) compression_.step();
  }
  return result;
}

}  // namespace cadmc::tree
