// Alg. 3 — "Model Tree Search": trains the partition/compression controllers
// over whole model trees using the two-stage latent reward assignment:
//  * forward generation — traverse the complete N-level K-fork tree in BFS
//    order, sampling per-block partition and compression actions conditioned
//    on each fork's representative bandwidth; nodes past a partition inherit
//    the base DNN with the cloud flag set;
//  * backward estimation — terminal nodes get the reward of their composed
//    branch (priced across the path's bandwidth trajectory), and every
//    parent receives the average of its children's rewards, propagated from
//    the leaves to the root.
// Includes the Sec. VII-A countermeasures: fair-chance exploration (forced
// no-partition probability alpha * (N-n)/N, decaying over episodes) and
// optimal-branch boosting (grafting per-fork Alg. 1 solutions into the
// incumbent tree so it never underperforms the optimal branch).
//
// The evaluation fan-outs — terminal-path pricing in estimate_backward /
// tree_expected_reward and the per-fork branch searches in boost mode — run
// on util::parallel_for against the thread-safe StrategyEvaluator. Results
// are bit-identical for any thread count: parallel stages only fill
// per-index slots, and every reduction (child averaging, expected-reward
// sum, incumbent selection) stays serial in the original order.
#pragma once

#include "engine/branch_search.h"
#include "tree/model_tree.h"

namespace cadmc::tree {

struct TreeSearchConfig {
  int episodes = 150;
  int hidden_dim = 24;
  std::uint64_t seed = 11;
  // Fair-chance exploration (Sec. VII-A): forced no-partition probability
  // alpha * (N - n) / N at tree level n; alpha decays linearly to zero over
  // `alpha_decay_episodes`.
  bool fair_chance = true;
  double alpha0 = 0.6;
  int alpha_decay_episodes = 40;
  // Optimal-branch boosting (Sec. VII-A).
  bool boost_with_branches = true;
  engine::BranchSearchConfig branch_config;
  // Additional pre-trained branch strategies grafted onto EVERY fork as
  // candidate incumbents (e.g. the Alg. 1 solution at the context's median
  // bandwidth) — "replace corresponding branches of the model tree with
  // these pre-trained branches" (Sec. VII-A).
  std::vector<engine::Strategy> extra_boost_strategies;
  // Ablation switch: when false, rewards are assigned to leaves only and
  // internal nodes keep reward 0 (no backward averaging).
  bool backward_averaging = true;
};

struct TreeSearchResult {
  ModelTree tree;                 // best tree found (decisions + rewards)
  double tree_reward = 0.0;       // root-averaged reward of the best tree
  double best_branch_reward = 0.0;  // best single-branch reward seen
  std::vector<engine::BranchSearchResult> branch_results;  // per fork (boosting)
  rl::EpisodeLog log;             // per-episode tree rewards
};

class TreeSearch {
 public:
  TreeSearch(const engine::StrategyEvaluator& evaluator,
             std::vector<std::size_t> boundaries,
             std::vector<double> fork_bandwidths,
             const TreeSearchConfig& config);

  TreeSearchResult run();

  /// Expected reward of a tree: mean leaf-branch reward weighted by the
  /// (uniform) probability of each fork path.
  double tree_expected_reward(const ModelTree& tree) const;

  /// Backward reward estimation (Alg. 3 lines 13-31): terminal nodes are
  /// priced across their bandwidth trajectory (in parallel), then parents —
  /// including the root — average their children when
  /// config.backward_averaging is set, and stay 0 otherwise.
  void estimate_backward(ModelTree& tree) const;

 private:
  struct NodeDecision {
    TreeNode* node = nullptr;
    tensor::Tensor block_features;  // partition-controller input (full block)
    tensor::Tensor comp_features;   // compression-controller input (edge side)
    int partition_action = 0;
    std::vector<std::vector<int>> masks;
    std::vector<int> compression_actions;
    bool compressed = false;  // whether compression actions were sampled
    bool forced = false;      // fair-chance override replaced the sample
  };
  void generate_forward(ModelTree& tree, util::Rng& rng, double alpha,
                        std::vector<NodeDecision>& decisions);

  const engine::StrategyEvaluator* evaluator_;
  std::vector<std::size_t> boundaries_;
  std::vector<double> fork_bandwidths_;
  TreeSearchConfig config_;
  controller::PartitionController partition_;
  controller::CompressionController compression_;
};

}  // namespace cadmc::tree
