#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace cadmc::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream ss;
    ss << v;
    row.push_back(ss.str());
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream ss;
  auto emit = [&ss](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) ss << ",";
      ss << row[i];
    }
    ss << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return ss.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::istringstream cell_stream(line);
    std::string cell;
    while (std::getline(cell_stream, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace cadmc::util
