// CSV reading/writing used by the bench harness to dump reproducible series
// (bandwidth traces, reward curves) alongside the printed tables.
#pragma once

#include <string>
#include <vector>

namespace cadmc::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& cells);

  /// Renders the whole document; header first.
  std::string to_string() const;

  /// Writes to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses a CSV document (no quoting support needed for our numeric dumps).
/// Returns rows including the header row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Loads a file into a string; returns false on failure.
bool read_file(const std::string& path, std::string& out);

/// Writes a string to a file (truncating); returns false on failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace cadmc::util
