#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <thread>

#include "util/string_util.h"

namespace cadmc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

// CADMC_LOG_LEVEL is applied exactly once, lazily; an explicit
// set_log_level() consumes the once-flag first so the environment can never
// clobber a level the program chose.
void apply_env_level() {
  const char* env = std::getenv("CADMC_LOG_LEVEL");
  if (env == nullptr) return;
  if (const auto level = parse_log_level(env)) g_level.store(*level);
}

std::string timestamp_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&t, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms.count()));
  return buf;
}

std::string thread_tag() {
  const auto id = std::hash<std::thread::id>{}(std::this_thread::get_id());
  char buf[16];
  std::snprintf(buf, sizeof(buf), "T%04x", static_cast<unsigned>(id & 0xFFFF));
  return buf;
}
}  // namespace

std::optional<LogLevel> parse_log_level(const std::string& name) {
  const std::string v = to_lower(trim(name));
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off" || v == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, [] {});  // explicit choice beats the environment
  g_level.store(level);
}

LogLevel log_level() {
  std::call_once(g_env_once, apply_env_level);
  return g_level.load();
}

void log_line(LogLevel level, const std::string& msg) {
  std::call_once(g_env_once, apply_env_level);
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << timestamp_now() << "] [" << thread_tag() << "] ["
            << level_name(level) << "] " << msg << "\n";
}

}  // namespace cadmc::util
