// Minimal leveled logger. Thread-safe, no global mutable configuration beyond
// the level, deterministic "[LEVEL]" token suitable for test greps.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace cadmc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that will be emitted. Defaults to kWarn so tests
/// and benches stay quiet unless they opt in. The CADMC_LOG_LEVEL
/// environment variable (debug|info|warn|error|off) is honored at first use
/// and overrides the default; an explicit set_log_level always wins.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
std::optional<LogLevel> parse_log_level(const std::string& name);

/// Emits one line to stderr:
/// "[YYYY-MM-DDTHH:MM:SS.mmm] [T<tid>] [LEVEL] message" — the timestamp and
/// thread-id prefix make interleaved edge/cloud logs attributable.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace cadmc::util
