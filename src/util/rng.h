// Deterministic, seedable random number generation. Every stochastic
// component in the library takes an explicit Rng (or a seed) — there is no
// global RNG state, so runs are reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace cadmc::util {

/// SplitMix64: used to expand one seed into stream seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's method without bias correction is fine for our n << 2^64.
    return next_u64() % n;
  }

  /// Integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (no cached value: keeps state simple).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Forks an independent stream (deterministic function of current state).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace cadmc::util
