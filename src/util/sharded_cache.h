// Striped-mutex memo cache: a string-keyed map split into fixed shards, each
// behind its own mutex, so concurrent readers on different keys rarely
// contend. Values are returned by copy — entries are immutable once
// inserted, and a copy keeps no lock or reference alive outside the shard.
//
// The insert-wins-once semantics (emplace; a racing duplicate is dropped)
// are safe precisely because every cached value is a pure function of its
// key: two threads that miss the same key compute identical values, so it
// does not matter whose insert lands.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cadmc::util {

/// FNV-1a 64-bit hash; also used to derive deterministic per-key RNG seeds
/// (engine::StrategyEvaluator), so it must stay platform-stable.
inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename Value>
class ShardedCache {
 public:
  static constexpr std::size_t kShards = 16;

  std::optional<Value> find(const std::string& key) const {
    const Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  /// Returns true when the key was newly inserted (false: a racing thread
  /// got there first; the existing entry is kept).
  bool insert(const std::string& key, Value value) {
    Shard& s = shard(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.map.emplace(key, std::move(value)).second;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      total += s.map.size();
    }
    return total;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.map.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Value> map;
  };

  const Shard& shard(const std::string& key) const {
    return shards_[fnv1a64(key) % kShards];
  }
  Shard& shard(const std::string& key) {
    return shards_[fnv1a64(key) % kShards];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace cadmc::util
