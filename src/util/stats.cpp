#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cadmc::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = fit.predict(xs[i]);
  fit.r2 = r_squared(ys, pred);
  return fit;
}

std::vector<double> fit_multilinear(const std::vector<std::vector<double>>& xs,
                                    std::span<const double> ys, double ridge) {
  assert(!xs.empty() && xs.size() == ys.size());
  const std::size_t dim = xs.front().size() + 1;  // + bias column
  // Build normal equations A w = b with A = X^T X + ridge I, b = X^T y.
  std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 0.0));
  std::vector<double> b(dim, 0.0);
  for (std::size_t r = 0; r < xs.size(); ++r) {
    std::vector<double> row = xs[r];
    row.push_back(1.0);
    for (std::size_t i = 0; i < dim; ++i) {
      b[i] += row[i] * ys[r];
      for (std::size_t j = 0; j < dim; ++j) a[i][j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) a[i][i] += ridge;
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::fabs(diag) < 1e-30) continue;
    for (std::size_t r = 0; r < dim; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / diag;
      for (std::size_t c = col; c < dim; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> w(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i)
    w[i] = std::fabs(a[i][i]) > 1e-30 ? b[i] / a[i][i] : 0.0;
  return w;  // weights..., bias
}

double r_squared(std::span<const double> y_true,
                 std::span<const double> y_pred) {
  assert(y_true.size() == y_pred.size() && !y_true.empty());
  const double my = mean(y_true);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - my) * (y_true[i] - my);
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-30 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  // Welford update: m2_ accumulates squared deviations without ever forming
  // sum(x^2), which loses all precision when mean^2 >> variance.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const {
  if (n_ == 0) return 0.0;
  const double v = m2_ / static_cast<double>(n_);  // population variance
  return v > 0.0 ? std::sqrt(v) : 0.0;
}

}  // namespace cadmc::util
