// Small statistics toolkit: summary statistics, quantiles, exponential moving
// average, and ordinary least squares (used to fit the latency models of
// Sec. V-B and to report R-squared in the Fig. 5 bench).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cadmc::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Precondition: !xs.empty().
double quantile(std::span<const double> xs, double q);

/// Exponential moving average; used as the REINFORCE reward baseline
/// (Sec. VI-D) and as the runtime bandwidth estimator.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}

  /// Feeds a sample and returns the updated average.
  double update(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Result of a simple (one regressor + intercept) least-squares fit.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination

  double predict(double x) const { return slope * x + intercept; }
};

/// Fits y = slope * x + intercept by OLS. Precondition: xs.size() == ys.size()
/// and xs.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Multiple linear regression y = w . x + b via normal equations with
/// Tikhonov damping for stability. Returns weights (size = dim) then bias.
std::vector<double> fit_multilinear(const std::vector<std::vector<double>>& xs,
                                    std::span<const double> ys,
                                    double ridge = 1e-9);

/// R^2 of predictions vs observations.
double r_squared(std::span<const double> y_true, std::span<const double> y_pred);

/// Streaming mean/min/max/stddev accumulator. Variance uses Welford's
/// online algorithm: the naive sum-of-squares formula cancels
/// catastrophically for large-mean/small-variance series — exactly the
/// shape of latency samples in ms.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cadmc::util
