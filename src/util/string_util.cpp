#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace cadmc::util {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) ss << sep;
    ss << parts[i];
  }
  return ss.str();
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace cadmc::util
