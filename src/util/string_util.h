#pragma once

#include <string>
#include <vector>

namespace cadmc::util {

std::vector<std::string> split(const std::string& s, char delim);
std::string join(const std::vector<std::string>& parts, const std::string& sep);
std::string trim(const std::string& s);
bool starts_with(const std::string& s, const std::string& prefix);
std::string to_lower(const std::string& s);

/// printf-style double formatting with fixed decimals.
std::string format_double(double v, int decimals);

/// FNV-1a over a string — used for the search memoization pool keys.
std::uint64_t fnv1a(const std::string& s);

}  // namespace cadmc::util
