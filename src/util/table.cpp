#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cadmc::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream ss;
  auto rule = [&] {
    ss << "+";
    for (std::size_t w : widths) ss << std::string(w + 2, '-') << "+";
    ss << "\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    ss << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      ss << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    ss << "\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return ss.str();
}

std::string sparkline(const std::vector<double>& ys) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (ys.empty()) return "";
  double lo = ys.front(), hi = ys.front();
  for (double y : ys) {
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  const double range = hi - lo;
  std::string out;
  for (double y : ys) {
    int idx = range > 0 ? static_cast<int>((y - lo) / range * 7.999) : 0;
    idx = std::clamp(idx, 0, 7);
    out += kBars[idx];
  }
  return out;
}

std::string ascii_chart(const std::vector<double>& ys, int rows, int cols) {
  if (ys.empty() || rows <= 0 || cols <= 0) return "";
  // Downsample to `cols` points by averaging buckets.
  std::vector<double> pts;
  pts.reserve(static_cast<std::size_t>(cols));
  const double step = static_cast<double>(ys.size()) / cols;
  for (int c = 0; c < cols; ++c) {
    const std::size_t b = static_cast<std::size_t>(c * step);
    const std::size_t e =
        std::min(ys.size(), static_cast<std::size_t>((c + 1) * step) + 1);
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = b; i < e; ++i, ++n) s += ys[i];
    pts.push_back(n ? s / static_cast<double>(n) : ys.back());
  }
  double lo = pts.front(), hi = pts.front();
  for (double p : pts) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double range = hi - lo > 0 ? hi - lo : 1.0;
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));
  for (int c = 0; c < cols; ++c) {
    int r = static_cast<int>((pts[static_cast<std::size_t>(c)] - lo) / range *
                             (rows - 1));
    r = std::clamp(r, 0, rows - 1);
    grid[static_cast<std::size_t>(rows - 1 - r)][static_cast<std::size_t>(c)] = '*';
  }
  std::ostringstream ss;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.2f", hi);
  ss << buf << " ┤" << grid.front() << "\n";
  for (int r = 1; r + 1 < rows; ++r)
    ss << std::string(10, ' ') << " │" << grid[static_cast<std::size_t>(r)] << "\n";
  std::snprintf(buf, sizeof(buf), "%10.2f", lo);
  ss << buf << " ┤" << grid.back() << "\n";
  return ss.str();
}

}  // namespace cadmc::util
