// ASCII table / sparkline rendering for the bench binaries, so every paper
// table and figure prints in a shape directly comparable to the publication.
#pragma once

#include <string>
#include <vector>

namespace cadmc::util {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a numeric series as a one-line unicode sparkline (for Fig. 1/7).
std::string sparkline(const std::vector<double>& ys);

/// Renders a multi-row ASCII line chart of height `rows` (for reward curves).
std::string ascii_chart(const std::vector<double>& ys, int rows, int cols);

}  // namespace cadmc::util
