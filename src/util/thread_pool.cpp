#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/logging.h"

namespace cadmc::util {

std::optional<std::size_t> parse_thread_count(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(ch - '0');
    if (value > kMaxThreadCount) return std::nullopt;  // also catches overflow
  }
  if (value == 0) return std::nullopt;
  return value;
}

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

std::size_t env_threads() {
  const char* env = std::getenv("CADMC_THREADS");
  if (!env || !*env) return 0;
  const auto parsed = parse_thread_count(env);
  if (!parsed) {
    // std::stoll used to accept "4x" (silently as 4) and threw on overflow
    // (silently swallowed); now any non-strict value is rejected loudly,
    // once, and the hardware default applies.
    static std::once_flag warned;
    std::call_once(warned, [env] {
      log_warn() << "ignoring invalid CADMC_THREADS='" << env
                 << "' (expected an integer in 1.." << kMaxThreadCount
                 << "); using the hardware default";
    });
    return 0;
  }
  return *parsed;
}

// 0 = "use env/hardware default".
std::atomic<std::size_t> g_configured_threads{0};

}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

std::size_t configured_threads() {
  const std::size_t n = g_configured_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  const std::size_t env = env_threads();
  return env > 0 ? env : hardware_threads();
}

void set_configured_threads(std::size_t n) {
  g_configured_threads.store(n, std::memory_order_relaxed);
}

ThreadPool& global_pool() {
  // Sized once for the largest plausible fan-out: the configured count may
  // drop to 1 later (determinism tests flip it), which just idles workers.
  static ThreadPool pool(
      std::max(configured_threads(), hardware_threads()) - 1);
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::size_t threads = configured_threads();
  if (n <= 1 || threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::size_t total = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->total = n;
  state->fn = &fn;

  // Shared-pull loop: claim the next index until the range is exhausted.
  // Helpers and the caller run the same loop, so progress never depends on
  // the pool actually scheduling anything.
  const auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->total) return;
      try {
        (*s->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mutex);
        if (!s->error) s->error = std::current_exception();
      }
      if (s->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          s->total) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->done_cv.notify_all();
      }
    }
  };

  ThreadPool& pool = global_pool();
  const std::size_t helpers =
      std::min({threads - 1, pool.workers(), n - 1});
  for (std::size_t h = 0; h < helpers; ++h)
    pool.submit([state, drain] { drain(state); });

  drain(state);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == state->total;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for_if(bool parallel, std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (parallel) {
    parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace cadmc::util
