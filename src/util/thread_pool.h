// Fixed-size thread pool and the `parallel_for` fan-out primitive used by
// the search hot paths (tree backward estimation, per-fork branch search,
// baseline-search populations).
//
// Concurrency model:
//  * One lazily-created global pool shared by every fan-out site. Its worker
//    count is resolved once, from `--threads` / set_configured_threads() or
//    the CADMC_THREADS environment variable, defaulting to
//    std::thread::hardware_concurrency().
//  * parallel_for(n, fn) is work-sharing: the *calling* thread claims indices
//    from the same atomic counter as the pool workers, so the call completes
//    even when every pool worker is busy (or the pool has zero workers) —
//    nested parallel_for calls cannot deadlock.
//  * Determinism contract: fn(i) must write only into slot i of its output;
//    under that contract results are bit-identical for any thread count,
//    which is what the `ctest -L search` determinism suite asserts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace cadmc::util {

/// Upper bound accepted by parse_thread_count — far above any real machine,
/// low enough that an overflowed or garbage value can never wedge the pool.
inline constexpr std::size_t kMaxThreadCount = 4096;

/// Strict parse of a thread-count string: decimal digits only, no sign, no
/// whitespace, no trailing garbage ("4x" is an error, not 4), value in
/// [1, kMaxThreadCount]. Returns nullopt on any violation — used by both
/// the CADMC_THREADS environment variable (which warns once and falls back
/// to the hardware default) and the CLI --threads flag (which errors out).
std::optional<std::size_t> parse_thread_count(std::string_view text);

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is legal: submit() then queues tasks that
  /// only ever run via an external drain, which parallel_for provides).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw (parallel_for wraps user
  /// callables and captures their exceptions itself).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Hardware thread count, never 0.
std::size_t hardware_threads();

/// The effective thread count for parallel_for: the last
/// set_configured_threads() value, else CADMC_THREADS, else
/// hardware_threads(). Always >= 1.
std::size_t configured_threads();

/// Overrides the thread count (CLI --threads). 0 resets to the
/// environment/hardware default.
void set_configured_threads(std::size_t n);

/// The shared pool behind parallel_for, created on first use.
ThreadPool& global_pool();

/// Runs fn(0..n-1) across the global pool plus the calling thread; returns
/// once every index completed. Serial (no pool touched) when n <= 1 or
/// configured_threads() == 1. The first exception thrown by fn is rethrown
/// on the caller after the loop drains.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallel_for when `parallel` is true, a plain serial loop otherwise — for
/// callers (e.g. the tensor kernels) that gate pool dispatch on a work-size
/// threshold. The serial branch touches no pool machinery at all, so tiny
/// operations stay allocation- and lock-free.
void parallel_for_if(bool parallel, std::size_t n,
                     const std::function<void(std::size_t)>& fn);

}  // namespace cadmc::util
