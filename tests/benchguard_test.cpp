// Perf-regression guard suite (`ctest -L obs`): PerfStats measurement and
// JSON round-trip, and the --compare verdict logic — a synthetic 2x p50
// slowdown must be flagged, noise inside the threshold must not.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "bench/perf_core.h"

namespace cadmc::bench {
namespace {

std::string temp_dir(const std::string& leaf) {
  const std::string dir = std::string(::testing::TempDir()) + leaf;
  std::filesystem::create_directories(dir);
  return dir;
}

PerfStats make_stats(const std::string& name, double p50) {
  PerfStats stats;
  stats.name = name;
  stats.unit = "us";
  stats.repetitions = 10;
  stats.warmup = 2;
  stats.p50 = p50;
  stats.p90 = p50 * 1.2;
  stats.p99 = p50 * 1.5;
  stats.mean = p50 * 1.1;
  stats.min = p50 * 0.9;
  stats.max = p50 * 2.0;
  stats.throughput_per_s = 1e6 / p50;
  return stats;
}

TEST(PerfMeasure, ProducesOrderedQuantiles) {
  int calls = 0;
  const PerfStats stats = measure("noop", 3, 20, [&] { ++calls; });
  EXPECT_EQ(calls, 23);  // warmup + repetitions
  EXPECT_EQ(stats.repetitions, 20);
  EXPECT_GE(stats.p90, stats.p50);
  EXPECT_GE(stats.p99, stats.p90);
  EXPECT_GE(stats.max, stats.min);
  EXPECT_GT(stats.throughput_per_s, 0.0);
}

TEST(PerfJson, RoundTripsThroughFile) {
  const std::string dir = temp_dir("cadmc_benchguard_roundtrip");
  const PerfStats original = make_stats("roundtrip_bench", 123.456);
  ASSERT_TRUE(write_perf_json(dir, original));
  PerfStats loaded;
  ASSERT_TRUE(load_perf_json(dir + "/BENCH_roundtrip_bench.json", loaded));
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.unit, original.unit);
  EXPECT_EQ(loaded.repetitions, original.repetitions);
  EXPECT_NEAR(loaded.p50, original.p50, 1e-3);
  EXPECT_NEAR(loaded.p99, original.p99, 1e-3);
  EXPECT_NEAR(loaded.throughput_per_s, original.throughput_per_s, 1.0);
  std::filesystem::remove_all(dir);
}

TEST(PerfJson, LoadRejectsMissingAndForeignFiles) {
  PerfStats stats;
  EXPECT_FALSE(load_perf_json("/nonexistent/BENCH_x.json", stats));
  const std::string dir = temp_dir("cadmc_benchguard_foreign");
  const std::string path = dir + "/BENCH_foreign.json";
  {
    std::ofstream out(path);
    out << "{\"type\":\"counter\",\"name\":\"not_a_bench\",\"value\":1}\n";
  }
  EXPECT_FALSE(load_perf_json(path, stats));
  std::filesystem::remove_all(dir);
}

/// The acceptance check: a synthetic 2x slowdown against the baseline must
/// be reported as a regression; noise inside the threshold must not.
TEST(PerfCompare, FlagsSyntheticTwoXSlowdown) {
  const std::string baseline = temp_dir("cadmc_benchguard_baseline");
  ASSERT_TRUE(write_perf_json(baseline, make_stats("slowed", 100.0)));
  ASSERT_TRUE(write_perf_json(baseline, make_stats("steady", 100.0)));

  const std::vector<PerfStats> current = {
      make_stats("slowed", 200.0),  // 2x slower -> regression
      make_stats("steady", 110.0),  // +10% -> inside the 15% budget
      make_stats("brand_new", 50.0)  // no baseline yet -> not a regression
  };
  const auto results = compare_perf(current, baseline, 0.15);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_EQ(results[0].name, "slowed");
  EXPECT_TRUE(results[0].regressed);
  EXPECT_NEAR(results[0].ratio, 2.0, 1e-6);

  EXPECT_EQ(results[1].name, "steady");
  EXPECT_FALSE(results[1].regressed);
  EXPECT_NEAR(results[1].ratio, 1.1, 1e-6);

  EXPECT_EQ(results[2].name, "brand_new");
  EXPECT_TRUE(results[2].missing_baseline);
  EXPECT_FALSE(results[2].regressed);
  std::filesystem::remove_all(baseline);
}

TEST(PerfCompare, SpeedupsAndExactMatchesPass) {
  const std::string baseline = temp_dir("cadmc_benchguard_speedup");
  ASSERT_TRUE(write_perf_json(baseline, make_stats("fast", 100.0)));
  const auto results =
      compare_perf({make_stats("fast", 50.0)}, baseline, 0.15);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].regressed);
  EXPECT_NEAR(results[0].ratio, 0.5, 1e-6);
  std::filesystem::remove_all(baseline);
}

/// End-to-end: run the real suite (cheapest benchmark only), then compare
/// against a baseline doctored to be 2x faster — the suite must exit 1.
TEST(PerfSuite, EndToEndCompareExitCodes) {
  const std::string out = temp_dir("cadmc_benchguard_suite_out");
  const std::string baseline = temp_dir("cadmc_benchguard_suite_base");

  PerfSuiteConfig config;
  config.repetitions = 5;
  config.warmup = 1;
  config.filter = "span_overhead_disabled";
  config.out_dir = out;
  config.quiet = true;
  // Generous threshold: this asserts the verdict plumbing, not machine noise.
  config.threshold = 0.5;
  ASSERT_EQ(run_perf_suite(config), 0);

  PerfStats measured;
  ASSERT_TRUE(load_perf_json(out + "/BENCH_span_overhead_disabled.json",
                             measured));
  ASSERT_GT(measured.p50, 0.0);

  // Baseline claiming we used to be 2x faster -> current run regresses.
  PerfStats fast = measured;
  fast.p50 = measured.p50 / 2.0;
  ASSERT_TRUE(write_perf_json(baseline, fast));
  config.compare_dir = baseline;
  EXPECT_EQ(run_perf_suite(config), 1);

  // Baseline equal to the current run -> clean exit.
  ASSERT_TRUE(write_perf_json(baseline, measured));
  EXPECT_EQ(run_perf_suite(config), 0);

  std::filesystem::remove_all(out);
  std::filesystem::remove_all(baseline);
}

TEST(PerfSuite, UnknownFilterFailsLoudly) {
  PerfSuiteConfig config;
  config.filter = "no_such_benchmark";
  config.out_dir = std::string(::testing::TempDir());
  config.quiet = true;
  EXPECT_EQ(run_perf_suite(config), 2);
}

}  // namespace
}  // namespace cadmc::bench
