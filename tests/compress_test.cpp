// Table II compression-technique tests: applicability rules, structural
// effects (shape preservation, MACC/parameter reduction), weight
// faithfulness (F1 approximates the original function), pruning rewiring,
// and registry plan application.
#include <gtest/gtest.h>

#include "compress/registry.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/factory.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace cadmc::compress {
namespace {

using nn::Model;
using nn::Shape;
using tensor::Tensor;

Model conv_chain(std::uint64_t seed = 60) {
  util::Rng rng(seed);
  Model m({16, 8, 8});
  m.add(std::make_unique<nn::Conv2d>(16, 32, 3, 1, 1, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Conv2d>(32, 32, 3, 1, 1, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Flatten>());
  m.add(std::make_unique<nn::Linear>(32 * 8 * 8, 64, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Linear>(64, 10, rng));
  return m;
}

TEST(TechniqueNames, AllDistinct) {
  for (int a = 0; a < kTechniqueCount; ++a)
    for (int b = a + 1; b < kTechniqueCount; ++b)
      EXPECT_NE(technique_name(static_cast<TechniqueId>(a)),
                technique_name(static_cast<TechniqueId>(b)));
  EXPECT_EQ(technique_short_name(TechniqueId::kF1Svd), "F1");
  EXPECT_EQ(technique_short_name(TechniqueId::kW1FilterPrune), "W1");
}

TEST(Svd, ApplicableOnlyToLargeEnoughFc) {
  Model m = conv_chain();
  SvdTransform svd;
  EXPECT_FALSE(svd.applicable(m, 0));  // conv
  EXPECT_FALSE(svd.applicable(m, 1));  // relu
  EXPECT_TRUE(svd.applicable(m, 5));   // 2048 -> 64
  EXPECT_TRUE(svd.applicable(m, 7));   // 64 -> 10
}

TEST(Svd, ReducesParamsKeepsShape) {
  Model m = conv_chain();
  const Shape out_before = m.boundary_shapes().back();
  const std::int64_t params_before = m.param_count();
  util::Rng rng(61);
  SvdTransform svd(0.25);
  ASSERT_TRUE(svd.apply(m, 5, rng));
  EXPECT_EQ(m.boundary_shapes().back(), out_before);
  EXPECT_LT(m.param_count(), params_before);
}

TEST(Svd, FaithfulWeightsApproximateFunction) {
  util::Rng rng(62);
  Model m({64});
  m.add(std::make_unique<nn::Linear>(64, 32, rng));
  // Make the weight approximately low-rank so rank-16 SVD is accurate.
  auto& fc = dynamic_cast<nn::Linear&>(m.layer(0));
  const Tensor u = Tensor::randn({32, 8}, rng);
  const Tensor v = Tensor::randn({8, 64}, rng);
  fc.weight() = tensor::matmul(u, v);
  const Tensor x = Tensor::randn({4, 64}, rng);
  const Tensor y_before = m.forward(x);

  SvdTransform svd(0.5);  // rank 16 >= true rank 8
  ASSERT_TRUE(svd.apply(m, 0, rng));
  const Tensor y_after = m.forward(x);
  EXPECT_LT(Tensor::max_abs_diff(y_before, y_after) / y_before.abs_max(), 0.01f);
}

TEST(Svd, UnfaithfulModeKeepsStructureOnly) {
  util::Rng rng(63);
  Model m({64});
  m.add(std::make_unique<nn::Linear>(64, 32, rng));
  const Tensor x = Tensor::randn({1, 64}, rng);
  const Tensor y_before = m.forward(x);
  SvdTransform svd(0.25, /*faithful=*/false);
  ASSERT_TRUE(svd.apply(m, 0, rng));
  EXPECT_EQ(m.boundary_shapes().back(), (Shape{32}));
  // Weights are placeholders: the function changes.
  EXPECT_GT(Tensor::max_abs_diff(y_before, m.forward(x)), 0.01f);
}

TEST(Ksvd, SparsifiesFactors) {
  Model m = conv_chain();
  util::Rng rng(64);
  KsvdTransform ksvd(0.25, 0.4);
  ASSERT_TRUE(ksvd.apply(m, 5, rng));
  // The replacement block holds two Linears; both should be sparse.
  auto* block = dynamic_cast<nn::SequentialBlock*>(&m.layer(5));
  ASSERT_NE(block, nullptr);
  auto* first = dynamic_cast<nn::Linear*>(&block->layer(0));
  ASSERT_NE(first, nullptr);
  EXPECT_GT(first->sparsity(), 0.5);
}

TEST(Ksvd, MaccFollowsSpecNotSparsity) {
  // MACC model counts the dense factor shapes (Eqn. 5); KSVD reduces size
  // via rank exactly like SVD.
  Model m1 = conv_chain(), m2 = conv_chain();
  util::Rng rng(65);
  SvdTransform svd(0.25);
  KsvdTransform ksvd(0.25, 0.4);
  ASSERT_TRUE(svd.apply(m1, 5, rng));
  ASSERT_TRUE(ksvd.apply(m2, 5, rng));
  EXPECT_EQ(m1.total_macc(), m2.total_macc());
}

TEST(Gap, ApplicableOnlyAtFirstFcAfterFlatten) {
  Model m = conv_chain();
  GapTransform gap;
  EXPECT_TRUE(gap.applicable(m, 5));
  EXPECT_FALSE(gap.applicable(m, 7));  // not preceded by Flatten
  EXPECT_FALSE(gap.applicable(m, 0));
}

TEST(Gap, ReplacesTailWithConvAndPooling) {
  Model m = conv_chain();
  util::Rng rng(66);
  GapTransform gap;
  ASSERT_TRUE(gap.apply(m, 5, rng));
  // Tail is now ... conv1x1 -> gap; output still 10 classes.
  EXPECT_EQ(m.boundary_shapes().back(), (Shape{10}));
  EXPECT_EQ(m.layer(m.size() - 1).spec().type, "gap");
  const Tensor x = Tensor::randn({1, 16, 8, 8}, rng, 0.3f);
  EXPECT_EQ(m.forward(x).shape(), (tensor::Shape{1, 10}));
}

TEST(Gap, MassiveParamReduction) {
  Model m = conv_chain();
  const std::int64_t before = m.param_count();
  util::Rng rng(67);
  GapTransform gap;
  ASSERT_TRUE(gap.apply(m, 5, rng));
  EXPECT_LT(m.param_count(), before / 3);
}

TEST(MobileNet, ReplacesConvWithDepthwiseSeparable) {
  Model m = conv_chain();
  const std::int64_t macc_before = m.total_macc();
  const Shape shape_before = m.shape_after(0);
  util::Rng rng(68);
  MobileNetTransform c1;
  ASSERT_TRUE(c1.apply(m, 0, rng));
  EXPECT_EQ(m.shape_after(0), shape_before);
  EXPECT_LT(m.total_macc(), macc_before);
  EXPECT_EQ(m.layer(0).name(), "conv_dws");
}

TEST(MobileNet, NotApplicableToSmallOr1x1Convs) {
  util::Rng rng(69);
  Model m({4, 8, 8});
  m.add(std::make_unique<nn::Conv2d>(4, 8, 3, 1, 1, rng));    // too few channels
  m.add(std::make_unique<nn::Conv2d>(8, 16, 1, 1, 0, rng));   // 1x1
  MobileNetTransform c1;
  EXPECT_FALSE(c1.applicable(m, 0));
  EXPECT_FALSE(c1.applicable(m, 1));
}

TEST(MobileNetV2, PreservesShapeReducesMacc) {
  Model m = conv_chain();
  const auto shapes_before = m.boundary_shapes();
  const std::int64_t macc_before = m.layer_maccs()[2];
  util::Rng rng(70);
  MobileNetV2Transform c2;
  ASSERT_TRUE(c2.apply(m, 2, rng));
  EXPECT_EQ(m.shape_after(2), shapes_before[3]);
  EXPECT_LT(m.layer_maccs()[2], macc_before);
}

TEST(SqueezeNet, FirePreservesChannelsReducesMacc) {
  Model m = conv_chain();
  const std::int64_t macc_before = m.layer_maccs()[2];
  util::Rng rng(71);
  SqueezeNetTransform c3;
  ASSERT_TRUE(c3.apply(m, 2, rng));
  EXPECT_EQ(m.layer(2).name(), "fire");
  EXPECT_EQ(m.shape_after(2)[0], 32);
  EXPECT_LT(m.layer_maccs()[2], macc_before);
}

TEST(SqueezeNet, RequiresStrideOnePadded) {
  util::Rng rng(72);
  Model m({16, 8, 8});
  m.add(std::make_unique<nn::Conv2d>(16, 32, 3, 2, 1, rng));  // stride 2
  SqueezeNetTransform c3;
  EXPECT_FALSE(c3.applicable(m, 0));
}

TEST(FilterPrune, RemovesLowSaliencyFiltersAndRewires) {
  Model m = conv_chain();
  auto& conv0 = dynamic_cast<nn::Conv2d&>(m.layer(0));
  // Make filters 0..7 tiny so they are pruned first.
  for (int f = 0; f < 8; ++f)
    for (int c = 0; c < 16; ++c)
      for (int k = 0; k < 9; ++k)
        conv0.weight().at((f * 16 + c) * 9 + k) *= 1e-4f;
  util::Rng rng(73);
  FilterPruneTransform w1(0.25);  // prune 8 of 32
  ASSERT_TRUE(w1.applicable(m, 0));
  ASSERT_TRUE(w1.apply(m, 0, rng));
  EXPECT_EQ(dynamic_cast<nn::Conv2d&>(m.layer(0)).out_channels(), 24);
  EXPECT_EQ(dynamic_cast<nn::Conv2d&>(m.layer(2)).in_channels(), 24);
  // The model still runs end to end.
  const Tensor x = Tensor::randn({1, 16, 8, 8}, rng, 0.3f);
  EXPECT_EQ(m.forward(x).shape(), (tensor::Shape{1, 10}));
}

TEST(FilterPrune, PrunedOutputCloseToOriginal) {
  // With near-zero filters pruned, the consumer's view barely changes.
  Model m = conv_chain(74);
  auto& conv0 = dynamic_cast<nn::Conv2d&>(m.layer(0));
  for (int f = 0; f < 8; ++f)
    for (int i = 0; i < 16 * 9; ++i)
      conv0.weight().at(f * 16 * 9 + i) = 0.0f;
  conv0.bias().fill(0.0f);
  util::Rng rng(75);
  const Tensor x = Tensor::randn({1, 16, 8, 8}, rng, 0.3f);
  const Tensor y_before = m.forward(x);
  FilterPruneTransform w1(0.25);
  ASSERT_TRUE(w1.apply(m, 0, rng));
  const Tensor y_after = m.forward(x);
  EXPECT_LT(Tensor::max_abs_diff(y_before, y_after), 1e-4f);
}

TEST(FilterPrune, NotApplicableWithoutDownstreamConv) {
  Model m = conv_chain();
  FilterPruneTransform w1;
  // Layer 2's output feeds flatten+fc, not a conv.
  EXPECT_FALSE(w1.applicable(m, 2));
}

TEST(Registry, CatalogContainsAllSeven) {
  TechniqueRegistry registry;
  EXPECT_EQ(registry.all().size(), 7u);
  EXPECT_EQ(registry.technique(TechniqueId::kF3Gap).id(), TechniqueId::kF3Gap);
  EXPECT_THROW(registry.technique(TechniqueId::kNone), std::invalid_argument);
}

TEST(Registry, ApplicableAlwaysIncludesNoneFirst) {
  TechniqueRegistry registry;
  const Model m = conv_chain();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const auto ids = registry.applicable(m, i);
    ASSERT_FALSE(ids.empty());
    EXPECT_EQ(ids.front(), TechniqueId::kNone);
  }
}

TEST(Registry, ConvLayersOfferConvTechniques) {
  TechniqueRegistry registry;
  const Model m = conv_chain();
  const auto ids = registry.applicable(m, 2);
  EXPECT_NE(std::find(ids.begin(), ids.end(), TechniqueId::kC1MobileNet), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), TechniqueId::kC3SqueezeNet), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), TechniqueId::kF1Svd), ids.end());
}

TEST(Registry, ApplyPlanBackToFrontHandlesIndexShifts) {
  Model m = conv_chain();
  util::Rng rng(76);
  TechniqueRegistry registry;
  std::vector<TechniqueId> plan(m.size(), TechniqueId::kNone);
  plan[0] = TechniqueId::kC1MobileNet;  // replaces layer 0 with a block
  plan[5] = TechniqueId::kF1Svd;        // fc at index 5
  EXPECT_EQ(registry.apply_plan(plan, m, rng), 2);
  // Model still produces 10 classes.
  EXPECT_EQ(m.boundary_shapes().back(), (Shape{10}));
}

TEST(Registry, ApplyPlanSizeMismatchThrows) {
  Model m = conv_chain();
  util::Rng rng(77);
  TechniqueRegistry registry;
  EXPECT_THROW(registry.apply_plan({TechniqueId::kNone}, m, rng),
               std::invalid_argument);
}

TEST(Registry, NoneIsSuccessfulNoop) {
  Model m = conv_chain();
  util::Rng rng(78);
  TechniqueRegistry registry;
  EXPECT_TRUE(registry.apply(TechniqueId::kNone, m, 0, rng));
  EXPECT_EQ(m.size(), conv_chain().size());
}

TEST(Registry, ExtensionsGatedBehindFlag) {
  TechniqueRegistry paper;          // Table II only
  TechniqueRegistry extended(true, true);
  EXPECT_EQ(paper.all().size(), 7u);
  EXPECT_EQ(extended.all().size(), 8u);
  EXPECT_THROW(paper.technique(TechniqueId::kQ1Quantize),
               std::invalid_argument);
  EXPECT_EQ(extended.technique(TechniqueId::kQ1Quantize).id(),
            TechniqueId::kQ1Quantize);
}

TEST(Registry, Vgg11EveryTechniqueApplicableSomewhere) {
  TechniqueRegistry registry(true, true);  // include the Q1 extension
  const Model m = nn::make_vgg11();
  bool seen[kTechniqueCount] = {};
  for (std::size_t i = 0; i < m.size(); ++i)
    for (TechniqueId id : registry.applicable(m, i))
      seen[static_cast<int>(id)] = true;
  for (int t = 0; t < kTechniqueCount; ++t)
    EXPECT_TRUE(seen[t]) << technique_name(static_cast<TechniqueId>(t));
}

/// Property sweep: every applicable technique preserves the model's final
/// output shape when applied anywhere in VGG11.
class TechniqueSweep : public ::testing::TestWithParam<int> {};

TEST_P(TechniqueSweep, PreservesFinalOutputShapeOnVgg11) {
  const TechniqueId id = static_cast<TechniqueId>(GetParam());
  TechniqueRegistry registry(true, true);  // include the Q1 extension
  util::Rng rng(80 + GetParam());
  const Model base = nn::make_vgg11();
  int applied = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (!registry.technique(id).applicable(base, i)) continue;
    Model m = base;
    ASSERT_TRUE(registry.apply(id, m, i, rng));
    EXPECT_EQ(m.boundary_shapes().back(), (Shape{10}))
        << technique_name(id) << " at layer " << i;
    EXPECT_LE(m.param_count(), base.param_count())
        << technique_name(id) << " should not grow params at layer " << i;
    ++applied;
    if (applied >= 3) break;  // bound runtime; 3 sites per technique
  }
  EXPECT_GT(applied, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, TechniqueSweep,
                         ::testing::Range(1, kTechniqueCount));

}  // namespace
}  // namespace cadmc::compress
