// Controller tests: LSTM forward/backward (numerical gradient check),
// bidirectional wiring, layer embedding, masked softmax policies, and
// REINFORCE learning on bandit problems for both controllers (Fig. 6).
#include <gtest/gtest.h>

#include <cmath>

#include "controller/controllers.h"
#include "controller/lstm.h"
#include "nn/factory.h"

namespace cadmc::controller {
namespace {

TEST(Lstm, OutputShape) {
  util::Rng rng(1);
  Lstm lstm(5, 7, rng);
  const Tensor hs = lstm.forward(Tensor::randn({4, 5}, rng));
  EXPECT_EQ(hs.shape(), (tensor::Shape{4, 7}));
}

TEST(Lstm, HiddenStatesBounded) {
  util::Rng rng(2);
  Lstm lstm(3, 6, rng);
  const Tensor hs = lstm.forward(Tensor::randn({10, 3}, rng, 5.0f));
  // h = o * tanh(c) with o in (0,1): |h| < 1.
  EXPECT_LT(hs.abs_max(), 1.0f);
}

TEST(Lstm, StateCarriesInformationAcrossTime) {
  // A distinctive first input should change the last hidden state.
  util::Rng rng(3);
  Lstm lstm(2, 8, rng);
  Tensor a({6, 2}), b({6, 2});
  a(0, 0) = 5.0f;
  b(0, 0) = -5.0f;
  const Tensor ha = lstm.forward(a);
  const Tensor hb = lstm.forward(b);
  float diff = 0.0f;
  for (int j = 0; j < 8; ++j) diff += std::fabs(ha(5, j) - hb(5, j));
  EXPECT_GT(diff, 1e-3f);
}

TEST(Lstm, GradientCheckThroughTime) {
  util::Rng rng(4);
  Lstm lstm(3, 4, rng);
  const Tensor xs = Tensor::randn({5, 3}, rng);
  const Tensor hs = lstm.forward(xs);
  // Smooth loss: sum of squares of all hidden states.
  Tensor grad_hs = hs;
  grad_hs.scale_(2.0f);
  lstm.zero_grad();
  const Tensor grad_xs = lstm.backward(grad_hs);

  auto loss = [&](const Tensor& x) {
    const Tensor y = lstm.forward(x);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i)
      s += static_cast<double>(y.at(i)) * y.at(i);
    return s;
  };
  const float eps = 1e-3f;
  util::Rng pick(5);
  for (int check = 0; check < 8; ++check) {
    Tensor xp = xs, xm = xs;
    const std::int64_t i = static_cast<std::int64_t>(
        pick.uniform_index(static_cast<std::uint64_t>(xs.numel())));
    xp.at(i) += eps;
    xm.at(i) -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(grad_xs.at(i), numeric,
                std::max(2e-3, 0.03 * std::fabs(numeric)));
  }
  // Parameter gradients.
  lstm.forward(xs);
  lstm.zero_grad();
  lstm.backward(grad_hs);
  auto params = lstm.params();
  auto grads = lstm.grads();
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (int check = 0; check < 3; ++check) {
      Tensor& w = *params[p];
      const std::int64_t i = static_cast<std::int64_t>(
          pick.uniform_index(static_cast<std::uint64_t>(w.numel())));
      const float orig = w.at(i);
      w.at(i) = orig + eps;
      const double lp = loss(xs);
      w.at(i) = orig - eps;
      const double lm = loss(xs);
      w.at(i) = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grads[p]->at(i), numeric,
                  std::max(5e-3, 0.05 * std::fabs(numeric)))
          << "param " << p;
    }
  }
}

TEST(BiLstm, ConcatenatesBothDirections) {
  util::Rng rng(6);
  BiLstm bilstm(3, 5, rng);
  EXPECT_EQ(bilstm.output_dim(), 10);
  const Tensor hs = bilstm.forward(Tensor::randn({4, 3}, rng));
  EXPECT_EQ(hs.shape(), (tensor::Shape{4, 10}));
}

TEST(BiLstm, BackwardHalfSeesFuture) {
  // Changing the LAST input must change the FIRST position's output via the
  // reverse direction.
  util::Rng rng(7);
  BiLstm bilstm(2, 4, rng);
  Tensor a({5, 2}), b({5, 2});
  a(4, 0) = 3.0f;
  b(4, 0) = -3.0f;
  const Tensor ha = bilstm.forward(a);
  const Tensor hb = bilstm.forward(b);
  float diff_fwd = 0.0f, diff_bwd = 0.0f;
  for (int j = 0; j < 4; ++j) {
    diff_fwd += std::fabs(ha(0, j) - hb(0, j));       // forward half
    diff_bwd += std::fabs(ha(0, 4 + j) - hb(0, 4 + j));  // backward half
  }
  EXPECT_EQ(diff_fwd, 0.0f);   // forward LSTM cannot see the future
  EXPECT_GT(diff_bwd, 1e-4f);  // backward LSTM can
}

TEST(BiLstm, GradientFlowsToAllInputs) {
  util::Rng rng(8);
  BiLstm bilstm(2, 3, rng);
  const Tensor xs = Tensor::randn({4, 2}, rng);
  const Tensor hs = bilstm.forward(xs);
  Tensor grad = Tensor::ones(hs.shape());
  const Tensor gx = bilstm.backward(grad);
  EXPECT_EQ(gx.shape(), xs.shape());
  for (int t = 0; t < 4; ++t) {
    float row = 0.0f;
    for (int j = 0; j < 2; ++j) row += std::fabs(gx(t, j));
    EXPECT_GT(row, 0.0f) << "no gradient at position " << t;
  }
}

TEST(Embedder, ShapeAndTypeBuckets) {
  const nn::Model m = nn::make_vgg11();
  const Tensor f = LayerEmbedder::embed(m, 5.0);
  EXPECT_EQ(f.dim(0), static_cast<int>(m.size()));
  EXPECT_EQ(f.dim(1), LayerEmbedder::kDim);
  // Layer 0 is a conv: bucket 0 hot.
  EXPECT_EQ(f(0, 0), 1.0f);
  EXPECT_EQ(LayerEmbedder::type_bucket("fc"), 5);
  EXPECT_EQ(LayerEmbedder::type_bucket("unknown_thing"), 11);
}

TEST(Embedder, BandwidthFeatureMonotone) {
  const nn::Model m = nn::make_mlp(4, 8, 2);
  const Tensor lo = LayerEmbedder::embed(m, 1.0);
  const Tensor hi = LayerEmbedder::embed(m, 50.0);
  EXPECT_LT(lo(0, LayerEmbedder::kTypeBuckets + 4),
            hi(0, LayerEmbedder::kTypeBuckets + 4));
}

TEST(Embedder, EmbedRangeMatchesSliceEmbedding) {
  const nn::Model m = nn::make_vgg11();
  const Tensor full = LayerEmbedder::embed(m, 3.0);
  const Tensor range = LayerEmbedder::embed_range(m, 2, 7, 3.0);
  ASSERT_EQ(range.dim(0), 5);
  for (int t = 0; t < 5; ++t)
    for (int k = 0; k < LayerEmbedder::kDim; ++k)
      ASSERT_EQ(range(t, k), full(t + 2, k));
}

TEST(PartitionCtrl, PolicySumsToOneWithLPlusOneActions) {
  PartitionController ctrl(8, 11);
  const nn::Model m = nn::make_mlp(4, 8, 2);  // 3 layers
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  const auto probs = ctrl.policy(f);
  ASSERT_EQ(probs.size(), 4u);  // L + 1 = 3 + 1
  double sum = 0.0;
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PartitionCtrl, LearnsRewardedAction) {
  // Bandit: reward +1 for action 2, -1 otherwise. The policy should
  // concentrate on action 2.
  PartitionController ctrl(8, 12);
  const nn::Model m = nn::make_mlp(4, 8, 2);
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  util::Rng rng(13);
  for (int episode = 0; episode < 150; ++episode) {
    const auto sample = ctrl.sample(f, rng);
    const double reward = sample.action == 2 ? 1.0 : -1.0;
    ctrl.zero_grad();
    ctrl.accumulate_grad(f, sample.action, reward);  // positive advantage reinforces
    ctrl.step();
  }
  const auto probs = ctrl.policy(f);
  EXPECT_GT(probs[2], 0.6) << "policy failed to concentrate";
}

TEST(CompressionCtrl, MaskedActionsHaveZeroProbability) {
  CompressionController ctrl(8, 8, 14);
  const nn::Model m = nn::make_mlp(4, 8, 2);
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  const std::vector<std::vector<int>> masks{{0, 1, 3}, {0}, {0, 7}};
  const auto policies = ctrl.policies(f, masks);
  ASSERT_EQ(policies.size(), 3u);
  EXPECT_EQ(policies[0][2], 0.0);
  EXPECT_EQ(policies[0][4], 0.0);
  EXPECT_NEAR(policies[1][0], 1.0, 1e-9);  // only None allowed
  EXPECT_GT(policies[2][7], 0.0);
  for (const auto& p : policies) {
    double sum = 0.0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(CompressionCtrl, EmptyMaskMeansNoneOnly) {
  CompressionController ctrl(8, 8, 15);
  const nn::Model m = nn::make_mlp(4, 8, 2);
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  const std::vector<std::vector<int>> masks{{}, {}, {}};
  util::Rng rng(16);
  const auto samples = ctrl.sample(f, masks, rng);
  for (const auto& s : samples) EXPECT_EQ(s.action, 0);
}

TEST(CompressionCtrl, StartsWithDoNothingPrior) {
  CompressionController ctrl(8, 8, 17);
  const nn::Model m = nn::make_vgg11();
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  std::vector<std::vector<int>> masks(m.size(), std::vector<int>{0, 1, 4, 5});
  const auto policies = ctrl.policies(f, masks);
  for (const auto& p : policies) EXPECT_GT(p[0], 0.4);
}

TEST(CompressionCtrl, LearnsPerLayerRewardedActions) {
  // Reward +1 iff layer 0 picks action 1 and layer 2 picks action 4.
  CompressionController ctrl(8, 8, 18);
  const nn::Model m = nn::make_mlp(4, 8, 2);
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  const std::vector<std::vector<int>> masks{{0, 1}, {0}, {0, 4}};
  util::Rng rng(19);
  double baseline = 0.0;
  for (int episode = 0; episode < 800; ++episode) {
    const auto samples = ctrl.sample(f, masks, rng);
    const double reward =
        (samples[0].action == 1 && samples[2].action == 4) ? 1.0 : -1.0;
    const double advantage = reward - baseline;
    baseline = 0.9 * baseline + 0.1 * reward;
    std::vector<int> actions{samples[0].action, samples[1].action,
                             samples[2].action};
    ctrl.zero_grad();
    ctrl.accumulate_grad(f, masks, actions, advantage);
    ctrl.step();
  }
  const auto policies = ctrl.policies(f, masks);
  EXPECT_GT(policies[0][1], 0.6);
  EXPECT_GT(policies[2][4], 0.6);
}

TEST(PartitionCtrl, RejectsOutOfRangeAction) {
  PartitionController ctrl(8, 20);
  const nn::Model m = nn::make_mlp(4, 8, 2);
  const Tensor f = LayerEmbedder::embed(m, 2.0);
  EXPECT_THROW(ctrl.accumulate_grad(f, 99, 1.0), std::out_of_range);
}

TEST(SampleIndex, RespectsDistribution) {
  util::Rng rng(21);
  const std::vector<double> probs{0.0, 1.0, 0.0};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sample_index(probs, rng), 1);
}

}  // namespace
}  // namespace cadmc::controller
