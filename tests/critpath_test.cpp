// Critical-path profiler suite (`ctest -L obs`): known-answer span trees
// with exact self-time / critical-path / parallelism numbers (serial chain,
// perfectly parallel fan-out, mixed DAG, multi-root forests), determinism
// under input shuffling, round-trips through the JSONL and Chrome trace
// exporters, CSV escaping of hostile span names, and the two live-serving
// acceptance scenarios: the gateway's queue wait must appear as a span on
// the serve critical path, and the periodic snapshot exporter plus
// Gateway::stats() must be clean under concurrent traffic (CI runs this
// label under TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "runtime/gateway.h"
#include "runtime/transport.h"

namespace cadmc::runtime {
namespace {

using obs::CritNode;
using obs::ProfileReport;
using obs::SpanRecord;
using obs::TraceProfile;

class ScopedMetrics {
 public:
  ScopedMetrics() {
    obs::set_enabled(true);
    obs::MetricsRegistry::global().reset();
  }
  ~ScopedMetrics() { obs::set_enabled(false); }
};

std::string temp_path(const std::string& leaf) {
  return std::string(::testing::TempDir()) + leaf;
}

SpanRecord span_of(std::uint64_t id, std::uint64_t parent,
                   const std::string& name, double start, double wall,
                   std::uint64_t trace = 1) {
  SpanRecord s;
  s.id = id;
  s.parent_id = parent;
  s.trace_id = trace;
  s.name = name;
  s.start_ms = start;
  s.wall_ms = wall;
  return s;
}

const CritNode* find_node(const TraceProfile& trace, const std::string& name) {
  for (const CritNode& n : trace.nodes)
    if (n.span.name == name) return &n;
  return nullptr;
}

std::vector<std::string> critical_names(const TraceProfile& trace) {
  std::vector<std::string> names;
  for (int i : trace.critical_nodes) names.push_back(trace.nodes[i].span.name);
  return names;
}

// ---------------------------------------------------------------------------
// Known-answer trees: exact numbers, hand-computed
// ---------------------------------------------------------------------------

// frame [0,10] -> a [0,4], b [4,10]; b -> b1 [5,8].
// Fully serial: self(frame)=0, self(a)=4, self(b)=6-3=3, self(b1)=3.
// Critical path = frame's wall = 10, work = 10, parallelism = 1.
TEST(CritPath, SerialChainExactNumbers) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 10.0));
  spans.push_back(span_of(2, 1, "a", 0.0, 4.0));
  spans.push_back(span_of(3, 1, "b", 4.0, 6.0));
  spans.push_back(span_of(4, 3, "b1", 5.0, 3.0));

  const ProfileReport report = obs::profile_spans(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  const TraceProfile& t = report.traces[0];
  EXPECT_EQ(t.root_name, "frame");
  EXPECT_EQ(t.span_count, 4u);
  EXPECT_DOUBLE_EQ(t.makespan_ms, 10.0);
  EXPECT_DOUBLE_EQ(t.critical_path_ms, 10.0);
  EXPECT_DOUBLE_EQ(t.total_work_ms, 10.0);
  EXPECT_DOUBLE_EQ(t.parallelism, 1.0);

  EXPECT_DOUBLE_EQ(find_node(t, "frame")->self_ms, 0.0);
  EXPECT_DOUBLE_EQ(find_node(t, "a")->self_ms, 4.0);
  EXPECT_DOUBLE_EQ(find_node(t, "b")->self_ms, 3.0);
  EXPECT_DOUBLE_EQ(find_node(t, "b1")->self_ms, 3.0);
  // A fully serial trace has every span on the critical path, in time order.
  EXPECT_EQ(critical_names(t),
            (std::vector<std::string>{"frame", "a", "b", "b1"}));

  // "a" contributes the largest critical self time (4 > 3 > 3 > 0).
  EXPECT_EQ(report.bottleneck, "a");
  EXPECT_DOUBLE_EQ(report.bottleneck_share, 0.4);
  EXPECT_DOUBLE_EQ(report.parallelism, 1.0);
}

// frame [0,10] -> three overlapping workers "w" [1,9].
// self(frame) = 10 - 8 = 2 (children cover [1,9] once), self(w) = 8 each.
// Overlapping siblings never chain: critical = 2 + 8 = 10, work = 26.
TEST(CritPath, ParallelFanOutExactNumbers) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 10.0));
  spans.push_back(span_of(2, 1, "w", 1.0, 8.0));
  spans.push_back(span_of(3, 1, "w", 1.0, 8.0));
  spans.push_back(span_of(4, 1, "w", 1.0, 8.0));

  const ProfileReport report = obs::profile_spans(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  const TraceProfile& t = report.traces[0];
  EXPECT_DOUBLE_EQ(t.critical_path_ms, 10.0);
  EXPECT_DOUBLE_EQ(t.total_work_ms, 26.0);
  EXPECT_DOUBLE_EQ(t.parallelism, 2.6);
  EXPECT_DOUBLE_EQ(find_node(t, "frame")->self_ms, 2.0);

  // Exactly one worker lies on the path (ties break by smaller span id).
  ASSERT_EQ(t.critical_nodes.size(), 2u);
  EXPECT_EQ(t.nodes[t.critical_nodes[0]].span.id, 1u);
  EXPECT_EQ(t.nodes[t.critical_nodes[1]].span.id, 2u);
  int on_path = 0;
  for (const CritNode& n : t.nodes)
    if (n.span.name == "w" && n.on_critical_path) ++on_path;
  EXPECT_EQ(on_path, 1);

  EXPECT_EQ(report.bottleneck, "w");
  EXPECT_DOUBLE_EQ(report.bottleneck_share, 0.8);
}

// frame [0,12] -> prep [0,2], then {left [2,6] || right [2,4]}, post [8,4].
// Chains: prep->left->post = 12 beats prep->right->post = 10.
TEST(CritPath, MixedDagExactNumbers) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 12.0));
  spans.push_back(span_of(2, 1, "prep", 0.0, 2.0));
  spans.push_back(span_of(3, 1, "left", 2.0, 6.0));
  spans.push_back(span_of(4, 1, "right", 2.0, 4.0));
  spans.push_back(span_of(5, 1, "post", 8.0, 4.0));

  const ProfileReport report = obs::profile_spans(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  const TraceProfile& t = report.traces[0];
  EXPECT_DOUBLE_EQ(t.critical_path_ms, 12.0);
  EXPECT_DOUBLE_EQ(t.total_work_ms, 16.0);
  EXPECT_DOUBLE_EQ(t.parallelism, 16.0 / 12.0);
  EXPECT_DOUBLE_EQ(find_node(t, "frame")->self_ms, 0.0);

  EXPECT_EQ(critical_names(t),
            (std::vector<std::string>{"frame", "prep", "left", "post"}));
  EXPECT_FALSE(find_node(t, "right")->on_critical_path);
  EXPECT_DOUBLE_EQ(find_node(t, "right")->critical_ms, 4.0);

  EXPECT_EQ(report.bottleneck, "left");
  EXPECT_DOUBLE_EQ(report.bottleneck_share, 0.5);
  EXPECT_EQ(report.by_name.at("right").critical_count, 0u);
  EXPECT_EQ(report.by_name.at("left").critical_count, 1u);
}

// A trace holding several roots is a forest under a virtual root: roots obey
// the same happens-before rule as siblings.
TEST(CritPath, MultiRootForestChainsByHappensBefore) {
  // Sequential roots: r1 [0,3] ends before r2 [3,5] starts => chain = 8.
  std::vector<SpanRecord> seq;
  seq.push_back(span_of(1, 0, "r1", 0.0, 3.0));
  seq.push_back(span_of(2, 0, "r2", 3.0, 5.0));
  const ProfileReport serial = obs::profile_spans(seq);
  ASSERT_EQ(serial.traces.size(), 1u);
  EXPECT_DOUBLE_EQ(serial.traces[0].critical_path_ms, 8.0);
  EXPECT_DOUBLE_EQ(serial.traces[0].parallelism, 1.0);

  // Concurrent roots: r1 [0,3] overlaps r2 [0,5] => longest root wins.
  std::vector<SpanRecord> par;
  par.push_back(span_of(1, 0, "r1", 0.0, 3.0));
  par.push_back(span_of(2, 0, "r2", 0.0, 5.0));
  const ProfileReport parallel = obs::profile_spans(par);
  ASSERT_EQ(parallel.traces.size(), 1u);
  EXPECT_DOUBLE_EQ(parallel.traces[0].critical_path_ms, 5.0);
  EXPECT_DOUBLE_EQ(parallel.traces[0].total_work_ms, 8.0);
  EXPECT_DOUBLE_EQ(parallel.traces[0].parallelism, 1.6);
}

// A span whose parent id never closed (dropped record) is promoted to root
// rather than vanishing from the totals.
TEST(CritPath, OrphanSpanPromotedToRoot) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 4.0));
  spans.push_back(span_of(9, 77, "orphan", 4.0, 2.0));  // parent 77 absent
  const ProfileReport report = obs::profile_spans(spans);
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_DOUBLE_EQ(report.traces[0].total_work_ms, 6.0);
  EXPECT_DOUBLE_EQ(report.traces[0].critical_path_ms, 6.0);  // sequential
}

// ---------------------------------------------------------------------------
// Determinism and round-trips
// ---------------------------------------------------------------------------

TEST(CritPath, InputOrderDoesNotChangeReport) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 12.0));
  spans.push_back(span_of(2, 1, "prep", 0.0, 2.0));
  spans.push_back(span_of(3, 1, "left", 2.0, 6.0));
  spans.push_back(span_of(4, 1, "right", 2.0, 4.0));
  spans.push_back(span_of(5, 1, "post", 8.0, 4.0));
  spans.push_back(span_of(6, 0, "other", 0.0, 1.0, /*trace=*/2));

  const std::string baseline = obs::profile_jsonl(obs::profile_spans(spans));
  std::vector<SpanRecord> shuffled = spans;
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(obs::profile_jsonl(obs::profile_spans(shuffled)), baseline);
  std::rotate(shuffled.begin(), shuffled.begin() + 2, shuffled.end());
  EXPECT_EQ(obs::profile_jsonl(obs::profile_spans(shuffled)), baseline);
}

TEST(CritPath, JsonlRoundTripPreservesProfile) {
  obs::MetricsRegistry registry;
  registry.record_span(span_of(1, 0, "frame", 0.0, 12.0));
  registry.record_span(span_of(2, 1, "prep", 0.0, 2.0));
  registry.record_span(span_of(3, 1, "left", 2.0, 6.0));
  registry.record_span(span_of(4, 1, "right", 2.0, 4.0));
  registry.record_span(span_of(5, 1, "post", 8.0, 4.0));

  const std::string jsonl = obs::to_jsonl(registry);
  EXPECT_FALSE(obs::looks_like_chrome_trace(jsonl));
  const std::vector<SpanRecord> decoded =
      obs::spans_from_events(obs::parse_jsonl(jsonl));
  ASSERT_EQ(decoded.size(), 5u);

  const ProfileReport direct = obs::profile_registry(registry);
  const ProfileReport via_file = obs::profile_spans(decoded);
  EXPECT_EQ(obs::profile_jsonl(via_file), obs::profile_jsonl(direct));
  EXPECT_DOUBLE_EQ(via_file.traces[0].critical_path_ms, 12.0);
  EXPECT_EQ(via_file.bottleneck, "left");
}

TEST(CritPath, ChromeTraceRoundTripPreservesProfile) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 12.0));
  spans.push_back(span_of(2, 1, "prep", 0.0, 2.0));
  spans.push_back(span_of(3, 1, "left", 2.0, 6.0));
  spans.push_back(span_of(4, 1, "right", 2.0, 4.0));
  spans.push_back(span_of(5, 1, "post", 8.0, 4.0));

  const std::string chrome = obs::to_chrome_trace(spans);
  EXPECT_TRUE(obs::looks_like_chrome_trace(chrome));
  const std::vector<SpanRecord> decoded = obs::spans_from_chrome_trace(chrome);
  ASSERT_EQ(decoded.size(), 5u);

  const ProfileReport report = obs::profile_spans(decoded);
  ASSERT_EQ(report.traces.size(), 1u);
  EXPECT_DOUBLE_EQ(report.traces[0].critical_path_ms, 12.0);
  EXPECT_DOUBLE_EQ(report.traces[0].total_work_ms, 16.0);
  EXPECT_EQ(report.bottleneck, "left");
  EXPECT_EQ(obs::profile_jsonl(report),
            obs::profile_jsonl(obs::profile_spans(spans)));
}

TEST(CritPath, ProfileCsvEscapesHostileNames) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "conv,\"3x3\"", 0.0, 4.0));
  const std::string csv = obs::profile_csv(obs::profile_spans(spans));
  // The hostile name occupies ONE field: comma kept inside quotes, inner
  // quotes doubled (RFC 4180).
  EXPECT_NE(csv.find("\"conv,\"\"3x3\"\"\""), std::string::npos);
  EXPECT_EQ(csv.find("conv,\"3x3\""), std::string::npos);
}

TEST(CritPath, RenderProfileNamesBottleneck) {
  std::vector<SpanRecord> spans;
  spans.push_back(span_of(1, 0, "frame", 0.0, 12.0));
  spans.push_back(span_of(2, 1, "prep", 0.0, 2.0));
  spans.push_back(span_of(3, 1, "left", 2.0, 6.0));
  spans.push_back(span_of(4, 1, "right", 2.0, 4.0));
  spans.push_back(span_of(5, 1, "post", 8.0, 4.0));
  const std::string text =
      obs::render_profile(obs::profile_spans(spans), /*top=*/10);
  EXPECT_NE(text.find("left"), std::string::npos);
  EXPECT_NE(text.find("bottleneck"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live serving: queue-wait span + snapshot exporter under concurrency
// ---------------------------------------------------------------------------

// Acceptance scenario: with one worker and a slow handler, the second
// request's admission-queue wait must surface as a `gateway_queue` span
// parented under the edge's transport_call, serialized before
// transport_serve, and lying on the trace's critical path.
TEST(CritPath, GatewayQueueWaitAppearsOnServeCriticalPath) {
  ScopedMetrics scoped;
  GatewayConfig config;
  config.worker_threads = 1;
  std::atomic<int> entered{0};
  Gateway gateway(
      [&](const GatewayRequest& r) {
        entered.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return r.payload;
      },
      config);
  const std::uint16_t port = gateway.start();

  auto run_client = [&](std::uint64_t session, bool wait_for_busy_worker) {
    if (wait_for_busy_worker)
      while (entered.load() == 0) std::this_thread::yield();
    TcpClient client;
    TcpClientConfig cc;
    cc.timeout_ms = 10'000.0;
    cc.session_id = session;
    client.connect(port, cc);
    obs::ScopedSpan root("request_root");
    const Blob payload{static_cast<std::uint8_t>(session)};
    EXPECT_EQ(client.call(payload), payload);
  };
  std::thread first([&] { run_client(1, false); });
  std::thread second([&] { run_client(2, true); });

  // Poll the live introspection snapshot while traffic is in flight — under
  // TSan this is the stats()-vs-reactor/worker race check.
  GatewayStats live;
  for (int i = 0; i < 50; ++i) {
    live = gateway.stats();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  first.join();
  second.join();
  live = gateway.stats();
  EXPECT_TRUE(live.running);
  EXPECT_EQ(live.admitted, 2u);
  EXPECT_EQ(live.completed, 2u);
  EXPECT_EQ(live.shed, 0u);
  gateway.stop();
  EXPECT_FALSE(gateway.stats().running);

  const ProfileReport report =
      obs::profile_registry(obs::MetricsRegistry::global());
  // Both requests produce a gateway_queue span; the second one queued behind
  // a ~30 ms handler, so the longer wait is unambiguous.
  const CritNode* queue = nullptr;
  const TraceProfile* queued_trace = nullptr;
  for (const TraceProfile& t : report.traces)
    for (const CritNode& n : t.nodes)
      if (n.span.name == "gateway_queue" &&
          (queue == nullptr || n.span.wall_ms > queue->span.wall_ms)) {
        queue = &n;
        queued_trace = &t;
      }
  ASSERT_NE(queue, nullptr);
  EXPECT_GE(queue->span.wall_ms, 5.0);
  EXPECT_TRUE(queue->on_critical_path);
  ASSERT_GE(queue->parent, 0);
  EXPECT_EQ(queued_trace->nodes[queue->parent].span.name, "transport_call");

  // The wait hands off to execution: transport_serve starts at (or after)
  // the queue span's end on the sender's clock, i.e. they serialize.
  const CritNode* serve = find_node(*queued_trace, "transport_serve");
  ASSERT_NE(serve, nullptr);
  EXPECT_GE(serve->span.start_ms,
            queue->span.start_ms + queue->span.wall_ms - 1e-6);
  EXPECT_TRUE(serve->on_critical_path);
  EXPECT_EQ(queued_trace->root_name, "request_root");
  EXPECT_GT(report.by_name.at("gateway_queue").critical_self_ms, 0.0);
}

// The periodic exporter must tolerate concurrent metric writers and manual
// write_snapshot_now() calls, and leave a parseable JSONL file whose last
// block reflects the final counter values.
TEST(CritPath, SnapshotExporterLiveUnderConcurrentWrites) {
  ScopedMetrics scoped;
  const std::string path = temp_path("critpath_live_snapshots.jsonl");
  std::filesystem::remove(path);

  obs::SnapshotExporter::Options options;
  options.path = path;
  options.interval_ms = 2;
  obs::SnapshotExporter exporter(options);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    auto& reg = obs::MetricsRegistry::global();
    while (!stop.load()) {
      reg.counter("cadmc.test.ticks").add(1);
      reg.histogram("cadmc.test.wait_ms").observe(1.5);
      reg.gauge("cadmc.test.depth").set(3.0);
    }
  });
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(exporter.write_snapshot_now());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  mutator.join();
  const std::int64_t final_ticks =
      obs::MetricsRegistry::global().counter("cadmc.test.ticks").value();
  exporter.stop();  // writes the final snapshot; idempotent
  exporter.stop();
  EXPECT_GE(exporter.snapshots_written(), 11u);

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto events = obs::parse_jsonl(buffer.str());
  std::uint64_t heartbeats = 0;
  std::int64_t last_ticks = -1;
  for (const auto& e : events) {
    auto type = e.find("type");
    ASSERT_NE(type, e.end());
    if (type->second == "snapshot") {
      ++heartbeats;
      EXPECT_NE(e.find("seq"), e.end());
      EXPECT_NE(e.find("t_ms"), e.end());
    } else if (type->second == "counter" &&
               e.at("name") == "cadmc.test.ticks") {
      last_ticks = std::stoll(e.at("value"));
    }
  }
  EXPECT_EQ(heartbeats, exporter.snapshots_written());
  // The final (post-join) snapshot saw the settled counter value.
  EXPECT_EQ(last_ticks, final_ticks);
}

}  // namespace
}  // namespace cadmc::runtime
