// DAG-expansion tests: residual models expanded to operator-level DAGs, and
// the min-cut surgery baseline exercised on true branching graphs (the
// general case the paper's reference [5] targets).
#include <gtest/gtest.h>

#include "latency/device_profile.h"
#include "nn/activation.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/factory.h"
#include "nn/pool.h"
#include "partition/dag_expand.h"

namespace cadmc::partition {
namespace {

PartitionEvaluator make_evaluator() {
  latency::TransferModel transfer;
  transfer.rtt_ms = 12.0;
  return PartitionEvaluator(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
}

nn::Model residual_model(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  nn::Model m({8, 16, 16});
  m.add(std::make_unique<nn::Conv2d>(8, 16, 3, 1, 1, rng));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::ResidualBlock>(16, 8, 16, 1, true, rng));   // identity skip
  m.add(std::make_unique<nn::ResidualBlock>(16, 8, 32, 2, true, rng));   // projection
  m.add(std::make_unique<nn::GlobalAvgPool>());
  return m;
}

TEST(DagExpand, ChainModelsStayChains) {
  const nn::Model m = nn::make_alexnet();
  const PartitionEvaluator eval = make_evaluator();
  const DnnDag dag = expand_residual_dag(m, eval);
  EXPECT_FALSE(has_branches(dag));
  EXPECT_EQ(dag.nodes.size(), m.size() + 1);
}

TEST(DagExpand, ResidualBlocksBranch) {
  const nn::Model m = residual_model();
  const PartitionEvaluator eval = make_evaluator();
  const DnnDag dag = expand_residual_dag(m, eval);
  EXPECT_TRUE(has_branches(dag));
  // Identity skip node is free; projection node costs compute.
  double identity_cost = -1.0, proj_cost = -1.0;
  int merges = 0;
  for (const auto& node : dag.nodes) {
    if (node.name.find(":skip") != std::string::npos)
      identity_cost = node.edge_cost_ms;
    if (node.name.find(":proj") != std::string::npos)
      proj_cost = node.edge_cost_ms;
    merges += node.name.find(":merge") != std::string::npos;
  }
  EXPECT_EQ(identity_cost, 0.0);
  EXPECT_GT(proj_cost, 0.0);
  EXPECT_EQ(merges, 2);
}

TEST(DagExpand, EdgeCostApproximatesChainLatency) {
  // Per-op pricing adds one launch overhead (and a stronger small-layer
  // boost) per expanded operator, so the DAG's all-edge cost is >= the
  // monolithic block price but of the same magnitude.
  const nn::Model m = residual_model(2);
  const PartitionEvaluator eval = make_evaluator();
  const DnnDag dag = expand_residual_dag(m, eval);
  double dag_edge = 0.0;
  for (const auto& node : dag.nodes) dag_edge += node.edge_cost_ms;
  const double chain = eval.edge_model().model_latency_ms(m);
  EXPECT_GE(dag_edge, chain - 1e-9);
  EXPECT_LT(dag_edge, chain * 2.0);
}

TEST(DagExpand, MinCutNeverWorseThanItsOwnExtremes) {
  // The min cut must never exceed the cost of the trivial placements
  // (all-edge; ship-the-input-then-all-cloud) expressed on the same DAG.
  const nn::Model m = residual_model(3);
  const PartitionEvaluator eval = make_evaluator();
  const DnnDag dag = expand_residual_dag(m, eval);
  for (double bw : {25.0, 125.0, 600.0, 4000.0}) {
    const SurgeryResult result = surgery_min_cut(dag, eval.transfer_model(), bw);
    double all_edge = 0.0, all_cloud = 0.0;
    for (const auto& node : dag.nodes) {
      all_edge += node.edge_cost_ms;
      all_cloud += node.cloud_cost_ms;
    }
    all_cloud += eval.transfer_model().latency_ms(dag.nodes[0].output_bytes, bw);
    EXPECT_LE(result.total_latency_ms,
              std::min(all_edge, all_cloud) + 1e-6)
        << "bw " << bw;
  }
}

TEST(DagExpand, ExtremeBandwidthsPlaceEverythingOneSide) {
  const nn::Model m = residual_model(4);
  // Near-zero RTT so transfer cost vanishes at infinite bandwidth.
  latency::TransferModel transfer;
  transfer.rtt_ms = 1e-6;
  const PartitionEvaluator eval(
      latency::ComputeLatencyModel(latency::phone_profile()),
      latency::ComputeLatencyModel(latency::cloud_profile()), transfer);
  const DnnDag dag = expand_residual_dag(m, eval);
  // Dead network: everything on the edge.
  const SurgeryResult on_edge = surgery_min_cut(dag, eval.transfer_model(), 1e-4);
  for (std::size_t i = 0; i < on_edge.on_edge.size(); ++i)
    EXPECT_TRUE(on_edge.on_edge[i]) << dag.nodes[i].name;
  // Infinite network, no RTT: only the input pseudo-node stays.
  const SurgeryResult offload = surgery_min_cut(dag, eval.transfer_model(), 1e12);
  for (std::size_t i = 1; i < offload.on_edge.size(); ++i)
    EXPECT_FALSE(offload.on_edge[i]) << dag.nodes[i].name;
}

TEST(DagExpand, ResNetScaleDagSolves) {
  // A full ResNet-50 expansion: ~118 nodes; Dinic must stay fast and the
  // placement valid (every non-edge node downstream of the cut).
  const nn::Model m = nn::make_resnet_imagenet(50);
  const PartitionEvaluator eval = make_evaluator();
  const DnnDag dag = expand_residual_dag(m, eval);
  EXPECT_GT(dag.nodes.size(), 100u);
  EXPECT_TRUE(has_branches(dag));
  const SurgeryResult result =
      surgery_min_cut(dag, eval.transfer_model(), 2000.0);
  EXPECT_GT(result.total_latency_ms, 0.0);
  // No cloud node may feed an edge node (one-way offload).
  for (std::size_t i = 0; i < dag.nodes.size(); ++i)
    for (int succ : dag.nodes[i].successors)
      EXPECT_FALSE(!result.on_edge[i] &&
                   result.on_edge[static_cast<std::size_t>(succ)])
          << dag.nodes[i].name << " -> "
          << dag.nodes[static_cast<std::size_t>(succ)].name;
}

}  // namespace
}  // namespace cadmc::partition
