// SynthCIFAR tests: determinism, batch consistency, label distribution, and
// class separability (a nearest-class-mean classifier must beat chance by a
// wide margin — the accuracy/latency trade-off needs a learnable task).
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataloader.h"
#include "data/synth_cifar.h"

namespace cadmc::data {
namespace {

using tensor::Tensor;

TEST(SynthCifar, DeterministicPerIndex) {
  SynthCifar d(16, 10, 42);
  const Example a = d.make_example(5);
  const Example b = d.make_example(5);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(Tensor::max_abs_diff(a.image, b.image), 0.0f);
}

TEST(SynthCifar, DifferentIndicesDiffer) {
  SynthCifar d(16, 10, 42);
  const Example a = d.make_example(1);
  const Example b = d.make_example(2);
  EXPECT_GT(Tensor::max_abs_diff(a.image, b.image), 0.01f);
}

TEST(SynthCifar, DifferentSeedsDiffer) {
  SynthCifar d1(16, 10, 1), d2(16, 10, 2);
  EXPECT_GT(Tensor::max_abs_diff(d1.make_example(0).image,
                                 d2.make_example(0).image),
            0.01f);
}

TEST(SynthCifar, ImageShape) {
  SynthCifar d(24, 10, 3);
  EXPECT_EQ(d.make_example(0).image.shape(), (tensor::Shape{3, 24, 24}));
}

TEST(SynthCifar, LabelsInRangeAndAllClassesAppear) {
  SynthCifar d(8, 10, 4);
  bool seen[10] = {};
  for (int i = 0; i < 300; ++i) {
    const int label = d.make_example(i).label;
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 10);
    seen[label] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SynthCifar, BatchMatchesIndividualExamples) {
  SynthCifar d(8, 10, 5);
  const auto batch = d.make_batch(10, 4);
  EXPECT_EQ(batch.images.shape(), (tensor::Shape{4, 3, 8, 8}));
  for (int i = 0; i < 4; ++i) {
    const Example ex = d.make_example(10 + i);
    EXPECT_EQ(batch.labels[static_cast<std::size_t>(i)], ex.label);
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          ASSERT_EQ(batch.images(i, c, y, x), ex.image(c, y, x));
  }
}

TEST(SynthCifar, InvalidParamsThrow) {
  EXPECT_THROW(SynthCifar(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(SynthCifar(8, 0, 1), std::invalid_argument);
  SynthCifar d(8, 10, 1);
  EXPECT_THROW(d.make_batch(0, 0), std::invalid_argument);
}

TEST(SynthCifar, ClassesSeparableByNearestMean) {
  // Train nearest-class-mean on 400 examples, test on 200 fresh ones.
  const int classes = 4, size = 12;
  SynthCifar d(size, classes, 6, /*noise=*/0.2);
  const int dim = 3 * size * size;
  std::vector<std::vector<double>> means(
      classes, std::vector<double>(static_cast<std::size_t>(dim), 0.0));
  std::vector<int> counts(classes, 0);
  for (int i = 0; i < 400; ++i) {
    const Example ex = d.make_example(i);
    ++counts[static_cast<std::size_t>(ex.label)];
    for (int j = 0; j < dim; ++j)
      means[static_cast<std::size_t>(ex.label)][static_cast<std::size_t>(j)] +=
          ex.image.at(j);
  }
  for (int c = 0; c < classes; ++c)
    for (int j = 0; j < dim; ++j)
      means[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] /=
          std::max(1, counts[static_cast<std::size_t>(c)]);
  int correct = 0, total = 0;
  for (int i = 400; i < 600; ++i) {
    const Example ex = d.make_example(i);
    int best = 0;
    double best_dist = 1e300;
    for (int c = 0; c < classes; ++c) {
      double dist = 0.0;
      for (int j = 0; j < dim; ++j) {
        const double diff =
            ex.image.at(j) -
            means[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    correct += best == ex.label;
    ++total;
  }
  const double acc = static_cast<double>(correct) / total;
  EXPECT_GT(acc, 0.7) << "nearest-mean accuracy should beat 0.25 chance";
}

TEST(DataLoader, BatchCountAndWrapping) {
  SynthCifar d(8, 10, 7);
  DataLoader loader(d, 0, 100, 32);
  EXPECT_EQ(loader.batches_per_epoch(), 3);
  // Batch 3 wraps to batch 0.
  const auto b0 = loader.batch(0);
  const auto b3 = loader.batch(3);
  EXPECT_EQ(b0.labels, b3.labels);
}

TEST(DataLoader, DisjointRangesServeDisjointData) {
  SynthCifar d(8, 10, 8);
  DataLoader train(d, 0, 64, 32);
  DataLoader eval(d, 64, 128, 32);
  const auto tb = train.batch(0);
  const auto eb = eval.batch(0);
  EXPECT_GT(Tensor::max_abs_diff(tb.images, eb.images), 0.01f);
}

TEST(DataLoader, InvalidRangeThrows) {
  SynthCifar d(8, 10, 9);
  EXPECT_THROW(DataLoader(d, 10, 10, 4), std::invalid_argument);
  EXPECT_THROW(DataLoader(d, 0, 3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace cadmc::data
